"""Deep-web crawling: harvest records from a search engine over a query
workload (the paper's second motivating application).

A deep-web crawler probes a search interface with many queries and
collects the retrieved records.  With an MSE wrapper, each returned page
is parsed structurally, so the harvested data keeps section provenance
(which repository the record came from) and per-record granularity —
rather than being a blob of page text.

Run:  python examples/deep_web_crawl.py
"""

from collections import Counter

from repro import build_wrapper
from repro.testbed import make_engine

ENGINE_ID = 100  # a 5-section engine
PROBE_QUERIES = 12


def main() -> None:
    engine = make_engine(ENGINE_ID)
    all_queries = engine.queries(5 + PROBE_QUERIES)
    training, probes = all_queries[:5], all_queries[5:]

    print(f"target engine: {engine.name} "
          f"({len(engine.sections)} section schemas)")

    wrapper = build_wrapper([(engine.result_page(q), q) for q in training])
    print(f"wrapper: {len(wrapper.wrappers)} schemas, "
          f"{len(wrapper.families)} families\n")

    harvested = []
    per_section = Counter()
    seen_titles = set()
    for query in probes:
        page = engine.result_page(query)
        extraction = wrapper.extract(page, query)
        new = 0
        for section in extraction.sections:
            for record in section.records:
                title = record.lines[0]
                if title in seen_titles:
                    continue  # the crawler's dedup step
                seen_titles.add(title)
                harvested.append((section.lbm_text or "(main)", title))
                per_section[section.lbm_text or "(main)"] += 1
                new += 1
        print(f"  probe {query!r:28s} -> {len(extraction)} sections, "
              f"{extraction.record_count} records ({new} new)")

    print(f"\nharvested {len(harvested)} distinct records:")
    for section, count in per_section.most_common():
        print(f"  {section:20s} {count:4d} records")
    print("\nsample records:")
    for section, title in harvested[:8]:
        print(f"  [{section}] {title}")


if __name__ == "__main__":
    main()
