"""Hidden sections: the §5.8 section-family mechanism in action.

Dynamic sections are query dependent — a section schema may have *no
instance* on any sample page and still appear later.  Plain per-schema
wrappers can never extract it; a section family (schemas sharing
structure, distinguished by boundary-marker text attributes) can.

This example trains on pages where only "Web" and "News" ever appear,
then extracts a page where a never-seen "Images" section shows up.

Run:  python examples/hidden_sections.py
"""

from repro import build_wrapper


def result_page(query: str, sections: dict) -> str:
    parts = [
        "<html><body><h1>FamilyDemo</h1>",
        f"<p>Results for <b>{query}</b></p>",
    ]
    for topic, titles in sections.items():
        if not titles:
            continue
        parts.append(f"<h3>{topic}</h3><ul>")
        for title in titles:
            parts.append(
                f'<li><a href="/d/{title[:6]}">{title}</a><br>'
                f"About {title.lower()} and {query}.</li>"
            )
        parts.append("</ul>")
    parts.append("<hr><small>Copyright 2006</small></body></html>")
    return "".join(parts)


def titles(topic: str, query: str, n: int) -> list:
    pool = ["Chronic", "Portable", "Annual", "Global", "Rapid", "Hidden"]
    return [f"{pool[(i + len(query) + len(topic)) % 6]} {topic} {query} {i}"
            for i in range(n)]


def main() -> None:
    samples = [
        (
            result_page(
                q,
                {"Web": titles("Web", q, 4), "News": titles("News", q, 3)},
            ),
            q,
        )
        for q in ("asthma", "telescope")
    ]
    wrapper = build_wrapper(samples)
    print(f"induced: {wrapper}")
    for family in wrapper.families:
        print(f"  family {family.family_id} ({type(family).__name__}) over "
              f"schemas {family.member_ids}")

    # The new page adds an "Images" section never seen in training.
    page = result_page(
        "eclipse",
        {
            "Web": titles("Web", "eclipse", 3),
            "News": titles("News", "eclipse", 2),
            "Images": titles("Images", "eclipse", 4),
        },
    )
    extraction = wrapper.extract(page, "eclipse")

    print(f"\nextracted {len(extraction)} sections:")
    for section in extraction.sections:
        hidden = "hidden" in section.schema_id
        marker = "  <-- HIDDEN SECTION (no training instance!)" if hidden else ""
        print(f"  [{section.lbm_text}] {len(section)} records "
              f"(schema {section.schema_id}){marker}")
    assert any("hidden" in s.schema_id for s in extraction.sections), (
        "expected the family to discover the unseen Images section"
    )


if __name__ == "__main__":
    main()
