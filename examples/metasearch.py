"""Metasearch: the paper's motivating application (§1).

A metasearch engine forwards one query to several component search
engines and merges their results.  That requires extracting SRRs from
each engine's HTML result pages — exactly what MSE wrappers automate.

This example builds wrappers for three synthetic engines from the test
bed, sends them all the same query, and merges the extracted records
into a single result list, preserving each record's engine and section
provenance (the section-record relationship the paper insists on).

Run:  python examples/metasearch.py
"""

from repro import build_wrapper
from repro.testbed import make_engine

COMPONENT_ENGINES = [3, 85, 97]  # one single-section + two multi-section
QUERY = "lunar eclipse"


def main() -> None:
    # 1. Offline phase: induce one wrapper per component engine from
    #    sample pages (5 training queries each).
    wrappers = {}
    for engine_id in COMPONENT_ENGINES:
        engine = make_engine(engine_id)
        training_queries = engine.queries(5)
        samples = [(engine.result_page(q), q) for q in training_queries]
        wrappers[engine_id] = (engine, build_wrapper(samples))
        print(f"engine {engine.name}: wrapper with "
              f"{len(wrappers[engine_id][1].wrappers)} section schema(s)")

    # 2. Online phase: one user query fans out to all engines; each
    #    result page is parsed with that engine's wrapper.
    merged = []
    for engine_id, (engine, wrapper) in wrappers.items():
        page = engine.result_page(QUERY)
        extraction = wrapper.extract(page, QUERY)
        for section in extraction.sections:
            for rank, record in enumerate(section.records):
                merged.append(
                    {
                        "engine": engine.name,
                        "section": section.lbm_text or "(main)",
                        "rank": rank,
                        "title": record.lines[0],
                    }
                )

    # 3. Merge: simple round-robin by per-engine rank (any metasearch
    #    fusion policy could slot in here).
    merged.sort(key=lambda r: (r["rank"], r["engine"]))

    print(f"\nmetasearch results for {QUERY!r} "
          f"({len(merged)} records from {len(wrappers)} engines):\n")
    for i, row in enumerate(merged[:20], start=1):
        print(f"{i:2d}. {row['title']}")
        print(f"      from {row['engine']} / {row['section']}")


if __name__ == "__main__":
    main()
