"""Quickstart: induce a wrapper from two sample result pages and extract
sections + records from an unseen page.

Run:  python examples/quickstart.py
"""

from repro import build_wrapper


def result_page(query: str, web_hits: list, news_hits: list) -> str:
    """A miniature search-engine result page (HTML string)."""
    parts = [
        "<html><body>",
        "<h1>DemoSearch</h1>",
        '<div class="nav"><a href="/">Home</a> | <a href="/help">Help</a></div>',
        f"<p><b>Your search for {query} returned "
        f"{7 * (len(web_hits) + len(news_hits))} matches</b></p>",
    ]
    for topic, hits in (("Web", web_hits), ("News", news_hits)):
        if not hits:
            continue  # empty repositories produce no section: it's dynamic!
        parts.append(f"<h2>{topic}</h2><ul>")
        for title, snippet in hits:
            parts.append(
                f'<li><a href="/doc/{title[:8]}">{title}</a><br>{snippet}</li>'
            )
        parts.append('</ul><a href="/more">Click Here for More</a>')
    parts.append("<p><small>Copyright 2006 DemoSearch</small></p></body></html>")
    return "".join(parts)


def hits(topic: str, query: str, n: int) -> list:
    words = ["chronic", "digital", "portable", "annual", "global", "rapid"]
    return [
        (
            f"{words[(i + len(query)) % 6].title()} {topic} guide to {query} ({i})",
            f"A {words[(2 * i) % 6]} overview of {query} from the {topic} desk.",
        )
        for i in range(n)
    ]


def main() -> None:
    # 1. Collect sample pages: the same engine queried with different terms.
    samples = [
        (result_page(q, hits("Web", q, 4), hits("News", q, 3)), q)
        for q in ("asthma", "telescope", "sourdough")
    ]

    # 2. Induce the engine wrapper (MSE: steps 1-9 of the paper).
    wrapper = build_wrapper(samples)
    print(f"induced: {wrapper}")
    for section_wrapper in wrapper.wrappers:
        print(f"  schema {section_wrapper.schema_id}: "
              f"pref={section_wrapper.pref}, sep={section_wrapper.separator}, "
              f"LBM={sorted(section_wrapper.lbm_texts)}")

    # 3. Extract from a new result page the wrapper has never seen.
    unseen = result_page("eclipse", hits("Web", "eclipse", 5), hits("News", "eclipse", 2))
    extraction = wrapper.extract(unseen, "eclipse")

    print(f"\nextracted {len(extraction)} sections, "
          f"{extraction.record_count} records:")
    for section in extraction.sections:
        print(f"\n[{section.lbm_text or '(unmarked)'}] "
              f"lines {section.line_span[0]}..{section.line_span[1]}")
        for record in section.records:
            print(f"  - {record.text}")


if __name__ == "__main__":
    main()
