"""Walk through the paper, figure by figure, on a healthcentral.com-like
page (the paper's Figure 1 example).

The paper's figures are illustrations of pipeline stages rather than
result plots; this script regenerates each of them as text:

- Figure 1: the multi-section result page;
- Figure 2/3: the DOM view — content lines in pre-order with tag paths,
  sections and template interleaved;
- §5.1: the tentative multi-record sections MRE finds;
- Figure 5: the CSBMs DSE identifies and the DSs between them;
- Figures 6-8: the refinement of MRs against DSs;
- Figure 9: the section-instance match graph across sample pages;
- Figures 10/11: the induced wrappers and section families;
- finally: extraction from an unseen page.

Run:  python examples/paper_walkthrough.py
"""

from repro.core.dse import run_dse
from repro.core.grouping import group_section_instances, match_score
from repro.core.mre import extract_mrs
from repro.core.mse import MSE, build_wrapper
from repro.core.refine import refine_page
from repro.htmlmod.parser import parse_html
from repro.render.layout import render_page

TOPICS = {
    "Encyclopedia": 5,
    "Dr. Dean Edell": 1,
    "News": 5,
    "Peoples Pharmacy": 2,
}

ARTICLES = {
    "Encyclopedia": ["Knee Injury", "Ultrasound in Obstetrics", "Lupus and Pregnancy",
                     "Colic", "Lymphoma", "Asthma Basics", "Migraine Care"],
    "Dr. Dean Edell": ["We Are Still Too Fat, Again", "Sleep and the Heart"],
    "News": ["AMA Guides Doctors on Older Drivers", "Mental Illness Strikes Babies, Too",
             "Eating Pyramid Style", "Guided Lasers Help Treat Uterine Fibroids",
             "Panel: Cut Salt, Let Thirst Be Water Guide", "Flu Season Arrives Early"],
    "Peoples Pharmacy": ["Antidepressant Can Raise Cholesterol",
                         "Another Fish Oil Tale Of Gray Hair Gone",
                         "Vitamins and Memory"],
}


def healthcentral_page(query: str, counts: dict) -> str:
    """A page shaped like the paper's Figure 1."""
    total = sum(counts.values()) * 97 % 991
    parts = [
        "<html><body>",
        "<h1>healthcentral</h1>",
        f"<p>Your search returned {total} matches.</p>",
    ]
    salt = sum(ord(c) for c in query)
    for topic, count in counts.items():
        if count <= 0:
            continue
        pool = ARTICLES[topic]
        parts.append(f"<p><b>{topic}</b></p><ul>")
        for i in range(count):
            title = pool[(i + salt) % len(pool)]
            parts.append(
                f'<li><a href="/a/{i}">{title} --{topic}-- '
                f"({(i + salt) % 12 + 1}/{(i * 7 + salt) % 27 + 1}/2004)</a>"
                f"<br>{title} relates to {query}.</li>"
            )
        parts.append("</ul>")
        if count >= 5:
            parts.append('<p><a href="/more">Click Here for More</a></p>')
    parts.append("<p><small>About Us | Privacy | Copyright 2006</small></p>")
    parts.append("</body></html>")
    return "".join(parts)


def main() -> None:
    queries = ["knee pain", "pregnancy diet", "cholesterol"]
    count_plans = [
        {"Encyclopedia": 5, "Dr. Dean Edell": 1, "News": 5, "Peoples Pharmacy": 2},
        {"Encyclopedia": 4, "Dr. Dean Edell": 0, "News": 5, "Peoples Pharmacy": 3},
        {"Encyclopedia": 5, "Dr. Dean Edell": 2, "News": 3, "Peoples Pharmacy": 0},
    ]
    samples = [
        (healthcentral_page(q, plan), q) for q, plan in zip(queries, count_plans)
    ]

    print("=" * 72)
    print("Figure 1/2/3 — the rendered page as content lines (pre-order)")
    print("=" * 72)
    page0 = render_page(parse_html(samples[0][0]))
    print(page0.dump())

    print()
    print("=" * 72)
    print("§5.1 MRE — tentative multi-record sections")
    print("=" * 72)
    pages = [render_page(parse_html(markup)) for markup, _ in samples]
    mrs_per_page = [extract_mrs(p) for p in pages]
    for mr in mrs_per_page[0]:
        print(f"  MR lines {mr.start}..{mr.end}: "
              f"{[(r.start, r.end) for r in mr.records]}")

    print()
    print("=" * 72)
    print("Figure 5 — DSE: boundary markers (*) and dynamic sections")
    print("=" * 72)
    csbms, dss = run_dse(pages, [q for _, q in samples], mrs_per_page)
    for line in pages[0].lines:
        tag = "*" if line.number in csbms[0] else " "
        print(f"  {tag} [{line.number:2d}] {line.text[:58]}")
    print(f"  DSs: {[(d.start, d.end) for d in dss[0]]}")

    print()
    print("=" * 72)
    print("Figures 6-8 — refinement of MRs against DSs")
    print("=" * 72)
    result = refine_page(pages[0], mrs_per_page[0], dss[0], csbms[0])
    for section in result.sections:
        lbm = pages[0].lines[section.lbm].text if section.lbm is not None else "-"
        print(f"  section {section.start}..{section.end} "
              f"({len(section.records)} records), LBM={lbm!r}")
    for pending in result.pending:
        print(f"  pending DS {pending.start}..{pending.end} (to be mined, §5.4)")

    print()
    print("=" * 72)
    print("Figure 9 — the section-instance match graph (stable marriage +")
    print("Bron-Kerbosch cliques over sample pages)")
    print("=" * 72)
    mse = MSE()
    prepared = mse._prepare(samples)
    sections_per_page = mse.analyze_pages(prepared)
    for i, sections in enumerate(sections_per_page):
        print(f"  page {i}: " + ", ".join(
            f"[{s.start}..{s.end}]" for s in sections))
    groups = group_section_instances(sections_per_page)
    for g_index, group in enumerate(groups):
        members = ", ".join(
            f"p{page_index}[{inst.start}..{inst.end}]"
            for page_index, inst in group.members
        )
        print(f"  clique {g_index}: {members}")

    print()
    print("=" * 72)
    print("Figures 10/11 — wrappers and section families")
    print("=" * 72)
    engine = build_wrapper(samples)
    for wrapper in engine.wrappers:
        print(f"  {wrapper.schema_id}: pref={wrapper.pref} sep={wrapper.separator} "
              f"LBM={sorted(wrapper.lbm_texts)}")
    for family in engine.families:
        print(f"  family {family.family_id} ({type(family).__name__}): "
              f"members {family.member_ids}")

    print()
    print("=" * 72)
    print("Extraction from an unseen page (new query, new section mix)")
    print("=" * 72)
    unseen = healthcentral_page(
        "lymphoma", {"Encyclopedia": 3, "Dr. Dean Edell": 1, "News": 2,
                     "Peoples Pharmacy": 4}
    )
    extraction = engine.extract(unseen, "lymphoma")
    for section in extraction.sections:
        print(f"  [{section.lbm_text}] {len(section)} records")
        for record in section.records:
            print(f"     - {record.lines[0][:64]}")


if __name__ == "__main__":
    main()
