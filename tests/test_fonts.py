"""Font metric tests."""

from repro.render.fonts import char_width, line_height, text_width
from repro.render.styles import TextAttr


class TestCharWidth:
    def test_scales_with_size(self):
        small = char_width(TextAttr(size=10))
        large = char_width(TextAttr(size=20))
        assert large == 2 * small

    def test_bold_wider(self):
        plain = char_width(TextAttr())
        bold = char_width(TextAttr(style="bold"))
        assert bold > plain

    def test_monospace_wider_than_times(self):
        times = char_width(TextAttr(font="times new roman"))
        mono = char_width(TextAttr(font="courier new"))
        assert mono > times

    def test_unknown_font_uses_default(self):
        assert char_width(TextAttr(font="papyrus")) > 0


class TestTextWidth:
    def test_proportional_to_length(self):
        attr = TextAttr()
        assert text_width("aa", attr) == 2 * text_width("a", attr)

    def test_empty_string(self):
        assert text_width("", TextAttr()) == 0.0


class TestLineHeight:
    def test_exceeds_font_size(self):
        assert line_height(TextAttr(size=12)) > 12

    def test_integral(self):
        assert isinstance(line_height(TextAttr(size=13)), int)
