"""Stable marriage tests (exact matchings + stability property)."""

from hypothesis import given, settings, strategies as st

from repro.algorithms.stable_marriage import is_stable, stable_match


class TestBasicMatching:
    def test_mutual_best_pairs(self):
        scores = [[3.0, 1.0], [2.0, 4.0]]
        assert stable_match(scores) == [(0, 0), (1, 1)]

    def test_contested_column(self):
        # Both rows prefer column 0; the higher scorer gets it.
        scores = [[5.0, 1.0], [9.0, 2.0]]
        matching = dict(stable_match(scores))
        assert matching[1] == 0
        assert matching[0] == 1

    def test_single_pair(self):
        assert stable_match([[1.0]]) == [(0, 0)]

    def test_empty_matrix(self):
        assert stable_match([]) == []

    def test_more_rows_than_columns(self):
        scores = [[1.0], [2.0], [3.0]]
        matching = stable_match(scores)
        assert len(matching) == 1
        assert matching[0][1] == 0

    def test_more_columns_than_rows(self):
        scores = [[1.0, 5.0, 3.0]]
        assert stable_match(scores) == [(0, 1)]


class TestThreshold:
    def test_below_threshold_never_matched(self):
        scores = [[0.4, 0.2], [0.1, 0.3]]
        assert stable_match(scores, threshold=0.5) == []

    def test_partial_acceptability(self):
        scores = [[0.9, 0.1], [0.2, 0.3]]
        matching = stable_match(scores, threshold=0.5)
        assert matching == [(0, 0)]

    def test_threshold_allows_no_match_even_when_mutually_best(self):
        # The paper's modification: a mutually-best pair below the
        # threshold stays unmatched.
        scores = [[0.45]]
        assert stable_match(scores, threshold=0.5) == []

    def test_exactly_at_threshold_is_acceptable(self):
        assert stable_match([[0.5]], threshold=0.5) == [(0, 0)]


class TestStability:
    def test_is_stable_detects_blocking_pair(self):
        scores = [[5.0, 1.0], [9.0, 2.0]]
        # Wrong assignment: row1 and col0 prefer each other.
        assert not is_stable(scores, [(0, 0), (1, 1)])
        assert is_stable(scores, [(0, 1), (1, 0)])

    def test_empty_matching_of_empty_graph_is_stable(self):
        assert is_stable([], [])

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.randoms(use_true_random=False),
    )
    def test_result_is_always_stable(self, rows, cols, rng):
        scores = [[rng.random() for _ in range(cols)] for _ in range(rows)]
        matching = stable_match(scores)
        assert is_stable(scores, matching)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0.0, max_value=1.0),
        st.randoms(use_true_random=False),
    )
    def test_result_stable_under_threshold(self, rows, cols, threshold, rng):
        scores = [[rng.random() for _ in range(cols)] for _ in range(rows)]
        matching = stable_match(scores, threshold=threshold)
        assert is_stable(scores, matching, threshold=threshold)
        for row, col in matching:
            assert scores[row][col] >= threshold

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.randoms(use_true_random=False),
    )
    def test_one_to_one(self, n, rng):
        scores = [[rng.random() for _ in range(n)] for _ in range(n)]
        matching = stable_match(scores)
        rows = [r for r, _ in matching]
        cols = [c for _, c in matching]
        assert len(set(rows)) == len(rows)
        assert len(set(cols)) == len(cols)
        assert len(matching) == n  # square all-acceptable: perfect matching
