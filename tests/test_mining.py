"""Record mining tests (§5.4)."""

from repro.core.mining import (
    _uniform_starts,
    candidate_partitions,
    mine_block,
    mine_records,
    separator_tag_of,
)
from repro.features.blocks import Block
from tests.helpers import render

LIST_PAGE = render(
    "<html><body><ul>"
    "<li><a href='/1'>alpha title one</a><br>snippet body alpha here</li>"
    "<li><a href='/2'>bravo title two</a><br>snippet body bravo here</li>"
    "<li><a href='/3'>charlie title three</a><br>snippet body charlie</li>"
    "</ul></body></html>"
)

DL_PAGE = render(
    "<html><body><dl>"
    "<dt><a href='/1'>alpha title</a></dt><dd>description alpha text</dd>"
    "<dt><a href='/2'>bravo title</a></dt><dd>description bravo text</dd>"
    "</dl></body></html>"
)

SINGLE_PAGE = render(
    "<html><body><div>"
    "<a href='/1'>only title here</a><br>the single snippet<br>"
    "<font color='green'>http://example.com/x</font>"
    "</div></body></html>"
)

FLAT_PAGE = render(
    "<html><body><div>"
    "<a href='/1'>alpha title</a><br>flat snippet alpha<br>"
    "<a href='/2'>bravo title</a><br>flat snippet bravo<br>"
    "<a href='/3'>charlie title</a><br>flat snippet charlie<br>"
    "</div></body></html>"
)


class TestCandidatePartitions:
    def test_whole_always_candidate(self):
        block = Block(LIST_PAGE, 0, 5)
        candidates = candidate_partitions(block)
        assert any(len(p) == 1 for p in candidates)

    def test_per_li_candidate_present(self):
        block = Block(LIST_PAGE, 0, 5)
        candidates = candidate_partitions(block)
        spans = [[(r.start, r.end) for r in p] for p in candidates]
        assert [(0, 1), (2, 3), (4, 5)] in spans

    def test_dedup(self):
        block = Block(LIST_PAGE, 0, 5)
        candidates = candidate_partitions(block)
        keys = [tuple(r.start for r in p) for p in candidates]
        assert len(keys) == len(set(keys))


class TestMineRecords:
    def test_list_records(self):
        records = mine_records(Block(LIST_PAGE, 0, 5))
        assert [(r.start, r.end) for r in records] == [(0, 1), (2, 3), (4, 5)]

    def test_dl_records_anchored_at_dt(self):
        records = mine_records(Block(DL_PAGE, 0, 3))
        assert [(r.start, r.end) for r in records] == [(0, 1), (2, 3)]

    def test_single_record_ds(self):
        # The paper's selling point: a one-record DS is mined as one record.
        records = mine_records(Block(SINGLE_PAGE, 0, 2))
        assert len(records) == 1
        assert (records[0].start, records[0].end) == (0, 2)

    def test_flat_br_records_via_title_anchors(self):
        records = mine_records(Block(FLAT_PAGE, 0, 5))
        assert [(r.start, r.end) for r in records] == [(0, 1), (2, 3), (4, 5)]

    def test_sub_block_mining(self):
        # mining a block that covers only part of the section
        records = mine_records(Block(LIST_PAGE, 0, 3))
        assert [(r.start, r.end) for r in records] == [(0, 1), (2, 3)]


class TestMineBlock:
    def test_cohesion_strategy_delegates_to_mine_records(self):
        block = Block(LIST_PAGE, 0, 5)
        assert [
            (r.start, r.end) for r in mine_block(block, "cohesion")
        ] == [(r.start, r.end) for r in mine_records(block)]

    def test_per_child_takes_finest_partition(self):
        records = mine_block(Block(LIST_PAGE, 0, 5), "per-child")
        assert [(r.start, r.end) for r in records] == [(0, 1), (2, 3), (4, 5)]

    def test_per_child_fragments_single_record_ds(self):
        # Where the strategies differ: cohesion keeps a one-record DS
        # whole (the paper's strength); per-child blindly splits it.
        block = Block(SINGLE_PAGE, 0, 2)
        assert [(r.start, r.end) for r in mine_block(block, "cohesion")] == [
            (0, 2)
        ]
        assert [(r.start, r.end) for r in mine_block(block, "per-child")] == [
            (0, 1), (2, 2),
        ]

    def test_per_child_empty_candidates_falls_back_to_whole_block(
        self, monkeypatch
    ):
        # Regression: ``max([], key=len)`` raised ValueError.  No real
        # block produces zero candidates today (the whole-block partition
        # is always included), so force the degenerate case.
        import repro.core.mining as mining

        monkeypatch.setattr(mining, "candidate_partitions", lambda b, c: [])
        block = Block(LIST_PAGE, 0, 5)
        records = mine_block(block, "per-child")
        assert [(r.start, r.end) for r in records] == [(0, 5)]


class TestUniformStarts:
    def test_uniform_title_starts(self):
        records = [Block(LIST_PAGE, 0, 1), Block(LIST_PAGE, 2, 3)]
        assert _uniform_starts(records)

    def test_snippet_start_not_uniform(self):
        records = [Block(LIST_PAGE, 1, 2), Block(LIST_PAGE, 3, 4)]
        assert not _uniform_starts(records)

    def test_single_record(self):
        assert _uniform_starts([Block(LIST_PAGE, 0, 1)])


class TestSeparatorTag:
    def test_li_separator(self):
        records = mine_records(Block(LIST_PAGE, 0, 5))
        assert separator_tag_of(records) == "li"

    def test_dt_separator(self):
        records = mine_records(Block(DL_PAGE, 0, 3))
        assert separator_tag_of(records) == "dt"

    def test_flat_a_separator(self):
        records = mine_records(Block(FLAT_PAGE, 0, 5))
        assert separator_tag_of(records) == "a"

    def test_empty_records(self):
        assert separator_tag_of([]) is None
