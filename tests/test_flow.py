"""Tests for the whole-program flow analysis (repro.analysis.flow).

Each rule gets an adversarial fixture — a seeded bug of exactly the
class the rule exists to catch — asserting both detection and the
sanctioned escape hatches (inline pragma, registry allowlist).  The
determinism and path-normalization contracts of the engine are
property-tested at the end.
"""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.engine import (
    ProjectContext,
    discover_files,
    display_root,
    parse_file,
)
from repro.analysis.flow.callgraph import MUTATES, PURE, build_call_graph
from repro.analysis.flow.model import build_project_model
from repro.analysis.flow.rules import (
    CodecDriftRule,
    ForkSafetyRule,
    HotPathComplexityRule,
    PickleSafetyRule,
    flow_rules,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def write_module(tmp_path, relpath, source):
    """Lay a fixture module out under tmp_path (e.g. 'repro/core/x.py')."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


def project_of(tmp_path):
    root = display_root()
    files = discover_files([str(tmp_path)])
    return ProjectContext(
        [p.ctx for p in (parse_file(f, root) for f in files) if p.ctx]
    )


def rules_of(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# Symbol table + call graph
# ---------------------------------------------------------------------------

GRAPH_FIXTURE = """\
    GLOBAL_TABLE = {}
    FROZEN = frozenset({"a"})

    def leaf(x):
        return x + 1

    def writes(x):
        GLOBAL_TABLE[x] = leaf(x)

    def caller(x):
        return writes(x)

    class Stage:
        def encode(self):
            return leaf(2)

    STAGES = {"stage": Stage}
"""


def test_call_graph_edges_reachability_and_purity(tmp_path):
    write_module(tmp_path, "repro/pipeline/fix.py", GRAPH_FIXTURE)
    project = project_of(tmp_path)
    model = build_project_model(project.modules)
    graph = build_call_graph(model)

    assert "repro.pipeline.fix.GLOBAL_TABLE" in model.globals
    assert model.globals["repro.pipeline.fix.GLOBAL_TABLE"].mutable
    assert not model.globals["repro.pipeline.fix.FROZEN"].mutable

    edges = graph.edges["repro.pipeline.fix.caller"]
    assert "repro.pipeline.fix.writes" in edges

    reachable, _ = graph.reachable_from(["repro.pipeline.fix.caller"])
    assert "repro.pipeline.fix.leaf" in reachable

    assert graph.purity["repro.pipeline.fix.leaf"] == PURE
    assert graph.purity["repro.pipeline.fix.writes"] == MUTATES
    # impurity propagates along call edges
    assert graph.purity["repro.pipeline.fix.caller"] == MUTATES


def test_class_closure_reaches_methods_via_global_reference(tmp_path):
    # referencing STAGES (whose initializer closes over Stage) must make
    # Stage.encode reachable — this is the PAGE_STAGES dict-dispatch shape
    write_module(
        tmp_path,
        "repro/pipeline/fix.py",
        GRAPH_FIXTURE
        + "\n    def dispatch(name):\n"
        + "        return STAGES[name]().encode()\n",
    )
    project = project_of(tmp_path)
    graph = build_call_graph(build_project_model(project.modules))
    reachable, _ = graph.reachable_from(["repro.pipeline.fix.dispatch"])
    assert "repro.pipeline.fix.Stage.encode" in reachable


# ---------------------------------------------------------------------------
# MP01 fork safety
# ---------------------------------------------------------------------------

MP01_BUG = """\
    import multiprocessing

    CACHE = {}

    def _worker(task):
        CACHE[task] = task * 2
        return CACHE[task]

    def run(tasks):
        with multiprocessing.Pool() as pool:
            return list(pool.imap_unordered(_worker, tasks))
"""


def test_mp01_catches_worker_mutating_module_global(tmp_path):
    path = write_module(tmp_path, "repro/pipeline/leak.py", MP01_BUG)
    findings = analyze_paths([str(path)], [ForkSafetyRule(allowlist={})])
    assert rules_of(findings) == {"MP01"}
    message = findings[0].message
    assert "repro.pipeline.leak.CACHE" in message
    assert "_worker" in message  # names the worker path


def test_mp01_transitive_mutation_through_helper(tmp_path):
    # the worker itself is clean; a helper it calls does the mutating
    path = write_module(
        tmp_path,
        "repro/pipeline/leak.py",
        """\
        import multiprocessing

        TABLE = {}

        def _store(key, value):
            TABLE[key] = value

        def _worker(task):
            _store(task, task * 2)
            return task

        def run(tasks):
            with multiprocessing.Pool() as pool:
                return pool.map(_worker, tasks)
        """,
    )
    findings = analyze_paths([str(path)], [ForkSafetyRule(allowlist={})])
    assert rules_of(findings) == {"MP01"}
    assert "_worker -> repro.pipeline.leak._store" in findings[0].message


def test_mp01_allowlist_and_pragma_escape_hatches(tmp_path):
    path = write_module(tmp_path, "repro/pipeline/leak.py", MP01_BUG)
    allowed = ForkSafetyRule(
        allowlist={"repro.pipeline.leak.CACHE": "per-process memo"}
    )
    assert analyze_paths([str(path)], [allowed]) == []

    pragmad = MP01_BUG.replace(
        "    CACHE[task] = task * 2",
        "    CACHE[task] = task * 2  # lint: allow MP01 -- fixture",
    )
    path.write_text(textwrap.dedent(pragmad), encoding="utf-8")
    assert analyze_paths([str(path)], [ForkSafetyRule(allowlist={})]) == []


def test_mp01_ignores_mutations_off_the_worker_path(tmp_path):
    path = write_module(
        tmp_path,
        "repro/pipeline/ok.py",
        """\
        import multiprocessing

        RESULTS = {}

        def _worker(task):
            return task * 2

        def run(tasks):
            with multiprocessing.Pool() as pool:
                for task, out in zip(tasks, pool.map(_worker, tasks)):
                    RESULTS[task] = out  # parent-side merge: fine
            return RESULTS
        """,
    )
    assert analyze_paths([str(path)], [ForkSafetyRule(allowlist={})]) == []


def test_mp01_initializer_is_a_worker_entry(tmp_path):
    path = write_module(
        tmp_path,
        "repro/pipeline/init.py",
        """\
        import multiprocessing

        STATE = []

        def _init(wrappers):
            STATE.extend(wrappers)

        def _worker(task):
            return task

        def run(tasks, wrappers):
            with multiprocessing.Pool(initializer=_init, initargs=(wrappers,)) as pool:
                return pool.map(_worker, tasks)
        """,
    )
    findings = analyze_paths([str(path)], [ForkSafetyRule(allowlist={})])
    assert rules_of(findings) == {"MP01"}
    assert "repro.pipeline.init.STATE" in findings[0].message


def test_mp01_process_target_is_a_worker_entry(tmp_path):
    # a long-lived Process (the Server pool shape) is a dispatch too,
    # even when constructed through a get_context() factory handle
    path = write_module(
        tmp_path,
        "repro/pipeline/proc.py",
        """\
        import multiprocessing

        SEEN = {}

        def _loop(tasks):
            for task in tasks:
                SEEN[task] = task

        def spawn(tasks):
            ctx = multiprocessing.get_context()
            proc = ctx.Process(target=_loop, args=(tasks,))
            proc.start()
            return proc
        """,
    )
    findings = analyze_paths([str(path)], [ForkSafetyRule(allowlist={})])
    assert rules_of(findings) == {"MP01"}
    assert "repro.pipeline.proc.SEEN" in findings[0].message


def test_registry_entrypoints_seed_worker_entries():
    # the Server worker entry points are declared in the registry; the
    # call graph must treat them as worker entries even though the
    # Process construction site could stop resolving statically
    from repro.analysis.registry import POOL_WORKER_ENTRYPOINTS

    graph = build_call_graph(build_project_model(project_of(SRC_REPRO).modules))
    for qualname in POOL_WORKER_ENTRYPOINTS:
        assert qualname in graph.worker_entries, qualname
    assert "repro.perf.server._worker_main" in graph.worker_entries


# ---------------------------------------------------------------------------
# MP02 payload pickle safety
# ---------------------------------------------------------------------------


def test_mp02_lambda_and_bound_method_callables(tmp_path):
    path = write_module(
        tmp_path,
        "repro/pipeline/pick.py",
        """\
        import multiprocessing

        class Runner:
            def work(self, task):
                return task

        def run_lambda(tasks):
            with multiprocessing.Pool() as pool:
                return pool.map(lambda t: t + 1, tasks)

        def run_method(tasks):
            runner = Runner()
            with multiprocessing.Pool() as pool:
                return pool.map(runner.work, tasks)
        """,
    )
    findings = analyze_paths([str(path)], [PickleSafetyRule()])
    assert rules_of(findings) == {"MP02"}
    messages = " | ".join(f.message for f in findings)
    assert "lambda" in messages
    assert "bound method 'runner.work'" in messages


def test_mp02_lock_in_payload(tmp_path):
    path = write_module(
        tmp_path,
        "repro/pipeline/pick.py",
        """\
        import multiprocessing
        import threading

        def _worker(task):
            return task

        def run(items):
            payload = [(item, threading.Lock()) for item in items]
            with multiprocessing.Pool() as pool:
                return pool.map(_worker, payload)
        """,
    )
    findings = analyze_paths([str(path)], [PickleSafetyRule()])
    assert rules_of(findings) == {"MP02"}
    assert "'Lock(...)'" in findings[0].message


def test_mp02_process_target_lambda(tmp_path):
    path = write_module(
        tmp_path,
        "repro/pipeline/pick.py",
        """\
        import multiprocessing

        def spawn(q):
            proc = multiprocessing.Process(target=lambda: None, args=(q,))
            proc.start()
            return proc
        """,
    )
    findings = analyze_paths([str(path)], [PickleSafetyRule()])
    assert rules_of(findings) == {"MP02"}
    assert "lambda" in findings[0].message


def test_mp02_clean_toplevel_worker_and_pragma(tmp_path):
    clean = """\
        import multiprocessing

        def _worker(task):
            return task * 2

        def run(tasks):
            with multiprocessing.Pool() as pool:
                return pool.map(_worker, tasks)
    """
    path = write_module(tmp_path, "repro/pipeline/pick.py", clean)
    assert analyze_paths([str(path)], [PickleSafetyRule()]) == []

    bad = clean.replace(
        "        return pool.map(_worker, tasks)",
        "        return pool.map(lambda t: t, tasks)"
        "  # lint: allow MP02 -- fixture",
    )
    path.write_text(textwrap.dedent(bad), encoding="utf-8")
    assert analyze_paths([str(path)], [PickleSafetyRule()]) == []


# ---------------------------------------------------------------------------
# PERF01 hot-path complexity
# ---------------------------------------------------------------------------

PERF01_BUG = """\
    def _pairwise(records):
        out = []
        for first in records:
            for second in records:
                out.append((first, second))
        return out

    def serve(page):
        return _pairwise(page.records)
"""


def test_perf01_catches_quadratic_loop_reachable_from_serve(tmp_path):
    path = write_module(tmp_path, "repro/perf/hot.py", PERF01_BUG)
    findings = analyze_paths([str(path)], [HotPathComplexityRule()])
    assert rules_of(findings) == {"PERF01"}
    message = findings[0].message
    assert "depth-2" in message
    assert "repro.perf.hot.serve" in message  # the hot path is named


def test_perf01_memo_on_the_path_clears_the_finding(tmp_path):
    path = write_module(
        tmp_path,
        "repro/perf/hot.py",
        """\
        def _pairwise(records, cache_get):
            out = []
            for first in records:
                for second in records:
                    out.append(cache_get(first, second))
            return out

        def serve(page):
            return _pairwise(page.records, page.cache_get)
        """,
    )
    assert analyze_paths([str(path)], [HotPathComplexityRule()]) == []


def test_perf01_cold_functions_and_pragma(tmp_path):
    # same nest, not reachable from a hot entry: no finding
    cold = PERF01_BUG.replace("def serve(page):", "def offline(page):")
    path = write_module(tmp_path, "repro/perf/cold.py", cold)
    assert analyze_paths([str(path)], [HotPathComplexityRule()]) == []

    pragmad = PERF01_BUG.replace(
        "    for first in records:",
        "    for first in records:  # lint: allow PERF01 -- fixture",
    )
    path = write_module(tmp_path, "repro/perf/hot.py", pragmad)
    assert analyze_paths([str(path)], [HotPathComplexityRule()]) == []


# ---------------------------------------------------------------------------
# SER01 codec drift
# ---------------------------------------------------------------------------

SER01_BUG = """\
    from dataclasses import dataclass

    @dataclass
    class Thing:
        name: str
        count: int

    def thing_to_obj(thing: Thing) -> dict:
        return {"name": thing.name}
"""


def test_ser01_catches_unread_dataclass_field(tmp_path):
    path = write_module(tmp_path, "repro/core/codec.py", SER01_BUG)
    findings = analyze_paths([str(path)], [CodecDriftRule()])
    assert rules_of(findings) == {"SER01"}
    assert "'count'" in findings[0].message


def test_ser01_clean_codec_renamed_keys_and_page_exemption(tmp_path):
    path = write_module(
        tmp_path,
        "repro/core/codec.py",
        """\
        from dataclasses import dataclass

        class RenderedPage:
            pass

        @dataclass
        class Thing:
            page: RenderedPage
            name: str
            count: int

        def thing_to_obj(thing: Thing) -> dict:
            # keys differ from field names; reads are what count
            return {"n": thing.name, "c": thing.count}
        """,
    )
    assert analyze_paths([str(path)], [CodecDriftRule()]) == []


def test_ser01_delegating_alias_inherits_callee_reads(tmp_path):
    path = write_module(
        tmp_path,
        "repro/core/codec.py",
        """\
        from dataclasses import dataclass

        @dataclass
        class Thing:
            name: str
            count: int

        def _impl_to_obj(thing: Thing) -> dict:
            return {"name": thing.name, "count": thing.count}

        def thing_to_obj(thing: Thing) -> dict:
            return _impl_to_obj(thing)
        """,
    )
    assert analyze_paths([str(path)], [CodecDriftRule()]) == []


def test_ser01_pragma_escape_hatch(tmp_path):
    pragmad = SER01_BUG.replace(
        "def thing_to_obj(thing: Thing) -> dict:",
        "def thing_to_obj(thing: Thing) -> dict:"
        "  # lint: allow SER01 -- fixture",
    )
    path = write_module(tmp_path, "repro/core/codec.py", pragmad)
    assert analyze_paths([str(path)], [CodecDriftRule()]) == []


# ---------------------------------------------------------------------------
# The real tree
# ---------------------------------------------------------------------------


def test_src_repro_is_clean_under_flow_rules():
    assert analyze_paths([str(SRC_REPRO)], flow_rules()) == []


def test_flow_rules_fire_on_real_memos_without_allowlist():
    # zero findings must come from the registry doing its job, not from
    # the detector seeing nothing: emptying the allowlist must expose
    # the whole process-local memo family
    findings = analyze_paths([str(SRC_REPRO)], [ForkSafetyRule(allowlist={})])
    globals_hit = {f.message.split("'")[1] for f in findings}
    assert "repro.perf.kernels.TREE_MEMO" in globals_hit
    assert "repro.perf.kernels.RECORD_MEMO" in globals_hit
    # the persistent-Server worker path reaches the DINR health memo
    # (priming runs serve_index); registry-declared entry points keep
    # it covered even though the Process target ships via a context
    assert "repro.perf.kernels.DINR_MEMO" in globals_hit


def test_registry_replaces_det01_pragmas():
    # the memo key sites dropped their per-line pragmas in favour of
    # IDENTITY_KEY_FUNCTIONS; none of those files carries one any more
    for rel in (
        "perf/kernels.py",
        "perf/serve.py",
        "features/record_distance.py",
        "features/blocks.py",
        "core/verify.py",
        "pipeline/stages.py",
    ):
        source = (SRC_REPRO / rel).read_text(encoding="utf-8")
        assert "allow DET01" not in source, rel


def test_det01_registry_suppression_is_scoped(tmp_path):
    # id() inside a registered identity-key function: sanctioned;
    # the same call anywhere else: still a finding
    from repro.analysis.rules.determinism import DeterminismRule

    path = write_module(
        tmp_path,
        "repro/perf/kernels.py",
        """\
        class PairMemo:
            def lookup(self, sig1, sig2):
                return (id(sig1), id(sig2))

        def elsewhere(value):
            return id(value)
        """,
    )
    findings = analyze_paths([str(path)], [DeterminismRule()])
    assert len(findings) == 1
    assert findings[0].line == 6


# ---------------------------------------------------------------------------
# Determinism of the analysis itself
# ---------------------------------------------------------------------------


def _as_json(findings):
    return json.dumps([f.to_dict() for f in findings], sort_keys=True)


def test_shuffled_file_order_is_byte_identical(tmp_path):
    write_module(tmp_path, "repro/pipeline/leak.py", MP01_BUG)
    write_module(tmp_path, "repro/perf/hot.py", PERF01_BUG)
    write_module(tmp_path, "repro/core/codec.py", SER01_BUG)
    paths = sorted(str(p) for p in tmp_path.rglob("*.py"))
    orders = [paths, paths[::-1], [paths[1], paths[2], paths[0]]]
    outputs = set()
    for order in orders:
        findings = analyze_paths(
            order,
            [ForkSafetyRule(allowlist={}), HotPathComplexityRule(),
             CodecDriftRule()],
        )
        outputs.add(_as_json(findings))
    assert len(outputs) == 1
    assert json.loads(outputs.pop())  # and they are not trivially empty


def test_repeated_full_runs_are_byte_identical():
    first = analyze_paths([str(SRC_REPRO)])
    second = analyze_paths([str(SRC_REPRO)])
    assert _as_json(first) == _as_json(second)


# ---------------------------------------------------------------------------
# Path normalization (machine-portable baselines)
# ---------------------------------------------------------------------------


def _fixture_repo(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    write_module(tmp_path, "src/repro/core/codec.py", SER01_BUG)
    return tmp_path


def test_absolute_root_reports_repo_relative_paths(tmp_path, monkeypatch):
    repo = _fixture_repo(tmp_path)
    monkeypatch.chdir(repo)
    findings = analyze_paths([str(repo / "src")], [CodecDriftRule()])
    assert [f.path for f in findings] == ["src/repro/core/codec.py"]


def test_relative_and_absolute_roots_agree(tmp_path, monkeypatch):
    repo = _fixture_repo(tmp_path)
    monkeypatch.chdir(repo)
    absolute = analyze_paths([str(repo / "src")], [CodecDriftRule()])
    relative = analyze_paths(["src"], [CodecDriftRule()])
    assert _as_json(absolute) == _as_json(relative)


# ---------------------------------------------------------------------------
# Diff-aware gate (--changed-only)
# ---------------------------------------------------------------------------


def _git(repo, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t",
         *args],
        cwd=repo,
        check=True,
        capture_output=True,
    )


def test_changed_only_counts_only_changed_files(tmp_path, monkeypatch, capsys):
    repo = _fixture_repo(tmp_path)
    _git(repo, "init", "-q")
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "seed")
    # a second finding in a NEW file; the committed one is pre-existing
    write_module(repo, "src/repro/perf/hot.py", PERF01_BUG)
    monkeypatch.chdir(repo)

    code = analysis_main(["src", "--changed-only", "--rules", "SER01,PERF01"])
    out = capsys.readouterr().out
    assert code == 1
    assert "hot.py" in out
    assert "codec.py" not in out  # unchanged file: not counted

    # fix the new file; pre-existing findings no longer fail the gate
    (repo / "src/repro/perf/hot.py").unlink()
    code = analysis_main(["src", "--changed-only", "--rules", "SER01,PERF01"])
    assert code == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_full_run_still_sees_pre_existing_findings(tmp_path, monkeypatch, capsys):
    repo = _fixture_repo(tmp_path)
    _git(repo, "init", "-q")
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(repo)
    code = analysis_main(["src", "--rules", "SER01"])
    assert code == 1
    assert "codec.py" in capsys.readouterr().out
