"""HTML tree construction tests, including the recovery rules."""

from repro.htmlmod.dom import Element, Text
from repro.htmlmod.parser import parse_html


def signature(markup):
    return parse_html(markup).body.tag_signature()


class TestBasicStructure:
    def test_simple_nesting(self):
        assert signature("<body><div><p>x</p></div></body>") == (
            "body",
            ("div", ("p",)),
        )

    def test_missing_html_body_synthesized(self):
        doc = parse_html("<p>hello</p>")
        assert doc.root.tag == "html"
        assert doc.body.find("p") is not None

    def test_attributes_preserved(self):
        doc = parse_html('<div class="x" id="y">t</div>')
        div = doc.body.find("div")
        assert div.get("class") == "x"
        assert div.get("id") == "y"

    def test_doctype_recorded(self):
        doc = parse_html("<!DOCTYPE html><html><body></body></html>")
        assert doc.doctype == "DOCTYPE html"

    def test_head_content_not_under_body(self):
        doc = parse_html(
            "<html><head><title>t</title></head><body><p>x</p></body></html>"
        )
        assert doc.title == "t"
        assert doc.body.find("title") is None

    def test_comment_preserved(self):
        doc = parse_html("<body><div><!--note--></div></body>")
        from repro.htmlmod.dom import Comment

        div = doc.body.find("div")
        assert any(isinstance(c, Comment) for c in div.children)


class TestVoidElements:
    def test_br_has_no_children(self):
        assert signature("<body><p>a<br>b</p></body>") == ("body", ("p", ("br",)))

    def test_img_never_contains_following_content(self):
        sig = signature("<body><img src='x'><p>t</p></body>")
        assert sig == ("body", ("img",), ("p",))

    def test_explicit_br_end_tag_ignored(self):
        sig = signature("<body><p>a<br></br>b</p></body>")
        assert sig == ("body", ("p", ("br",)))

    def test_hr_void(self):
        assert signature("<body><hr><p>x</p></body>") == ("body", ("hr",), ("p",))


class TestImpliedEndTags:
    def test_li_closes_li(self):
        sig = signature("<body><ul><li>a<li>b<li>c</ul></body>")
        assert sig == ("body", ("ul", ("li",), ("li",), ("li",)))

    def test_nested_list_li_does_not_close_outer_li(self):
        sig = signature("<body><ul><li>a<ul><li>inner</ul><li>b</ul></body>")
        assert sig == (
            "body",
            ("ul", ("li", ("ul", ("li",))), ("li",)),
        )

    def test_p_closes_p(self):
        assert signature("<body><p>a<p>b</body>") == ("body", ("p",), ("p",))

    def test_block_closes_p(self):
        assert signature("<body><p>a<div>b</div></body>") == (
            "body",
            ("p",),
            ("div",),
        )

    def test_td_closes_td(self):
        sig = signature("<body><table><tr><td>a<td>b</tr></table></body>")
        assert sig == ("body", ("table", ("tr", ("td",), ("td",))))

    def test_tr_closes_td_and_tr(self):
        sig = signature("<body><table><tr><td>a<tr><td>b</table></body>")
        assert sig == ("body", ("table", ("tr", ("td",)), ("tr", ("td",))))

    def test_dt_dd_alternate(self):
        sig = signature("<body><dl><dt>t<dd>d<dt>t2<dd>d2</dl></body>")
        assert sig == ("body", ("dl", ("dt",), ("dd",), ("dt",), ("dd",)))

    def test_option_closes_option(self):
        sig = signature("<body><select><option>a<option>b</select></body>")
        assert sig == ("body", ("select", ("option",), ("option",)))

    def test_formatting_wrapper_unwound_for_li(self):
        # <b> left open inside the first li must not block the second li.
        sig = signature("<body><ul><li><b>a<li>b</ul></body>")
        assert sig == ("body", ("ul", ("li", ("b",)), ("li",)))


class TestNestedTables:
    """The regression area: inner tables must not disturb outer ones."""

    MARKUP = (
        "<body><table><tr><td>nav</td><td>"
        "<table><tbody><tr><td>r1a</td><td>r1b</td></tr>"
        "<tr><td>r2a</td><td>r2b</td></tr></tbody></table>"
        "</td></tr></table></body>"
    )

    def test_inner_rows_stay_inside_inner_tbody(self):
        doc = parse_html(self.MARKUP)
        tbody = doc.body.find("tbody")
        rows = [c for c in tbody.children if isinstance(c, Element)]
        assert [r.tag for r in rows] == ["tr", "tr"]

    def test_outer_table_has_one_row(self):
        doc = parse_html(self.MARKUP)
        outer = doc.body.child_elements()[0]
        outer_rows = [
            c for c in outer.children if isinstance(c, Element) and c.tag == "tr"
        ]
        assert len(outer_rows) == 1

    def test_inner_td_does_not_close_inner_tr(self):
        doc = parse_html(self.MARKUP)
        inner_tr = doc.body.find("tbody").child_elements()[0]
        assert [c.tag for c in inner_tr.child_elements()] == ["td", "td"]

    def test_stray_tr_end_does_not_cross_table(self):
        # </tr> with no open tr inside the inner table must be ignored,
        # not close the outer table's row.
        doc = parse_html(
            "<body><table><tr><td><table></tr><tr><td>x</td></tr></table>"
            "</td><td>y</td></tr></table></body>"
        )
        outer = doc.body.child_elements()[0]
        outer_tr = next(c for c in outer.child_elements() if c.tag == "tr")
        tds = [c.tag for c in outer_tr.child_elements()]
        assert tds.count("td") == 2


class TestMalformedRecovery:
    def test_stray_end_tag_ignored(self):
        assert signature("<body></span><p>x</p></body>") == ("body", ("p",))

    def test_end_tag_closes_intervening_elements(self):
        sig = signature("<body><div><b><i>x</div><p>y</p></body>")
        assert sig == ("body", ("div", ("b", ("i",))), ("p",))

    def test_unclosed_elements_at_eof(self):
        sig = signature("<body><div><ul><li>a")
        assert sig == ("body", ("div", ("ul", ("li",))))

    def test_duplicate_body_merges(self):
        doc = parse_html("<body class='a'><p>x</p><body id='b'><p>y</p>")
        bodies = doc.root.find_all("body")
        assert len(bodies) == 1
        assert len(bodies[0].find_all("p")) == 2

    def test_text_between_tags_whitespace_only_collapsed(self):
        doc = parse_html("<body><ul>\n  <li>a</li>\n  <li>b</li>\n</ul></body>")
        ul = doc.body.find("ul")
        items = [c for c in ul.children if isinstance(c, Element)]
        assert [i.tag for i in items] == ["li", "li"]


class TestParserIdempotence:
    def test_reparse_of_serialized_tree_is_stable(self):
        from repro.htmlmod.serializer import serialize

        markup = (
            "<body><table><tr><td width='150'><ul><li><a href='/'>x</a>"
            "</li></ul></td><td><dl><dt><a href='/y'>y</a></dt><dd>z</dd>"
            "</dl></td></tr></table></body>"
        )
        doc1 = parse_html(markup)
        once = serialize(doc1)
        doc2 = parse_html(once)
        assert doc1.root.tag_signature() == doc2.root.tag_signature()
        assert serialize(doc2) == once
