"""Smoke tests: the example scripts must run and produce their key output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "induced" in out
        assert "extracted 2 sections" in out

    def test_hidden_sections(self):
        out = run_example("hidden_sections.py")
        assert "HIDDEN SECTION" in out

    def test_metasearch(self):
        out = run_example("metasearch.py")
        assert "metasearch results" in out

    def test_paper_walkthrough(self):
        out = run_example("paper_walkthrough.py")
        assert "Figure 9" in out
        assert "Extraction from an unseen page" in out
