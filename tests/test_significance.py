"""Bootstrap confidence interval tests."""

import pytest

from repro.evalkit.harness import run_evaluation
from repro.evalkit.significance import (
    Interval,
    bootstrap_metric,
    recall_precision_intervals,
)


@pytest.fixture(scope="module")
def run():
    return run_evaluation("all", limit=8)


class TestBootstrap:
    def test_point_inside_interval(self, run):
        ci = bootstrap_metric(run, lambda c: c.recall_total, samples=200)
        assert ci.low <= ci.point <= ci.high

    def test_deterministic_for_seed(self, run):
        a = bootstrap_metric(run, lambda c: c.recall_total, samples=100, seed=7)
        b = bootstrap_metric(run, lambda c: c.recall_total, samples=100, seed=7)
        assert a == b

    def test_different_seeds_share_point_estimate(self, run):
        a = bootstrap_metric(run, lambda c: c.recall_total, samples=100, seed=1)
        b = bootstrap_metric(run, lambda c: c.recall_total, samples=100, seed=2)
        assert a.point == b.point  # the point estimate never depends on the seed

    def test_wider_confidence_wider_interval(self, run):
        narrow = bootstrap_metric(
            run, lambda c: c.recall_total, samples=300, confidence=0.5
        )
        wide = bootstrap_metric(
            run, lambda c: c.recall_total, samples=300, confidence=0.99
        )
        assert wide.high - wide.low >= narrow.high - narrow.low

    def test_bounds_within_metric_range(self, run):
        ci = bootstrap_metric(run, lambda c: c.precision_total, samples=200)
        assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_empty_run_raises(self):
        from repro.evalkit.harness import EvaluationRun

        with pytest.raises(ValueError):
            bootstrap_metric(EvaluationRun(), lambda c: c.recall_total)

    def test_bad_confidence_raises(self, run):
        with pytest.raises(ValueError):
            bootstrap_metric(run, lambda c: c.recall_total, confidence=1.5)

    def test_all_four_intervals(self, run):
        intervals = recall_precision_intervals(run, samples=100)
        assert len(intervals) == 4
        for ci in intervals:
            assert isinstance(ci, Interval)


class TestInterval:
    def test_str_format(self):
        ci = Interval(point=0.912, low=0.88, high=0.94, confidence=0.95)
        assert str(ci) == "91.2 [88.0, 94.0]"

    def test_overlap(self):
        a = Interval(0.9, 0.85, 0.95, 0.95)
        b = Interval(0.93, 0.9, 0.97, 0.95)
        c = Interval(0.5, 0.45, 0.55, 0.95)
        assert a.overlaps(b)
        assert not a.overlaps(c)
