"""Wrapper serialization tests."""

import json

import pytest

from repro.core.mse import build_wrapper
from repro.core.serialize import (
    WrapperFormatError,
    load_wrapper,
    save_wrapper,
    wrapper_from_json,
    wrapper_to_json,
)
from tests.helpers import make_records, sample_pages, simple_result_page


@pytest.fixture(scope="module")
def engine():
    pages = sample_pages(
        ("apple", "banana", "cherry"), [("Web", 4), ("News", 3)]
    )
    return build_wrapper(pages)


class TestRoundTrip:
    def test_json_is_valid(self, engine):
        payload = json.loads(wrapper_to_json(engine))
        assert payload["format"] == "repro-mse-wrapper"
        assert payload["version"] == 1

    def test_wrappers_survive(self, engine):
        restored = wrapper_from_json(wrapper_to_json(engine))
        assert len(restored.wrappers) == len(engine.wrappers)
        for a, b in zip(engine.wrappers, restored.wrappers):
            assert a.schema_id == b.schema_id
            assert str(a.pref) == str(b.pref)
            assert a.separator == b.separator
            assert a.lbm_texts == b.lbm_texts
            assert a.lbm_attrs == b.lbm_attrs
            assert a.record_attrs == b.record_attrs
            assert a.typical_records == b.typical_records
            assert a.markers_inside == b.markers_inside

    def test_families_survive(self, engine):
        restored = wrapper_from_json(wrapper_to_json(engine))
        assert len(restored.families) == len(engine.families)
        for a, b in zip(engine.families, restored.families):
            assert type(a) is type(b)
            assert a.member_ids == b.member_ids
            assert a.lbm_attrs == b.lbm_attrs

    def test_extraction_identical_after_round_trip(self, engine):
        restored = wrapper_from_json(wrapper_to_json(engine))
        html = simple_result_page(
            "durian",
            [
                ("Web", make_records("Web", 5, "durian")),
                ("News", make_records("News", 2, "durian")),
            ],
        )
        original = engine.extract(html, "durian")
        reloaded = restored.extract(html, "durian")
        assert [s.line_span for s in original.sections] == [
            s.line_span for s in reloaded.sections
        ]
        assert [r.line_span for s in original.sections for r in s.records] == [
            r.line_span for s in reloaded.sections for r in s.records
        ]

    def test_file_round_trip(self, engine, tmp_path):
        path = tmp_path / "wrapper.json"
        save_wrapper(engine, str(path))
        restored = load_wrapper(str(path))
        assert len(restored.wrappers) == len(engine.wrappers)

    def test_empty_marker_sets_survive(self, engine):
        """A wrapper without boundary markers round-trips losslessly.

        Markerless wrappers are legal (§5.7 markers are optional
        evidence) and the serving path compiles them to empty lookup
        tables — the serialized form must preserve the emptiness rather
        than dropping or null-ing the fields.
        """
        from dataclasses import replace

        from repro.core.wrapper import EngineWrapper

        bare = EngineWrapper(
            [
                replace(
                    wrapper,
                    lbm_texts=set(),
                    rbm_texts=set(),
                    lbm_attrs=frozenset(),
                    rbm_attrs=frozenset(),
                )
                for wrapper in engine.wrappers
            ],
            families=[],
            config=engine.config,
        )
        restored = wrapper_from_json(wrapper_to_json(bare))
        for a, b in zip(bare.wrappers, restored.wrappers):
            assert b.lbm_texts == set()
            assert b.rbm_texts == set()
            assert b.lbm_attrs == frozenset()
            assert b.rbm_attrs == frozenset()
            assert a.markers_inside == b.markers_inside
            assert a.typical_records == b.typical_records

    def test_markers_inside_and_typical_records_survive(self, engine):
        from dataclasses import replace

        from repro.core.wrapper import EngineWrapper

        flipped = EngineWrapper(
            [
                replace(
                    wrapper,
                    markers_inside=not wrapper.markers_inside,
                    typical_records=wrapper.typical_records + 7,
                )
                for wrapper in engine.wrappers
            ],
            families=[],
            config=engine.config,
        )
        restored = wrapper_from_json(wrapper_to_json(flipped))
        for a, b in zip(flipped.wrappers, restored.wrappers):
            assert a.markers_inside == b.markers_inside
            assert a.typical_records == b.typical_records

    def test_compiled_round_trip_extraction_identical(self, engine):
        """compile_wrapper(load(save(w))) == w.extract, byte for byte."""
        from dataclasses import asdict

        from repro.perf.serve import compile_wrapper

        restored = wrapper_from_json(wrapper_to_json(engine))
        compiled = compile_wrapper(restored)
        html = simple_result_page(
            "elderberry", [("Web", make_records("Web", 4, "elderberry"))]
        )
        assert json.dumps(
            asdict(compiled.extract(html, "elderberry")), sort_keys=True
        ) == json.dumps(
            asdict(engine.extract(html, "elderberry")), sort_keys=True
        )


class TestErrors:
    def test_not_json(self):
        with pytest.raises(WrapperFormatError):
            wrapper_from_json("this is not json {")

    def test_wrong_format_marker(self):
        with pytest.raises(WrapperFormatError):
            wrapper_from_json(json.dumps({"format": "something-else"}))

    def test_unknown_version(self, engine):
        payload = json.loads(wrapper_to_json(engine))
        payload["version"] = 999
        with pytest.raises(WrapperFormatError):
            wrapper_from_json(json.dumps(payload))

    def test_unknown_family_type(self, engine):
        payload = json.loads(wrapper_to_json(engine))
        if payload["families"]:
            payload["families"][0]["type"] = 7
            with pytest.raises(WrapperFormatError):
                wrapper_from_json(json.dumps(payload))
