"""DOM node tests."""

import pytest

from repro.htmlmod.dom import (
    Comment,
    Document,
    Element,
    Text,
    collapse_whitespace,
)


def small_tree():
    root = Element("html")
    body = Element("body")
    root.append(body)
    div = Element("div", {"class": "a b"})
    body.append(div)
    div.append_text("hello ")
    span = Element("span")
    div.append(span)
    span.append_text("world")
    return root, body, div, span


class TestCollapseWhitespace:
    def test_collapses_runs(self):
        assert collapse_whitespace("a \n\t b") == "a b"

    def test_strips_ends(self):
        assert collapse_whitespace("  x  ") == "x"

    def test_empty(self):
        assert collapse_whitespace("   ") == ""


class TestTreeGeometry:
    def test_parent_pointers_set_on_append(self):
        root, body, div, span = small_tree()
        assert span.parent is div
        assert div.parent is body

    def test_index_path_roundtrip(self):
        root, body, div, span = small_tree()
        path = span.index_path()
        assert root.resolve_index_path(path) is span

    def test_root_has_empty_index_path(self):
        root, *_ = small_tree()
        assert root.index_path() == ()

    def test_ancestors_order(self):
        root, body, div, span = small_tree()
        assert list(span.ancestors()) == [div, body, root]

    def test_root_method(self):
        root, _, _, span = small_tree()
        assert span.root() is root

    def test_depth(self):
        root, body, div, span = small_tree()
        assert root.depth() == 0
        assert span.depth() == 3

    def test_resolve_bad_path_raises(self):
        root, *_ = small_tree()
        with pytest.raises(LookupError):
            root.resolve_index_path((9, 9))

    def test_index_in_parent(self):
        root, body, div, span = small_tree()
        assert body.index_in_parent == 0
        assert span.index_in_parent == 1  # after the text node


class TestMutation:
    def test_insert(self):
        parent = Element("div")
        a = parent.append(Element("a"))
        b = Element("b")
        parent.insert(0, b)
        assert parent.children == [b, a]
        assert b.parent is parent

    def test_remove_detaches(self):
        parent = Element("div")
        child = parent.append(Element("a"))
        parent.remove(child)
        assert child.parent is None
        assert parent.children == []

    def test_reappend_moves_node(self):
        p1 = Element("div")
        p2 = Element("div")
        child = p1.append(Element("a"))
        p2.append(child)
        assert child.parent is p2
        assert p1.children == []


class TestTraversal:
    def test_iter_preorder(self):
        root, body, div, span = small_tree()
        tags = [n.tag for n in root.iter_elements()]
        assert tags == ["html", "body", "div", "span"]

    def test_find(self):
        root, *_ = small_tree()
        assert root.find("span").tag == "span"
        assert root.find("table") is None

    def test_find_all(self):
        root = Element("ul")
        for _ in range(3):
            root.append(Element("li"))
        assert len(root.find_all("li")) == 3

    def test_child_elements_skips_text(self):
        _, _, div, span = small_tree()
        assert div.child_elements() == [span]

    def test_iter_texts(self):
        root, *_ = small_tree()
        assert [t.data for t in root.iter_texts()] == ["hello ", "world"]


class TestContent:
    def test_text_content_collapses(self):
        root, *_ = small_tree()
        assert root.text_content() == "hello world"

    def test_subtree_size(self):
        root, *_ = small_tree()
        # html, body, div, text, span, text
        assert root.subtree_size() == 6

    def test_tag_signature_ignores_text(self):
        root, *_ = small_tree()
        assert root.tag_signature() == ("html", ("body", ("div", ("span",))))

    def test_classes(self):
        _, _, div, _ = small_tree()
        assert div.classes == ("a", "b")
        assert div.has_class("a")
        assert not div.has_class("c")

    def test_comment_has_no_text_content(self):
        c = Comment("note")
        assert c.text_content() == ""


class TestDocument:
    def test_body_found(self):
        root, body, *_ = small_tree()
        assert Document(root).body is body

    def test_body_created_on_demand(self):
        doc = Document(Element("html"))
        body = doc.body
        assert body.tag == "body"
        assert doc.body is body

    def test_title(self):
        root = Element("html")
        head = Element("head")
        title = Element("title")
        title.append_text("  My   Page ")
        head.append(title)
        root.append(head)
        assert Document(root).title == "My Page"

    def test_title_missing(self):
        assert Document(Element("html")).title == ""
