"""Granularity resolution tests (§5.5)."""

from repro.core.model import SectionInstance
from repro.core.granularity import resolve_granularity
from repro.features.blocks import Block
from tests.helpers import render


def section(page, span, record_spans, origin="test"):
    return SectionInstance(
        page=page,
        block=Block(page, span[0], span[1]),
        records=[Block(page, s, e) for s, e in record_spans],
        origin=origin,
    )


LIST_PAGE = render(
    "<html><body><ul>"
    + "".join(
        f"<li><a href='/{i}'>{w} title</a><br>snippet {w} text</li>"
        for i, w in enumerate(["alpha", "bravo", "charlie", "delta"])
    )
    + "</ul></body></html>"
)
# 8 lines: records at (0,1), (2,3), (4,5), (6,7)
TRUE_RECORDS = [(0, 1), (2, 3), (4, 5), (6, 7)]


class TestOversizedRecords:
    def test_merged_records_split(self):
        # Two true records glued into one oversized "record".
        bad = section(LIST_PAGE, (0, 7), [(0, 3), (4, 5), (6, 7)])
        out = resolve_granularity([bad])
        assert len(out) == 1
        assert out[0].record_spans() == TRUE_RECORDS

    def test_correct_partition_untouched(self):
        good = section(LIST_PAGE, (0, 7), TRUE_RECORDS)
        out = resolve_granularity([good])
        assert out[0].record_spans() == TRUE_RECORDS

    def test_sections_mistaken_as_records_split(self):
        # Two adjacent same-format sections glued into one MR whose
        # "records" are the sections.  §5.5: the separating structure (a
        # divider image row) is part of the *second* big record only, so
        # its first mined piece is special and the MR is split.
        page = render(
            "<html><body><div>"
            "<p><a href='/1'>alpha title</a><br>snippet alpha body</p>"
            "<p><a href='/2'>bravo title</a><br>snippet bravo body</p>"
            "</div><div>"
            "<p><img src='divider.gif'></p>"
            "<p><a href='/3'>charlie title</a><br>snippet charlie body</p>"
            "<p><a href='/4'>delta title</a><br>snippet delta body</p>"
            "</div></body></html>"
        )
        # lines: 0-3 section one records, 4 divider, 5-8 section two records
        glued = section(page, (0, 8), [(0, 3), (4, 8)])
        out = resolve_granularity([glued])
        assert len(out) == 2
        assert out[0].start == 0 and out[1].start == 4


class TestSplitRecords:
    def test_uniform_start_partition_not_combined(self):
        good = section(LIST_PAGE, (0, 7), TRUE_RECORDS)
        out = resolve_granularity([good])
        assert len(out[0].records) == 4

    def test_title_snippet_split_recombined(self):
        # Each record split into title-record and snippet-record: the
        # coarser pairing has higher cohesion and wins.
        page = render(
            "<html><body><div>"
            "<p><b>alpha heading text</b></p><p>plain alpha body</p>"
            "<p><b>bravo heading text</b></p><p>plain bravo body</p>"
            "<p><b>charlie heading text</b></p><p>plain charlie body</p>"
            "<p><b>delta heading text</b></p><p>plain delta body</p>"
            "</div></body></html>"
        )
        split = section(page, (0, 7), [(i, i) for i in range(8)])
        out = resolve_granularity([split])
        assert out[0].record_spans() == [(0, 1), (2, 3), (4, 5), (6, 7)]


class TestSiblingSingletonMerge:
    def test_adjacent_one_record_sibling_sections_merged(self):
        page = render(
            "<html><body><div>"
            "<table><tr><td><a href='/1'>alpha title</a></td><td>meta a</td></tr></table>"
            "<table><tr><td><a href='/2'>bravo title</a></td><td>meta b</td></tr></table>"
            "<table><tr><td><a href='/3'>charlie title</a></td><td>meta c</td></tr></table>"
            "</div></body></html>"
        )
        # each table renders 2 lines; three "sections" of one record each
        parts = [
            section(page, (0, 1), [(0, 1)]),
            section(page, (2, 3), [(2, 3)]),
            section(page, (4, 5), [(4, 5)]),
        ]
        out = resolve_granularity(parts)
        assert len(out) == 1
        assert out[0].record_spans() == [(0, 1), (2, 3), (4, 5)]
        assert out[0].origin == "granularity-merged"

    def test_gap_prevents_merge(self):
        page = render(
            "<html><body>"
            "<table><tr><td><a href='/1'>alpha</a></td></tr></table>"
            "<p>separator text line</p>"
            "<table><tr><td><a href='/2'>bravo</a></td></tr></table>"
            "</body></html>"
        )
        parts = [
            section(page, (0, 0), [(0, 0)]),
            section(page, (2, 2), [(2, 2)]),
        ]
        out = resolve_granularity(parts)
        assert len(out) == 2

    def test_multi_record_sections_not_merged(self):
        a = section(LIST_PAGE, (0, 3), [(0, 1), (2, 3)])
        b = section(LIST_PAGE, (4, 7), [(4, 5), (6, 7)])
        out = resolve_granularity([a, b])
        assert len(out) == 2


class TestOrdering:
    def test_output_sorted_by_start(self):
        a = section(LIST_PAGE, (4, 7), [(4, 5), (6, 7)])
        b = section(LIST_PAGE, (0, 3), [(0, 1), (2, 3)])
        out = resolve_granularity([a, b])
        assert [s.start for s in out] == sorted(s.start for s in out)

    def test_empty_input(self):
        assert resolve_granularity([]) == []
