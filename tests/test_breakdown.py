"""Breakdown reporting tests."""

import pytest

from repro.evalkit.harness import breakdown, run_evaluation


@pytest.fixture(scope="module")
def run():
    return run_evaluation("all", limit=6)


class TestBreakdown:
    def test_template_partition_covers_all_engines(self, run):
        groups = breakdown(run, "template")
        total = sum(rows.total_sections.actual for _, rows in groups)
        assert total == run.rows.total_sections.actual

    def test_sections_dimension_labels(self, run):
        labels = {label for label, _ in breakdown(run, "sections")}
        assert labels <= {"single", "multi", "shared-table"}
        assert labels  # at least one group

    def test_junk_dimension(self, run):
        labels = {label for label, _ in breakdown(run, "junk")}
        assert labels <= {"with-junk", "clean"}

    def test_style_groups_sorted(self, run):
        labels = [label for label, _ in breakdown(run, "style")]
        assert labels == sorted(labels)

    def test_unknown_dimension_raises(self, run):
        with pytest.raises(ValueError):
            breakdown(run, "nonsense")

    def test_engine_metadata_recorded(self, run):
        for result in run.engines:
            assert result.template
            assert result.styles
            assert result.section_count >= 1


class TestCliBreakdown:
    def test_harness_main_with_breakdown(self, capsys):
        from repro.evalkit.harness import main

        code = main(["--table", "1", "--limit", "2", "--breakdown", "template"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Breakdown by template" in out


class TestCsvExport:
    def test_csv_written(self, run, tmp_path):
        import csv

        from repro.evalkit.harness import write_engine_csv

        path = tmp_path / "engines.csv"
        write_engine_csv(run, str(path))
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(run.engines)
        assert rows[0]["engine_id"] == "0"
        assert 0.0 <= float(rows[0]["recall_total"]) <= 1.0

    def test_harness_main_csv(self, tmp_path, capsys):
        from repro.evalkit.harness import main

        path = tmp_path / "out.csv"
        code = main(["--table", "1", "--limit", "2", "--csv", str(path)])
        assert code == 0
        assert path.exists()
