"""Refinement tests: the five MR/DS relationship cases (§5.3)."""

from repro.core.dse import DynamicSection
from repro.core.mre import TentativeMR, extract_mrs
from repro.core.refine import refine_page
from repro.features.blocks import Block
from tests.helpers import render

# A section of 5 uniform records (lines 1-10) between a header (0) and a
# footer (11), followed by chrome (12).
PAGE = render(
    "<html><body>"
    "<h2>Web</h2>"
    "<ul>"
    + "".join(
        f"<li><a href='/{i}'>{w} title {i}</a><br>snippet {w} body</li>"
        for i, w in enumerate(["alpha", "bravo", "charlie", "delta", "echo"])
    )
    + "</ul>"
    "<a href='/more'>More results</a>"
    "<p>Copyright TestCorp</p>"
    "</body></html>"
)
# lines: 0=h2, 1..10 records (2 lines each), 11=more, 12=copyright
CSBMS = {0, 11, 12}


def mr(start_ends):
    return TentativeMR(PAGE, [Block(PAGE, s, e) for s, e in start_ends])


def ds(start, end, lbm=None, rbm=None):
    return DynamicSection(PAGE, start, end, lbm=lbm, rbm=rbm)


RECORDS = [(1, 2), (3, 4), (5, 6), (7, 8), (9, 10)]


class TestCase1ExactMatch:
    def test_perfect_match_kept(self):
        result = refine_page(PAGE, [mr(RECORDS)], [ds(1, 10, 0, 11)], CSBMS)
        assert len(result.sections) == 1
        section = result.sections[0]
        assert section.record_spans() == RECORDS
        assert section.lbm == 0 and section.rbm == 11
        assert result.pending == []


class TestCase4Intersection:
    def test_em_left_trimmed_when_lbm_correct(self):
        # MR wrongly starts at the header line 0.
        bad = mr([(0, 2)] + RECORDS[1:])
        result = refine_page(PAGE, [bad], [ds(1, 10, 0, 11)], CSBMS)
        section = result.sections[0]
        assert section.start >= 1
        assert section.end == 10

    def test_ed_right_growth(self):
        # MR misses the last record; the ED pass grows it back.
        short = mr(RECORDS[:4])
        result = refine_page(PAGE, [short], [ds(1, 10, 0, 11)], CSBMS)
        section = result.sections[0]
        assert section.record_spans() == RECORDS
        assert result.pending == []

    def test_ed_left_growth(self):
        short = mr(RECORDS[1:])
        result = refine_page(PAGE, [short], [ds(1, 10, 0, 11)], CSBMS)
        section = result.sections[0]
        assert section.record_spans() == RECORDS

    def test_dissimilar_leftover_becomes_pending(self):
        # DS includes the more-link line 11 (suppose it were not a CSBM):
        # growth must reject it and emit a leftover DS.
        result = refine_page(
            PAGE, [mr(RECORDS)], [ds(1, 11, 0, 12)], {0, 12}
        )
        section = result.sections[0]
        assert section.end == 10
        assert any(p.start == 11 and p.end == 11 for p in result.pending)


class TestCase5NoOverlap:
    def test_static_mr_discarded(self):
        # An MR over chrome with no DS anywhere near it disappears.
        static = mr([(11, 11), (12, 12)])
        result = refine_page(PAGE, [static], [ds(1, 10, 0, 11)], CSBMS)
        assert all(s.start != 11 for s in result.sections)

    def test_ds_without_mr_pending(self):
        result = refine_page(PAGE, [], [ds(1, 4, 0, None)], CSBMS)
        assert result.sections == []
        assert [(p.start, p.end) for p in result.pending] == [(1, 4)]


class TestCase2And3:
    def test_mr_spanning_two_dss_split(self):
        # Two same-format sections with a real header between them; an MR
        # that swallowed the header is split at the DS boundaries because
        # the record containing the header fails the similarity test.
        page = render(
            "<html><body><h2>Web</h2><ul>"
            "<li><a href='/1'>alpha title</a><br>snippet alpha body</li>"
            "<li><a href='/2'>bravo title</a><br>snippet bravo body</li>"
            "</ul><h2>News</h2><ul>"
            "<li><a href='/3'>charlie title</a><br>snippet charlie body</li>"
            "<li><a href='/4'>delta title</a><br>snippet delta body</li>"
            "</ul></body></html>"
        )
        # lines: 0=h2, 1-4 records, 5=h2, 6-9 records
        swallowed = TentativeMR(
            page,
            [
                Block(page, 1, 2),
                Block(page, 3, 5),  # record that absorbed the News header
                Block(page, 6, 7),
                Block(page, 8, 9),
            ],
        )
        dss = [
            DynamicSection(page, 1, 4, lbm=0, rbm=5),
            DynamicSection(page, 6, 9, lbm=5, rbm=None),
        ]
        result = refine_page(page, [swallowed], dss, {0, 5})
        assert len(result.sections) == 2
        assert result.sections[0].end <= 4
        assert result.sections[1].start >= 6

    def test_false_marker_absorbed(self):
        # A CSBM that sits between visually identical records (a per-record
        # string that escaped filtering) is a *false* marker: §5.3 extends
        # the section across it rather than splitting.
        two_part = mr([(1, 2), (3, 4), (5, 6), (7, 8), (9, 10)])
        dss = [ds(1, 6, 0, 7), ds(8, 10, 7, 11)]
        result = refine_page(PAGE, [two_part], dss, {0, 7, 11, 12})
        covered = set()
        for section in result.sections:
            covered.update(range(section.start, section.end + 1))
        assert set(range(1, 11)) <= covered

    def test_two_mrs_inside_one_ds(self):
        parts = [mr(RECORDS[:2]), mr(RECORDS[3:])]
        result = refine_page(PAGE, parts, [ds(1, 10, 0, 11)], CSBMS)
        covered = set()
        for section in result.sections:
            covered.update(range(section.start, section.end + 1))
        for p in result.pending:
            covered.update(range(p.start, p.end + 1))
        assert covered == set(range(1, 11))


class TestResultShape:
    def test_sections_sorted(self):
        parts = [mr(RECORDS[3:]), mr(RECORDS[:2])]
        result = refine_page(PAGE, parts, [ds(1, 10, 0, 11)], CSBMS)
        starts = [s.start for s in result.sections]
        assert starts == sorted(starts)

    def test_pending_clipped_against_sections(self):
        result = refine_page(
            PAGE, [mr(RECORDS)], [ds(1, 10, 0, 11), ds(12, 12, 11, None)], CSBMS
        )
        for p in result.pending:
            for s in result.sections:
                assert p.end < s.start or p.start > s.end
