"""Warm persistent Server pool tests (lifecycle, parity, crash recovery)."""

import json
import os
import signal
from dataclasses import asdict

import pytest

from repro.core.mse import build_wrapper
from repro.core.verify import check_wrapper
from repro.perf.serve import compile_wrapper, extract_many
from repro.perf.server import Server, auto_chunksize
from tests.helpers import make_records, sample_pages, simple_result_page


@pytest.fixture(scope="module")
def engine():
    pages = sample_pages(
        ("apple", "banana", "cherry"), [("Web", 4), ("News", 3)]
    )
    return build_wrapper(pages)


@pytest.fixture(scope="module")
def compiled(engine):
    return compile_wrapper(engine)


def unseen_pages():
    """Unseen, evolved and markerless pages (the test_serve.py gauntlet)."""
    pages = [
        (
            simple_result_page(
                query,
                [
                    ("Web", make_records("Web", count, query)),
                    ("News", make_records("News", 3, query)),
                ],
            ),
            query,
        )
        for query, count in (("durian", 6), ("elderberry", 2), ("fig", 5))
    ]
    base, query = pages[0]
    # Evolved layouts: extra chrome, deeper wrap, renamed header, filler.
    pages.append(
        (
            base.replace(
                "<body>", "<body><div id='banner'><span>Ad</span></div>", 1
            ),
            query,
        )
    )
    pages.append(
        (
            base.replace("<body>", "<body><div class='wrap'>", 1).replace(
                "</body>", "</div></body>", 1
            ),
            query,
        )
    )
    pages.append(
        (base.replace("<ul>", "<ul><li>sponsored filler</li>", 1), query)
    )
    # One section legitimately absent, and a markerless drifted layout.
    pages.append(
        (
            simple_result_page(
                "grape", [("Web", make_records("Web", 4, "grape"))]
            ),
            "grape",
        )
    )
    pages.append(
        (
            "<html><body><table><tr><td>totally different "
            "layout</td></tr></table></body></html>",
            "kiwi",
        )
    )
    return pages


def extraction_doc(extraction):
    return json.dumps(asdict(extraction), sort_keys=True)


def served_doc(served):
    return extraction_doc(served.extraction) + json.dumps(
        served.health.to_obj(), sort_keys=True
    )


def serial_extract_docs(engine, pages):
    return [[extraction_doc(engine.extract(m, q))] for m, q in pages]


def pooled_extract_docs(results):
    return [[extraction_doc(e) for e in page] for page in results]


# -- the chunking heuristic ---------------------------------------------------


class TestAutoChunksize:
    def test_targets_four_chunks_per_worker(self):
        assert auto_chunksize(64, 4) == 4
        assert auto_chunksize(100, 4) == 7

    def test_small_batches_round_up_to_one(self):
        assert auto_chunksize(3, 4) == 1
        assert auto_chunksize(1, 1) == 1

    def test_capped_for_huge_batches(self):
        assert auto_chunksize(100_000, 2) == 64

    def test_degenerate_inputs(self):
        assert auto_chunksize(0, 4) == 1
        assert auto_chunksize(10, 0) == 1


# -- lifecycle ----------------------------------------------------------------


class TestLifecycle:
    def test_start_submit_close(self, engine):
        pages = unseen_pages()
        server = Server([engine], jobs=2)
        server.start()
        assert server.workers_alive == 2
        got = server.extract(pages)
        assert len(got) == len(pages)
        server.close()
        assert server.workers_alive == 0

    def test_join_is_close(self, engine):
        server = Server([engine], jobs=1)
        server.start()
        server.join()
        assert server.workers_alive == 0

    def test_close_is_idempotent_and_safe_before_start(self, engine):
        server = Server([engine])
        server.close()
        server.close()

    def test_closed_server_rejects_batches(self, engine):
        server = Server([engine], jobs=1)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.extract(unseen_pages()[:1])
        with pytest.raises(RuntimeError, match="closed"):
            server.start()

    def test_needs_at_least_one_wrapper(self):
        with pytest.raises(ValueError, match="at least one wrapper"):
            Server([])

    def test_chunksize_validated(self, engine):
        with pytest.raises(ValueError, match="chunksize"):
            Server([engine], chunksize=0)

    def test_empty_batch_short_circuits(self, engine):
        with Server([engine], jobs=2) as server:
            assert server.extract([]) == []

    def test_context_manager_reuse_across_batches(self, engine):
        """Workers stay resident: two batches, same pool, same pids."""
        pages = unseen_pages()
        serial = serial_extract_docs(engine, pages)
        with Server([engine], jobs=2) as server:
            first = server.extract(pages)
            pids = sorted(p.pid for p in server._workers.values())
            second = server.extract(list(reversed(pages)))
            assert sorted(p.pid for p in server._workers.values()) == pids
        assert pooled_extract_docs(first) == serial
        assert pooled_extract_docs(second) == list(reversed(serial))


# -- parity -------------------------------------------------------------------


class TestParity:
    def test_extract_byte_parity_with_serial(self, engine, compiled):
        """Pooled == serial interpreted == serial compiled, byte for byte,
        on unseen, evolved and markerless pages."""
        pages = unseen_pages()
        serial = serial_extract_docs(engine, pages)
        fast = [[extraction_doc(compiled.extract(m, q))] for m, q in pages]
        assert fast == serial
        for jobs, chunksize in ((1, None), (2, None), (2, 1), (3, 2)):
            with Server([engine], jobs=jobs, chunksize=chunksize) as server:
                assert pooled_extract_docs(server.extract(pages)) == serial, (
                    jobs,
                    chunksize,
                )

    def test_serve_matches_check_wrapper(self, engine):
        pages = unseen_pages()
        reference = [
            extraction_doc(engine.extract(m, q))
            + json.dumps(check_wrapper(engine, m, q).to_obj(), sort_keys=True)
            for m, q in pages
        ]
        with Server([engine], jobs=2, chunksize=2) as server:
            served = server.serve(pages)
        assert [served_doc(page[0]) for page in served] == reference

    def test_priming_does_not_change_results(self, engine):
        pages = unseen_pages()
        serial = serial_extract_docs(engine, pages)
        with Server([engine], jobs=2, prime_pages=pages[:2]) as server:
            assert pooled_extract_docs(server.extract(pages)) == serial

    def test_wrapper_of_routes_pages(self, engine, compiled):
        pages = unseen_pages()[:4]
        with Server([engine, compiled], jobs=2) as server:
            got = server.extract(pages, wrapper_of=[1, 0, 1, 0])
        assert [len(page) for page in got] == [1, 1, 1, 1]
        serial = serial_extract_docs(engine, pages)
        assert pooled_extract_docs(got) == serial

    def test_wrapper_of_validated(self, engine):
        with Server([engine], jobs=1) as server:
            with pytest.raises(ValueError, match="one wrapper per page"):
                server.extract(unseen_pages()[:2], wrapper_of=[0])
            with pytest.raises(ValueError, match="out of range"):
                server.extract(unseen_pages()[:1], wrapper_of=[3])

    def test_deterministic_ordering(self, engine):
        """Result order matches page order on every run and chunking."""
        pages = unseen_pages() * 3
        serial = serial_extract_docs(engine, pages)
        with Server([engine], jobs=3, chunksize=1) as server:
            for _ in range(2):
                assert pooled_extract_docs(server.extract(pages)) == serial


# -- crash recovery -----------------------------------------------------------


class TestCrashRecovery:
    def test_respawn_no_lost_or_duplicate_pages(self, engine):
        pages = unseen_pages() * 2
        serial = serial_extract_docs(engine, pages)
        with Server([engine], jobs=2, chunksize=1) as server:
            victim = next(iter(server._workers.values()))
            os.kill(victim.pid, signal.SIGKILL)
            got = server.extract(pages)
            assert server.restarts >= 1
            assert server.workers_alive == 2
            assert pooled_extract_docs(got) == serial
            respawned = [
                stats
                for stats in server.worker_stats.values()
                if "respawned_for" in stats
            ]
            assert respawned

    def test_stalled_worker_is_killed_and_replaced(self, engine, monkeypatch):
        """A silent-but-alive worker (wedged IPC) cannot deadlock a batch."""
        import repro.perf.server as server_mod

        monkeypatch.setattr(server_mod, "_STALL_POLLS", 5)
        pages = unseen_pages()
        serial = serial_extract_docs(engine, pages)
        with Server([engine], jobs=2, chunksize=1) as server:
            victim = next(iter(server._workers.values()))
            os.kill(victim.pid, signal.SIGSTOP)
            got = server.extract(pages)
            assert server.restarts >= 1
            assert server.workers_alive == 2
            assert pooled_extract_docs(got) == serial

    def test_restart_budget_enforced(self, engine):
        server = Server([engine], jobs=1, max_restarts=0)
        server.start()
        victim = next(iter(server._workers.values()))
        os.kill(victim.pid, signal.SIGKILL)
        with pytest.raises(RuntimeError, match="worker restarts"):
            server.extract(unseen_pages())
        assert server.workers_alive == 0


# -- error propagation --------------------------------------------------------


class TestErrors:
    def test_worker_exception_raises_with_traceback(self, engine):
        with Server([engine], jobs=1) as server:
            with pytest.raises(RuntimeError, match="failed on chunk"):
                server.extract([(None, "boom")])

    def test_pool_reusable_after_error(self, engine):
        """An aborted batch's stale chunks never leak into the next one."""
        pages = unseen_pages()
        serial = serial_extract_docs(engine, pages)
        with Server([engine], jobs=2, chunksize=1) as server:
            with pytest.raises(RuntimeError, match="failed on chunk"):
                server.extract([(None, "boom")] + pages)
            assert pooled_extract_docs(server.extract(pages)) == serial


# -- telemetry ----------------------------------------------------------------


class TestTelemetry:
    def test_worker_stats_report_priming_and_final_warmth(self, engine):
        pages = unseen_pages()
        with Server([engine], jobs=2, prime_pages=pages[:3]) as server:
            server.extract(pages)
        assert set(server.worker_stats) == {0, 1}
        for stats in server.worker_stats.values():
            assert stats["prime_pages"] == 3
            assert "tree_memo" in stats["primed"]
            assert "dinr_memo" in stats["final"]

    def test_observer_merges_worker_metrics(self, engine):
        from repro.obs import Observer

        obs = Observer()
        pages = unseen_pages()
        with Server(
            [engine], jobs=2, prime_pages=pages[:1], obs=obs
        ) as server:
            server.serve(pages)
        doc = obs.stats()
        metrics = doc["metrics"]
        gauges = metrics["gauges"]
        assert gauges["server.workers"] == 2.0
        assert "server.chunksize" in gauges
        assert any(
            name.startswith("server.worker.") and name.endswith("hit_rate")
            for name in gauges
        )
        assert metrics["counters"]["serve.pages"] == len(pages)


# -- the extract_many shim ----------------------------------------------------


class TestExtractManyShim:
    def test_jobs1_never_touches_the_pool(self, engine, monkeypatch):
        """The serial short-circuit must not even construct a Server."""
        import repro.perf.server as server_mod

        def explode(*args, **kwargs):
            raise AssertionError("jobs=1 must not build a Server")

        monkeypatch.setattr(server_mod, "Server", explode)
        pages = unseen_pages()
        serial = serial_extract_docs(engine, pages)
        got = extract_many(pages, [engine], jobs=1)
        assert pooled_extract_docs(got) == serial
        # A single page also short-circuits, whatever jobs says.
        got = extract_many(pages[:1], [engine], jobs=4)
        assert pooled_extract_docs(got) == serial[:1]

    def test_pooled_shim_matches_serial(self, engine):
        pages = unseen_pages()
        serial = serial_extract_docs(engine, pages)
        got = extract_many(pages, [engine], jobs=2, chunksize=2)
        assert pooled_extract_docs(got) == serial
