"""End-to-end tests: template evolution, drift detection, self-healing."""

import json

import pytest

from repro.cli import main
from repro.core.mse import build_wrapper
from repro.monitor import MonitorConfig, WrapperMonitor
from repro.obs import Observer, read_health_events
from repro.testbed import (
    MUTATIONS,
    SAMPLE_PAGES,
    evolve_engine,
    load_evolving_pages,
    make_engine,
)

#: single-section engine with headers: textbook target for every mutation
TEXTBOOK_ENGINE = 3
#: multi-section engine with a noisy marker baseline: the hard case
NOISY_ENGINE = 90


def run_monitor(engine_id, mutation, heal=False, config=None, **load_kwargs):
    """Induce from pre-mutation samples, monitor the rest of the stream."""
    evolving = load_evolving_pages(engine_id, mutation, **load_kwargs)
    wrapper = build_wrapper(evolving.sample_set)
    cfg = config or MonitorConfig(heal=heal)
    monitor = WrapperMonitor(wrapper, cfg)
    for markup, query in evolving.stream(SAMPLE_PAGES):
        monitor.observe_page(markup, query)
    return monitor, evolving.truth


class TestTemplateEvolution:
    def test_registry_names(self):
        assert set(MUTATIONS) == {
            "marker_rewrite", "style_swap", "section_drop", "header_retag",
        }

    def test_deterministic_workload(self):
        first = load_evolving_pages(TEXTBOOK_ENGINE, "marker_rewrite")
        second = load_evolving_pages(TEXTBOOK_ENGINE, "marker_rewrite")
        assert first.pages == second.pages
        assert first.queries == second.queries

    def test_pages_change_exactly_at_mutate_at(self):
        evolving = load_evolving_pages(
            TEXTBOOK_ENGINE, "marker_rewrite", mutate_at=8, total_pages=16
        )
        pristine = evolving.engine
        mutated = evolving.mutated
        for index, query in enumerate(evolving.queries):
            expected = (
                pristine if index < 8 else mutated
            ).result_page(query)
            assert evolving.pages[index] == expected

    def test_sample_set_is_pre_mutation(self):
        evolving = load_evolving_pages(
            TEXTBOOK_ENGINE, "style_swap", mutate_at=3, total_pages=10
        )
        assert len(evolving.sample_set) == 3
        pristine_pages = [
            evolving.engine.result_page(q) for q in evolving.queries[:3]
        ]
        assert [page for page, _ in evolving.sample_set] == pristine_pages

    def test_original_engine_untouched(self):
        engine = make_engine(TEXTBOOK_ENGINE)
        topics = [spec.topic for spec in engine.sections]
        evolve_engine(engine, "marker_rewrite")
        assert [spec.topic for spec in engine.sections] == topics

    def test_marker_rewrite_changes_headers(self):
        engine = make_engine(TEXTBOOK_ENGINE)
        mutated = evolve_engine(engine, "marker_rewrite")
        assert all(
            spec.topic.startswith("Featured ") for spec in mutated.sections
        )

    def test_section_drop_removes_last_schema(self):
        engine = make_engine(NOISY_ENGINE)
        mutated = evolve_engine(engine, "section_drop")
        assert len(mutated.sections) == len(engine.sections) - 1

    def test_noop_flags(self):
        shared = make_engine(84)
        assert shared.shared_table
        assert MUTATIONS["style_swap"].is_noop(shared)
        assert MUTATIONS["header_retag"].is_noop(shared)
        assert not MUTATIONS["marker_rewrite"].is_noop(shared)

    def test_drift_expected_reflects_noop_and_benign(self):
        benign = load_evolving_pages(TEXTBOOK_ENGINE, "header_retag")
        assert not benign.truth.drift_expected
        breaking = load_evolving_pages(TEXTBOOK_ENGINE, "style_swap")
        assert breaking.truth.drift_expected

    def test_rejects_unknown_mutation(self):
        with pytest.raises(ValueError):
            load_evolving_pages(TEXTBOOK_ENGINE, "no_such_mutation")

    def test_rejects_bad_mutate_at(self):
        with pytest.raises(ValueError):
            load_evolving_pages(TEXTBOOK_ENGINE, "style_swap", mutate_at=30)


class TestDriftDetection:
    @pytest.mark.parametrize("mutation", ["marker_rewrite", "style_swap"])
    def test_detects_breaking_mutation_within_bound(self, mutation):
        monitor, truth = run_monitor(TEXTBOOK_ENGINE, mutation)
        summary = monitor.summary()
        assert summary.drifts == 1
        detected_at = SAMPLE_PAGES + summary.drift_pages[0]
        latency = truth.detection_latency(detected_at)
        assert 0 <= latency <= 4
        # No false positive before the mutation.
        assert detected_at >= truth.mutate_at

    def test_section_drop_on_single_section_engine(self):
        monitor, truth = run_monitor(TEXTBOOK_ENGINE, "section_drop")
        summary = monitor.summary()
        assert truth.drift_expected
        assert summary.drifts == 1
        assert SAMPLE_PAGES + summary.drift_pages[0] >= truth.mutate_at

    def test_benign_mutation_never_alarms(self):
        monitor, truth = run_monitor(TEXTBOOK_ENGINE, "header_retag")
        assert not truth.drift_expected
        assert monitor.summary().drifts == 0
        assert monitor.state == "healthy"

    def test_mutation_free_stream_never_alarms(self):
        evolving = load_evolving_pages(
            TEXTBOOK_ENGINE, "marker_rewrite", mutate_at=24, total_pages=24
        )
        wrapper = build_wrapper(evolving.sample_set)
        monitor = WrapperMonitor(wrapper)
        for markup, query in evolving.stream(SAMPLE_PAGES):
            monitor.observe_page(markup, query)
        assert monitor.summary().drifts == 0

    def test_check_events_logged_per_page(self):
        monitor, _ = run_monitor(TEXTBOOK_ENGINE, "marker_rewrite")
        checks = monitor.log.of_kind("check")
        assert len(checks) == monitor.pages_seen
        assert [event["page"] for event in checks] == list(
            range(monitor.pages_seen)
        )
        assert all("windows" in event for event in checks)


class TestSelfHealing:
    def test_heal_recovers_textbook_engine(self):
        monitor, truth = run_monitor(TEXTBOOK_ENGINE, "style_swap", heal=True)
        summary = monitor.summary()
        assert summary.drifts == 1
        assert summary.heals == 1
        assert summary.state == "healthy"
        heals = monitor.log.of_kind("heal")
        assert heals[-1]["recovered"] is True
        assert heals[-1]["score"] >= monitor.config.threshold
        # Scores return to healthy after the swap.
        post_heal = [
            event["score"]
            for event in monitor.log.of_kind("check")
            if event["page"] > summary.heal_pages[0]
        ]
        assert post_heal and min(post_heal) >= monitor.config.threshold

    def test_failed_heal_keeps_old_wrapper_and_retries(self):
        # The noisy engine overestimates pages_since_change on its first
        # alarm, so the first re-induction mixes pre- and post-mutation
        # samples and must be rejected; a later retry heals.
        monitor, _ = run_monitor(NOISY_ENGINE, "marker_rewrite", heal=True)
        heals = monitor.log.of_kind("heal")
        assert len(heals) >= 2
        assert heals[0]["recovered"] is False
        assert heals[-1]["recovered"] is True
        assert monitor.state == "healthy"
        retry_gap = heals[1]["page"] - heals[0]["page"]
        assert retry_gap >= monitor.config.retry_every

    def test_no_heal_without_flag(self):
        monitor, _ = run_monitor(TEXTBOOK_ENGINE, "style_swap", heal=False)
        summary = monitor.summary()
        assert summary.drifts == 1
        assert summary.reinductions == 0
        assert monitor.state == "drifted"

    def test_checkpointed_heal_resumes(self, tmp_path):
        config = MonitorConfig(heal=True, checkpoint_dir=str(tmp_path / "ck"))
        monitor, _ = run_monitor(
            TEXTBOOK_ENGINE, "style_swap", config=config
        )
        assert monitor.summary().heals == 1
        assert monitor.log.of_kind("reinduce")[0]["resumed"] is True
        assert (tmp_path / "ck").is_dir()

    def test_monitor_counts_into_observer(self):
        evolving = load_evolving_pages(TEXTBOOK_ENGINE, "style_swap")
        wrapper = build_wrapper(evolving.sample_set)
        obs = Observer()
        monitor = WrapperMonitor(wrapper, MonitorConfig(heal=True), obs=obs)
        for markup, query in evolving.stream(SAMPLE_PAGES):
            monitor.observe_page(markup, query)
        counters = obs.metrics.counters
        assert counters["monitor.pages"] == monitor.pages_seen
        assert counters["monitor.drifts"] == 1
        assert counters["monitor.heals"] == 1
        paths = [node.path for node in obs.spans()]
        assert "monitor" in paths
        assert "monitor/reinduce" in paths


class TestMonitorCli:
    def test_testbed_mode_detects_and_heals(self, tmp_path, capsys):
        events = str(tmp_path / "events.jsonl")
        summary_path = str(tmp_path / "summary.json")
        code = main([
            "monitor", "--testbed", str(TEXTBOOK_ENGINE),
            "--evolve", "style_swap", "--heal",
            "--events", events, "--json", summary_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "DRIFT confirmed" in out
        assert "recovered" in out
        doc = json.loads(open(summary_path).read())
        assert doc["state"] == "healthy"
        assert doc["drifts"] == 1
        assert doc["detection_latency"] is not None
        assert doc["detection_latency"] <= 4
        assert doc["truth"]["mutation"] == "style_swap"
        log = read_health_events(events)
        assert log.of_kind("drift") and log.of_kind("heal")

    def test_testbed_mode_benign_control(self, capsys):
        code = main([
            "monitor", "--testbed", str(TEXTBOOK_ENGINE),
            "--evolve", "header_retag",
        ])
        assert code == 0
        assert "0 drift(s)" in capsys.readouterr().out

    def test_testbed_drift_without_heal_exits_nonzero(self, capsys):
        code = main([
            "monitor", "--testbed", str(TEXTBOOK_ENGINE),
            "--evolve", "style_swap",
        ])
        assert code == 1

    def test_file_mode(self, tmp_path, capsys):
        from repro.testbed import load_engine_pages

        pages = load_engine_pages(TEXTBOOK_ENGINE)
        wrapper_path = str(tmp_path / "w.json")
        args = []
        for index, (markup, query) in enumerate(pages.sample_set):
            path = tmp_path / f"page{index}.html"
            path.write_text(markup)
            args.append(f"{path}:{query}")
        assert main(["induce", "-o", wrapper_path] + args) == 0
        code = main(["monitor", "-w", wrapper_path] + args)
        assert code == 0
        assert "0 drift(s)" in capsys.readouterr().out

    def test_file_mode_requires_wrapper(self, capsys):
        assert main(["monitor", "page.html"]) == 2

    def test_unknown_mutation_is_usage_error(self, capsys):
        code = main([
            "monitor", "--testbed", "3", "--evolve", "bogus",
        ])
        assert code == 2

    def test_check_json_output(self, tmp_path):
        from repro.testbed import load_engine_pages

        pages = load_engine_pages(TEXTBOOK_ENGINE)
        wrapper_path = str(tmp_path / "w.json")
        args = []
        for index, (markup, query) in enumerate(pages.sample_set):
            path = tmp_path / f"page{index}.html"
            path.write_text(markup)
            args.append(f"{path}:{query}")
        assert main(["induce", "-o", wrapper_path] + args) == 0
        out = str(tmp_path / "health.json")
        markup, query = pages.sample_set[0]
        code = main([
            "check", "-w", wrapper_path, args[0].rsplit(":", 1)[0]
            if ":" in args[0] else args[0],
            "--query", query, "--json", out,
        ])
        assert code == 0
        doc = json.loads(open(out).read())
        assert doc["drifted"] is False
        assert doc["score"] == 1.0
        assert "marker_hit_found_rate" in doc["metrics"]
        assert doc["sections"][0]["status"] == "ok"
