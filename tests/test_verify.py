"""Wrapper health / drift detection tests."""

import pytest

from repro.core.mse import build_wrapper
from repro.core.verify import (
    check_wrapper,
    check_wrapper_on_pages,
    SectionHealth,
)
from tests.helpers import make_records, sample_pages, simple_result_page


@pytest.fixture(scope="module")
def engine():
    return build_wrapper(
        sample_pages(("apple", "banana", "cherry"), [("Web", 4), ("News", 3)])
    )


class TestHealthyPages:
    def test_training_like_page_healthy(self, engine):
        html = simple_result_page(
            "durian",
            [
                ("Web", make_records("Web", 5, "durian")),
                ("News", make_records("News", 3, "durian")),
            ],
        )
        health = check_wrapper(engine, html, "durian")
        assert health.score >= 0.9
        assert not health.drifted

    def test_absent_section_only_mild_penalty(self, engine):
        html = simple_result_page(
            "durian", [("Web", make_records("Web", 5, "durian"))]
        )
        health = check_wrapper(engine, html, "durian")
        assert not health.drifted
        absent = [s for s in health.sections if not s.found]
        assert absent  # News section missing counts as absent, not broken


class TestDriftedPages:
    def test_redesigned_page_flagged(self, engine):
        health = check_wrapper(
            engine, "<html><body><div>totally new layout</div></body></html>"
        )
        assert health.drifted

    def test_empty_wrapper_scores_zero(self):
        from repro.core.wrapper import EngineWrapper

        health = check_wrapper(EngineWrapper([]), "<html><body></body></html>")
        assert health.score == 0.0

    def test_wild_record_count_suspected(self, engine):
        # 40 records vs typical ~4 exceeds the plausibility band.
        html = simple_result_page(
            "durian", [("Web", make_records("Web", 40, "durian"))]
        )
        health = check_wrapper(engine, html, "durian")
        web = next(s for s in health.sections if s.found)
        assert web.record_count >= 30
        assert not web.healthy


class TestSectionHealth:
    def test_absent_not_healthy(self):
        assert not SectionHealth(schema_id="S0", found=False).healthy

    def test_incoherent_not_healthy(self):
        health = SectionHealth(
            schema_id="S0", found=True, record_count=4, typical_records=4,
            homogeneity=0.9,
        )
        assert not health.healthy

    def test_good_section_healthy(self):
        health = SectionHealth(
            schema_id="S0", found=True, record_count=5, typical_records=4,
            homogeneity=0.05,
        )
        assert health.healthy


class TestBulk:
    def test_mean_over_pages(self, engine):
        pages = [
            (
                simple_result_page(
                    q,
                    [
                        ("Web", make_records("Web", 4, q)),
                        ("News", make_records("News", 3, q)),
                    ],
                ),
                q,
            )
            for q in ("kiwi", "mango")
        ]
        score = check_wrapper_on_pages(engine, pages)
        assert score >= 0.9

    def test_empty_page_list(self, engine):
        assert check_wrapper_on_pages(engine, []) == 0.0
