"""Refinement EM-side tests: boundary-marker verification on both sides."""

from repro.core.dse import DynamicSection
from repro.core.mre import TentativeMR
from repro.core.refine import refine_page
from repro.features.blocks import Block
from tests.helpers import render

# header(0), 4 records of 2 lines (1-8), footer(9), copyright(10)
PAGE = render(
    "<html><body>"
    "<h2>Web</h2>"
    "<ul>"
    + "".join(
        f"<li><a href='/{i}'>{w} title {i}</a><br>snippet {w} body</li>"
        for i, w in enumerate(["alpha", "bravo", "charlie", "delta"])
    )
    + "</ul>"
    "<a href='/more'>More results</a>"
    "<p>Copyright TestCorp</p>"
    "</body></html>"
)
CSBMS = {0, 9, 10}
RECORDS = [(1, 2), (3, 4), (5, 6), (7, 8)]


def mr(spans):
    return TentativeMR(PAGE, [Block(PAGE, s, e) for s, e in spans])


class TestEmRight:
    def test_overrun_into_footer_trimmed(self):
        # The MR's last record swallowed the footer and copyright lines.
        bad = mr(RECORDS[:3] + [(7, 10)])
        result = refine_page(
            PAGE, [bad], [DynamicSection(PAGE, 1, 8, lbm=0, rbm=9)], CSBMS
        )
        section = result.sections[0]
        assert section.end <= 8
        assert section.record_spans()[-1][1] <= 8

    def test_rbm_verified_when_boundary_record_dissimilar(self):
        # A record containing the footer line looks nothing like the
        # overlap records -> the RBM is correct, the EM part is dropped.
        bad = mr(RECORDS + [(9, 10)])
        result = refine_page(
            PAGE, [bad], [DynamicSection(PAGE, 1, 8, lbm=0, rbm=9)], CSBMS
        )
        section = result.sections[0]
        assert section.record_spans() == RECORDS


class TestEmBothSides:
    def test_mr_overrunning_both_ends(self):
        bad = mr([(0, 2)] + RECORDS[1:3] + [(7, 9)])
        result = refine_page(
            PAGE, [bad], [DynamicSection(PAGE, 1, 8, lbm=0, rbm=9)], CSBMS
        )
        section = result.sections[0]
        assert 1 <= section.start
        assert section.end <= 8
        # all four records recovered despite both boundaries being wrong
        assert len(section.records) == 4


class TestMarkersRecorded:
    def test_section_markers_are_nearest_csbms(self):
        result = refine_page(
            PAGE, [mr(RECORDS)], [DynamicSection(PAGE, 1, 8, lbm=0, rbm=9)], CSBMS
        )
        section = result.sections[0]
        assert section.lbm == 0
        assert section.rbm == 9
