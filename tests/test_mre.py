"""MRE (multi-record extraction) tests."""

from repro.core.mre import TentativeMR, extract_mrs
from repro.features.blocks import Block
from tests.helpers import make_records, render, simple_result_page


def page_with(n_records, query="apple"):
    html = simple_result_page(query, [("Web", make_records("Web", n_records, query))])
    return render(html)


class TestBasicExtraction:
    def test_finds_the_record_section(self):
        page = page_with(5)
        mrs = extract_mrs(page)
        assert len(mrs) >= 1
        main = max(mrs, key=lambda m: len(m.records))
        assert len(main.records) == 5

    def test_record_boundaries_at_titles(self):
        page = page_with(4)
        mrs = extract_mrs(page)
        main = max(mrs, key=lambda m: len(m.records))
        for record in main.records:
            assert "result" in page.lines[record.start].text

    def test_two_record_section_not_found(self):
        # MRE requires >= 3 records (paper §5.1); smaller sections are
        # left for DSE + mining.
        page = page_with(2)
        mrs = extract_mrs(page)
        for mr in mrs:
            for record in mr.records:
                assert "result" not in page.lines[record.start].text or len(mr.records) >= 3

    def test_empty_page(self):
        page = render("<html><body></body></html>")
        assert extract_mrs(page) == []

    def test_static_repeats_also_extracted(self):
        # A nav of >= 3 identical link lines is picked up (refinement
        # discards it later, case 5).
        page = render(
            "<html><body>"
            + "".join(f'<div><a href="/{i}">Channel {i}</a></div>' for i in range(5))
            + "</body></html>"
        )
        mrs = extract_mrs(page)
        assert len(mrs) == 1
        assert len(mrs[0].records) == 5


class TestMixedRecordLengths:
    def test_alternating_lengths_stay_one_run(self):
        # records alternate 1-line and 2-line (optional snippet)
        items = []
        for i in range(8):
            snippet = f"<br>snippet number {i}" if i % 2 else ""
            items.append(f'<li><a href="/{i}">Result title {i}</a>{snippet}</li>')
        page = render(f"<html><body><ul>{''.join(items)}</ul></body></html>")
        mrs = extract_mrs(page)
        main = max(mrs, key=lambda m: len(m.records))
        assert len(main.records) == 8


class TestTentativeMR:
    def test_span_and_block(self):
        page = page_with(3)
        mrs = extract_mrs(page)
        mr = mrs[0]
        assert mr.span == mr.end - mr.start + 1
        assert mr.block() == Block(page, mr.start, mr.end)

    def test_internal_distance_low_for_uniform_records(self):
        from repro.features.record_distance import RecordDistanceCache

        page = page_with(5)
        main = max(extract_mrs(page), key=lambda m: len(m.records))
        assert main.internal_distance(RecordDistanceCache()) < 0.3


class TestReanchoring:
    def test_pattern_at_record_end_corrected(self):
        # dl layout: the repeating uniform signature is the <dd> snippet
        # line; records must still be anchored at the <dt> titles.
        items = []
        for i in range(5):
            items.append(
                f'<dt><a href="/{i}">Title {"x" * (i % 3)} {i}</a></dt>'
                f"<dd>uniform snippet text</dd>"
            )
        page = render(f"<html><body><dl>{''.join(items)}</dl></body></html>")
        mrs = extract_mrs(page)
        main = max(mrs, key=lambda m: len(m.records))
        starts = {page.lines[r.start].text for r in main.records}
        assert all("Title" in s for s in starts)
