"""Bron-Kerbosch tests, cross-checked against networkx."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.algorithms.cliques import maximal_cliques, section_instance_groups


class TestKnownGraphs:
    def test_triangle(self):
        cliques = maximal_cliques([1, 2, 3], [(1, 2), (2, 3), (1, 3)])
        assert cliques == [frozenset({1, 2, 3})]

    def test_path_graph(self):
        cliques = set(maximal_cliques([1, 2, 3], [(1, 2), (2, 3)]))
        assert cliques == {frozenset({1, 2}), frozenset({2, 3})}

    def test_isolated_vertices_are_singletons(self):
        cliques = set(maximal_cliques([1, 2], []))
        assert cliques == {frozenset({1}), frozenset({2})}

    def test_two_triangles_sharing_a_vertex(self):
        edges = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)]
        cliques = set(maximal_cliques(range(1, 6), edges))
        assert frozenset({1, 2, 3}) in cliques
        assert frozenset({3, 4, 5}) in cliques

    def test_self_loops_ignored(self):
        cliques = set(maximal_cliques([1, 2], [(1, 1), (1, 2)]))
        assert cliques == {frozenset({1, 2})}

    def test_complete_graph(self):
        vertices = list(range(5))
        edges = [(i, j) for i in vertices for j in vertices if i < j]
        assert maximal_cliques(vertices, edges) == [frozenset(vertices)]

    def test_empty_graph(self):
        assert maximal_cliques([], []) == []

    def test_edge_endpoint_not_in_vertices_added(self):
        cliques = set(maximal_cliques([1], [(1, 2)]))
        assert frozenset({1, 2}) in cliques


class TestSectionInstanceGroups:
    def test_min_size_filters_singletons(self):
        groups = section_instance_groups([1, 2, 3], [(1, 2)])
        assert groups == [frozenset({1, 2})]

    def test_sorted_largest_first(self):
        edges = [(1, 2), (2, 3), (1, 3), (4, 5)]
        groups = section_instance_groups([1, 2, 3, 4, 5], edges)
        assert len(groups[0]) == 3
        assert len(groups[1]) == 2

    def test_min_size_three(self):
        edges = [(1, 2), (2, 3), (1, 3), (4, 5)]
        groups = section_instance_groups([1, 2, 3, 4, 5], edges, min_size=3)
        assert groups == [frozenset({1, 2, 3})]


class TestAgainstNetworkx:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=9),
        st.floats(min_value=0.0, max_value=1.0),
        st.randoms(use_true_random=False),
    )
    def test_matches_networkx_find_cliques(self, n, density, rng):
        vertices = list(range(n))
        edges = [
            (i, j)
            for i in vertices
            for j in vertices
            if i < j and rng.random() < density
        ]
        ours = set(maximal_cliques(vertices, edges))

        graph = nx.Graph()
        graph.add_nodes_from(vertices)
        graph.add_edges_from(edges)
        theirs = {frozenset(c) for c in nx.find_cliques(graph)}
        assert ours == theirs

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=8), st.randoms(use_true_random=False))
    def test_every_reported_set_is_a_clique(self, n, rng):
        vertices = list(range(n))
        edges = [
            (i, j) for i in vertices for j in vertices if i < j and rng.random() < 0.5
        ]
        edge_set = {frozenset(e) for e in edges}
        for clique in maximal_cliques(vertices, edges):
            members = sorted(clique)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    assert frozenset({u, v}) in edge_set
