"""The repro.perf fast kernels must agree exactly with the references.

Every optimisation in the perf layer (trimmed/banded edit distance,
bitmask Dtal, memoized tree/forest distance, cached diversity, the
fingerprint fast paths inside ``record_distance``) claims *score
identity* with the naive formula implementations — these property tests
are that claim, on randomized inputs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.algorithms.string_edit import (
    edit_distance,
    edit_distance_reference,
    normalized_edit_distance,
)
from repro.algorithms.tree_edit import (
    OrderedTree,
    forest_distance,
    forest_signature,
    tree_signature,
)
from repro.core.mse import MSEConfig
from repro.features.blocks import Block
from repro.features.cohesion import record_diversity, section_cohesion
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.line_distance import line_distance, text_attr_distance
from repro.features.record_distance import (
    RecordDistanceCache,
    _record_distance_reference,
    record_distance,
)
from repro.htmlmod.parser import parse_html
from repro.perf import (
    ATTR_INTERNER,
    FOREST_MEMO,
    PairMemo,
    block_fingerprint,
    clear_kernel_caches,
    fast_forest_distance,
    kernel_cache_stats,
    masked_attr_distance,
)
from repro.render.layout import render_page
from repro.render.styles import TextAttr

REFERENCE_CONFIG = FeatureConfig(fast_kernels=False)
FAST_CONFIG = FeatureConfig(fast_kernels=True)

# -- strategies -------------------------------------------------------------

symbols = st.integers(min_value=0, max_value=5)
sequences = st.lists(symbols, max_size=12).map(tuple)


@st.composite
def trees(draw, depth=3):
    label = draw(st.sampled_from("abcd"))
    if depth == 0:
        return (label,)
    children = draw(st.lists(trees(depth=depth - 1), max_size=3))
    return (label, *children)


@st.composite
def forests(draw):
    return [OrderedTree.from_tuple(spec) for spec in draw(st.lists(trees(), max_size=3))]


attr_sets = st.frozensets(
    st.builds(
        TextAttr,
        size=st.sampled_from([10, 12, 14]),
        style=st.sampled_from(["plain", "bold", "italic"]),
        underline=st.booleans(),
    ),
    max_size=4,
)


@st.composite
def random_page(draw):
    """A small rendered page with enough lines for multi-line blocks."""
    n = draw(st.integers(min_value=3, max_value=6))
    items = []
    for i in range(n):
        word = "abcdef"[i % 6]
        body = f"<li><a href='/{i}'>{word} item {i}</a>"
        if draw(st.booleans()):
            body += f"<br>snippet {word} text {i}"
        if draw(st.booleans()):
            body = body.replace("<a ", "<a style='font-weight:bold' ", 1)
        items.append(body + "</li>")
    markup = f"<html><body><ul>{''.join(items)}</ul></body></html>"
    return render_page(parse_html(markup))


def random_block(draw, page):
    start = draw(st.integers(min_value=0, max_value=len(page.lines) - 1))
    end = draw(st.integers(min_value=start, max_value=len(page.lines) - 1))
    return Block(page, start, end)


# -- edit distance ----------------------------------------------------------


class TestEditDistanceFast:
    @settings(max_examples=200, deadline=None)
    @given(sequences, sequences)
    def test_matches_reference_default_costs(self, s1, s2):
        assert edit_distance(s1, s2) == edit_distance_reference(s1, s2)

    @settings(max_examples=200, deadline=None)
    @given(sequences, sequences)
    def test_matches_reference_custom_cost(self, s1, s2):
        def cost(a, b):
            return abs(a - b) / 5.0

        assert edit_distance(s1, s2, substitution_cost=cost) == (
            edit_distance_reference(s1, s2, substitution_cost=cost)
        )

    @settings(max_examples=200, deadline=None)
    @given(sequences, sequences)
    def test_nonzero_equal_substitution_cost(self, s1, s2):
        # Equal items may have nonzero substitution cost; trimming must
        # not fire then (an existing threshold test depends on this).
        def cost(a, b):
            return 0.2

        assert edit_distance(s1, s2, substitution_cost=cost) == (
            edit_distance_reference(s1, s2, substitution_cost=cost)
        )

    @settings(max_examples=300, deadline=None)
    @given(sequences, sequences, st.floats(min_value=0.0, max_value=15.0))
    def test_cutoff_contract(self, s1, s2, cutoff):
        true = edit_distance_reference(s1, s2)
        got = edit_distance(s1, s2, cutoff=cutoff)
        if true < cutoff:
            # below the threshold the result must be exact
            assert got == true
        else:
            # at/above it only the ">= cutoff" verdict is promised
            assert got >= cutoff

    def test_trim_only_pays_for_the_difference(self):
        # A long shared prefix/suffix must not change the score.
        base = tuple(range(200))
        edited = base[:100] + (999,) + base[101:]
        assert edit_distance(base, edited) == 1.0


# -- Dtal bitmasks ----------------------------------------------------------


class TestAttrMasks:
    @settings(max_examples=200, deadline=None)
    @given(attr_sets, attr_sets)
    def test_masked_distance_equals_frozenset_distance(self, a1, a2):
        m1 = ATTR_INTERNER.mask(a1)
        m2 = ATTR_INTERNER.mask(a2)
        assert masked_attr_distance(m1, m2) == text_attr_distance(a1, a2)

    def test_interner_reuses_masks(self):
        attrs = frozenset([TextAttr(style="bold")])
        assert ATTR_INTERNER.mask(attrs) is ATTR_INTERNER.mask(frozenset(attrs))


# -- tree / forest memoization ----------------------------------------------


class TestForestMemo:
    @settings(max_examples=100, deadline=None)
    @given(forests(), forests())
    def test_matches_reference(self, f1, f2):
        clear_kernel_caches()
        assert fast_forest_distance(f1, f2) == forest_distance(f1, f2)
        # and again, now served from the memo
        assert fast_forest_distance(f1, f2) == forest_distance(f1, f2)

    @settings(max_examples=50, deadline=None)
    @given(forests())
    def test_signature_equality_means_zero(self, f):
        clone = [OrderedTree.from_tuple(_spec(t)) for t in f]
        assert forest_signature(f) == forest_signature(clone)
        assert fast_forest_distance(f, clone) == 0.0

    def test_signature_is_postorder_unique(self):
        # (a(b c)) vs (a(b(c))): same label multiset, different shape.
        t1 = OrderedTree.from_tuple(("a", ("b",), ("c",)))
        t2 = OrderedTree.from_tuple(("a", ("b", ("c",))))
        assert tree_signature(t1) != tree_signature(t2)
        assert len(tree_signature(t1)) == t1.size()

    def test_memo_hits_are_counted(self):
        clear_kernel_caches()
        f1 = [OrderedTree.from_tuple(("a", ("b",)))]
        f2 = [OrderedTree.from_tuple(("a", ("c",)))]
        fast_forest_distance(f1, f2)
        before = FOREST_MEMO.hits
        fast_forest_distance(f1, f2)
        assert FOREST_MEMO.hits == before + 1
        stats = kernel_cache_stats()
        assert stats["forest_memo"]["hits"] >= 1


def _spec(tree):
    return (tree.label, *[_spec(c) for c in tree.children])


class TestPairMemo:
    def test_stats_cover_every_kernel_cache(self):
        stats = kernel_cache_stats()
        for name in (
            "tree_memo",
            "forest_memo",
            "record_memo",
            "dinr_memo",
            "attr_interner",
            "text_interner",
            "tuple_interner",
        ):
            assert name in stats

    def test_clear_resets_dinr_memo(self):
        from repro.perf.kernels import DINR_MEMO

        DINR_MEMO.store(("config", "key"), 0.25)
        assert DINR_MEMO.get(("config", "key")) == 0.25
        clear_kernel_caches()
        assert DINR_MEMO.get(("config", "key")) is None
        assert len(DINR_MEMO) == 0

    def test_symmetric_lookup(self):
        memo = PairMemo("t")
        a, b = ("a",), ("b",)
        key, found = memo.lookup(a, b)
        assert found is None
        memo.store(key, 1.5)
        key2, found2 = memo.lookup(b, a)
        assert key2 == key and found2 == 1.5
        assert memo.hits == 1 and memo.misses == 1

    def test_bounded(self):
        memo = PairMemo("t", max_entries=2)
        for i in range(5):
            key, _ = memo.lookup((i,), (i, i))
            memo.store(key, float(i))
        assert len(memo) <= 2


# -- feature-layer fast paths -----------------------------------------------


class TestFeatureFastPaths:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_record_distance_matches_reference(self, data):
        page = data.draw(random_page())
        b1 = random_block(data.draw, page)
        b2 = random_block(data.draw, page)
        fast = record_distance(b1, b2, FAST_CONFIG)
        ref = _record_distance_reference(b1, b2, REFERENCE_CONFIG)
        assert fast == ref

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_identical_line_fast_path(self, data):
        page = data.draw(random_page())
        for line in page.lines:
            assert line_distance(line, line) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_identical_block_fast_path(self, data):
        page = data.draw(random_page())
        block = random_block(data.draw, page)
        twin = Block(page, block.start, block.end)
        assert record_distance(block, twin, FAST_CONFIG) == 0.0
        assert record_distance(block, twin, REFERENCE_CONFIG) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_cached_diversity_matches_formula(self, data):
        page = data.draw(random_page())
        cache = RecordDistanceCache(DEFAULT_CONFIG)
        block = random_block(data.draw, page)
        expected = record_diversity(block, DEFAULT_CONFIG)
        assert cache.diversity(block) == expected
        assert cache.diversity(block) == expected  # memoized second ask
        assert cache.diversity_hits == 1 and cache.diversity_misses == 1
        stats = cache.stats()
        assert stats["diversity_hit_rate"] == 0.5
        assert stats["diversity_entries"] == 1

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_cohesion_same_with_and_without_cache(self, data):
        page = data.draw(random_page())
        blocks = [
            random_block(data.draw, page)
            for _ in range(data.draw(st.integers(min_value=1, max_value=3)))
        ]
        with_cache = section_cohesion(
            blocks, DEFAULT_CONFIG, RecordDistanceCache(DEFAULT_CONFIG)
        )
        without = section_cohesion(blocks, DEFAULT_CONFIG)
        assert with_cache == without

    def test_fingerprint_cached_on_block(self):
        page = render_page(
            parse_html("<html><body><p>one</p><p>two</p></body></html>")
        )
        block = Block(page, 0, len(page.lines) - 1)
        fp = block_fingerprint(block)
        assert block_fingerprint(block) is fp
        assert len(fp.type_codes) == len(block)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_element_signature_matches_tree_signature(self, data):
        """Single-walk DOM signatures == reference via OrderedTree."""
        from repro.htmlmod.dom import Element
        from repro.perf.fingerprints import element_tree_signature

        page = data.draw(random_page())
        for node in page.document.root.iter():
            if isinstance(node, Element):
                reference = tree_signature(
                    OrderedTree.from_tuple(node.tag_signature())
                )
                assert element_tree_signature(node) == reference

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_span_forest_matches_all_leaf_reference(self, data):
        """The two-chain span fast paths == the all-leaves reference.

        ``span_forest`` and ``span_subtree`` both lean on the
        document-order invariant (pre-order rendering => contiguous leaf
        runs per subtree) to consider only the first and last span leaf;
        the reference below works from every leaf.
        """
        from repro.render.lines import deepest_common_ancestor

        page = data.draw(random_page())
        block = random_block(data.draw, page)
        leaves = []
        for line in page.lines[block.start : block.end + 1]:
            leaves.extend(line.leaves)
        reference_subtree = (
            deepest_common_ancestor(leaves) if leaves else None
        )
        assert page.span_subtree(block.start, block.end) is reference_subtree
        forest = page.span_forest(block.start, block.end)
        if reference_subtree is None:
            assert forest == []
        elif forest != [reference_subtree]:
            # The forest is a consecutive run of the ancestor's element
            # children (unrendered middles included), covering the span.
            children = [
                child
                for child in reference_subtree.children
                if child in forest
            ]
            assert children == forest


# -- end to end -------------------------------------------------------------


class TestEndToEnd:
    def test_wrapper_induction_identical_with_fast_kernels(self):
        from repro.evalkit.harness import evaluate_engine
        from repro.testbed.corpus import load_engine_pages

        engine_pages = load_engine_pages(83)  # multi-section engine
        fast = evaluate_engine(engine_pages, MSEConfig(features=FAST_CONFIG))
        ref = evaluate_engine(engine_pages, MSEConfig(features=REFERENCE_CONFIG))
        assert fast.rows == ref.rows
        assert fast.failed == ref.failed
