"""Tests for the health-telemetry primitives (repro.obs.health)."""

import io

import pytest

from repro.obs import (
    DriftAlarm,
    Ewma,
    HealthEventLog,
    HealthTracker,
    PageHinkley,
    RollingWindow,
    read_health_events,
)


class TestRollingWindow:
    def test_mean_over_partial_window(self):
        window = RollingWindow(4)
        window.update(1.0)
        window.update(3.0)
        assert window.mean == 2.0
        assert window.count == 2
        assert not window.full

    def test_old_values_evicted(self):
        window = RollingWindow(2)
        for value in (10.0, 1.0, 3.0):
            window.update(value)
        assert window.full
        assert window.mean == 2.0

    def test_empty_window_mean_zero(self):
        assert RollingWindow(3).mean == 0.0

    def test_reset(self):
        window = RollingWindow(2)
        window.update(5.0)
        window.reset()
        assert window.count == 0
        assert window.mean == 0.0

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            RollingWindow(0)


class TestEwma:
    def test_seeded_by_first_value(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.update(0.8) == 0.8
        assert ewma.value == 0.8

    def test_moves_toward_new_values(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(1.0)
        assert ewma.update(0.0) == 0.5
        assert ewma.update(0.0) == 0.25

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    def test_reset(self):
        ewma = Ewma()
        ewma.update(1.0)
        ewma.reset()
        assert ewma.value == 0.0
        assert ewma.update(0.3) == 0.3


class TestPageHinkley:
    def test_stable_stream_never_alarms(self):
        detector = PageHinkley(delta=0.05, lambda_=1.0)
        for _ in range(50):
            assert not detector.update(1.0)
        assert detector.statistic == 0.0
        assert detector.pages_since_change == 0

    def test_downward_shift_alarms(self):
        detector = PageHinkley(delta=0.05, lambda_=1.0)
        for _ in range(10):
            detector.update(1.0)
        fired_at = None
        for page in range(10):
            if detector.update(0.2):
                fired_at = page
                break
        assert fired_at is not None
        assert fired_at <= 4

    def test_pages_since_change_tracks_shift_age(self):
        detector = PageHinkley(delta=0.05, lambda_=10.0)
        for _ in range(10):
            detector.update(1.0)
        for _ in range(3):
            detector.update(0.0)
        assert detector.pages_since_change == 3

    def test_single_dip_recovers(self):
        detector = PageHinkley(delta=0.05, lambda_=2.0)
        for _ in range(10):
            detector.update(1.0)
        detector.update(0.4)
        assert not detector.alarm
        for _ in range(10):
            detector.update(1.0)
        assert detector.statistic == 0.0

    def test_reset(self):
        detector = PageHinkley()
        for _ in range(5):
            detector.update(1.0)
        detector.update(0.0)
        detector.reset()
        assert detector.statistic == 0.0
        assert detector.pages_since_change == 0


class TestHealthTracker:
    def _healthy(self):
        return {"score": 1.0, "marker_hit_found_rate": 1.0,
                "homogeneous_rate": 1.0}

    def _broken(self):
        return {"score": 0.0, "marker_hit_found_rate": 0.0,
                "homogeneous_rate": 0.0}

    def test_healthy_stream_never_confirms(self):
        tracker = HealthTracker()
        for _ in range(30):
            assert tracker.update(self._healthy()) is None

    def test_shift_confirms_drift(self):
        tracker = HealthTracker()
        for _ in range(10):
            tracker.update(self._healthy())
        alarm = None
        for _ in range(8):
            alarm = tracker.update(self._broken())
            if alarm is not None:
                break
        assert isinstance(alarm, DriftAlarm)
        assert alarm.ewma < tracker.threshold
        assert alarm.pages_since_change >= 1

    def test_warmup_suppresses_confirmation(self):
        # A tracker attached to an already-broken wrapper reports bad
        # scores but must not claim it detected a *change*.
        tracker = HealthTracker(warmup=5)
        for _ in range(5):
            assert tracker.update(self._broken()) is None

    def test_healthy_average_suppresses_alarm(self):
        # PH can fire on a transient dip; the EWMA gate keeps a stream
        # whose average is still healthy from confirming.
        tracker = HealthTracker(threshold=0.2)
        for _ in range(10):
            tracker.update(self._healthy())
        mixed = {"score": 0.6, "marker_hit_found_rate": 0.6,
                 "homogeneous_rate": 0.6}
        for _ in range(10):
            assert tracker.update(mixed) is None

    def test_missing_streams_skipped(self):
        tracker = HealthTracker(streams=("score", "absent_metric"))
        for _ in range(5):
            tracker.update({"score": 1.0})
        snap = tracker.snapshot()
        assert snap["absent_metric"]["mean"] == 0.0
        assert snap["score"]["mean"] == 1.0

    def test_reset_forgets_history(self):
        tracker = HealthTracker()
        for _ in range(10):
            tracker.update(self._healthy())
        for _ in range(10):
            tracker.update(self._broken())
        tracker.reset()
        assert tracker.checks == 0
        assert all(
            snap == {"mean": 0.0, "ewma": 0.0, "ph": 0.0}
            for snap in tracker.snapshot().values()
        )

    def test_worst_stream_wins(self):
        tracker = HealthTracker(streams=("a", "b"))
        for _ in range(10):
            tracker.update({"a": 1.0, "b": 1.0})
        alarm = None
        for _ in range(10):
            # b collapses harder than a: its PH statistic grows faster.
            alarm = tracker.update({"a": 0.45, "b": 0.0})
            if alarm is not None:
                break
        assert alarm is not None
        assert alarm.stream == "b"


class TestHealthEventLog:
    def _sample_log(self):
        log = HealthEventLog(meta={"window": 8, "threshold": 0.6})
        log.append("check", page=0, score=1.0)
        log.append("drift", page=5, stream="score")
        log.append("heal", page=6, recovered=True)
        return log

    def test_of_kind_filters(self):
        log = self._sample_log()
        assert [e["page"] for e in log.of_kind("check")] == [0]
        assert log.of_kind("reinduce") == []

    def test_round_trip_via_stream(self):
        log = self._sample_log()
        buffer = io.StringIO()
        log.write_jsonl(buffer)
        loaded = read_health_events(io.StringIO(buffer.getvalue()))
        assert loaded.meta["format"] == "repro-health-events"
        assert loaded.meta["window"] == 8
        assert loaded.events == log.events

    def test_round_trip_via_path(self, tmp_path):
        log = self._sample_log()
        path = str(tmp_path / "health.jsonl")
        log.write_jsonl(path)
        loaded = read_health_events(path)
        assert loaded.events == log.events

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"event": "meta", "format": "something-else"}\n')
        with pytest.raises(ValueError):
            read_health_events(str(path))
