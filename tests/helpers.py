"""Shared builders for the test suite."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.htmlmod.parser import parse_html
from repro.render.layout import render_page
from repro.render.lines import RenderedPage


def render(markup: str) -> RenderedPage:
    """Parse and render an HTML snippet."""
    return render_page(parse_html(markup))


def simple_result_page(
    query: str,
    sections: Sequence[Tuple[str, Sequence[Tuple[str, str]]]],
    *,
    footer_link: bool = True,
) -> str:
    """A small hand-built result page: ``sections`` is a list of
    ``(header, [(title, snippet), ...])``."""
    parts: List[str] = [
        "<html><body>",
        '<div class="nav"><a href="/">Home</a> | <a href="/help">Help</a></div>',
        f"<p>Your search for {query} returned "
        f"{sum(len(r) for _, r in sections) * 9} matches</p>",
    ]
    for header, records in sections:
        parts.append(f"<h2>{header}</h2><ul>")
        for title, snippet in records:
            parts.append(
                f'<li><a href="/d/{title}">{title}</a> rank high<br>{snippet}</li>'
            )
        parts.append("</ul>")
        if footer_link:
            parts.append('<a href="/more">More results</a>')
    parts.append("<p>Copyright 2006 TestCorp</p></body></html>")
    return "".join(parts)


_WORDS = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima",
]


def make_records(prefix: str, count: int, query: str) -> List[Tuple[str, str]]:
    """Deterministic (title, snippet) pairs echoing the query.

    Each record carries a distinct word so cleaned titles differ across
    pages (as real result titles do) — otherwise every title would clean
    to the same string and DSE would rightly treat them as template text.
    """
    salt = sum(ord(c) for c in query)
    return [
        (
            f"{prefix} {_WORDS[(i + salt) % len(_WORDS)]} "
            f"{_WORDS[(2 * i + salt) % len(_WORDS)]} result {i} about {query}",
            f"Snippet {_WORDS[(3 * i + salt + 5) % len(_WORDS)]} mentioning "
            f"{query} variant {i} with details",
        )
        for i in range(count)
    ]


def sample_pages(
    queries: Sequence[str],
    section_plan: Sequence[Tuple[str, int]],
) -> List[Tuple[str, str]]:
    """(html, query) sample pages; ``section_plan`` = [(header, n_records)]."""
    out: List[Tuple[str, str]] = []
    for query in queries:
        sections = [
            (header, make_records(header, count, query))
            for header, count in section_plan
        ]
        out.append((simple_result_page(query, sections), query))
    return out
