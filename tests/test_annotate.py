"""Data annotation tests."""

from repro.core.annotate import annotate_extraction, annotate_record, annotate_section
from repro.core.model import ExtractedRecord, ExtractedSection, PageExtraction
from repro.core.mse import build_wrapper
from tests.helpers import render, sample_pages


def record(*lines, span=None):
    return ExtractedRecord(lines=tuple(lines), line_span=span or (0, len(lines) - 1))


class TestRoleClassification:
    def test_title_and_snippet(self):
        ann = annotate_record(
            record(
                "Chronic asthma treatment guide",
                "A detailed overview of modern asthma treatments and outcomes.",
            )
        )
        assert ann.roles == ("title", "snippet")
        assert ann.title.startswith("Chronic")
        assert "overview" in ann.snippet

    def test_url_line(self):
        ann = annotate_record(
            record("Some result title", "http://www.example.com/a/b.html")
        )
        assert ann.roles[1] == "url"
        assert ann.url == "http://www.example.com/a/b.html"

    def test_www_url(self):
        ann = annotate_record(record("Title here", "www.example.org/page"))
        assert ann.roles[1] == "url"

    def test_date_line(self):
        ann = annotate_record(record("Title here", "4/10/2002"))
        assert ann.roles[1] == "date"
        assert ann.fields["date"] == "4/10/2002"

    def test_price_line(self):
        ann = annotate_record(record("Camera model X", "$129.99"))
        assert ann.roles[1] == "price"
        assert ann.fields["price"] == "$129.99"

    def test_inline_date_in_title_extracted(self):
        ann = annotate_record(record("News story title (7/30/2003)"))
        assert ann.fields.get("date") == "7/30/2003"

    def test_title_fallback_is_first_line(self):
        ann = annotate_record(record("xy"))
        assert ann.title == "xy"

    def test_multi_line_snippet_joined(self):
        ann = annotate_record(
            record(
                "Result title words",
                "First long descriptive sentence of the record.",
                "Second long descriptive sentence of the record.",
            )
        )
        assert "First long" in ann.snippet and "Second long" in ann.snippet


class TestWithRenderedPage:
    PAGE = render(
        "<html><body><ul>"
        "<li><a href='/1'>Linked title one</a><br>"
        "A reasonably long snippet describing the record.<br>"
        "<font color='green' size='2'>http://www.site.com/doc1</font></li>"
        "</ul></body></html>"
    )

    def test_line_types_sharpen_roles(self):
        rec = ExtractedRecord(
            lines=tuple(l.text for l in self.PAGE.lines), line_span=(0, 2)
        )
        ann = annotate_record(rec, self.PAGE)
        assert ann.roles == ("title", "snippet", "url")


class TestBulkHelpers:
    def test_annotate_section_and_extraction(self):
        pages = sample_pages(("apple", "banana"), [("Web", 3)])
        engine = build_wrapper(pages)
        extraction = engine.extract(*pages[0])
        per_schema = annotate_extraction(extraction)
        assert per_schema
        for records in per_schema.values():
            for ann in records:
                assert ann.title
        section = extraction.sections[0]
        assert len(annotate_section(section)) == len(section.records)
