"""String edit distance tests (exact values + metric properties)."""

from hypothesis import given, strategies as st

from repro.algorithms.string_edit import edit_distance, normalized_edit_distance

short_text = st.text(alphabet="abcd", max_size=12)


class TestKnownValues:
    def test_classic_kitten_sitting(self):
        assert edit_distance("kitten", "sitting") == 3.0

    def test_identical(self):
        assert edit_distance("abc", "abc") == 0.0

    def test_empty_vs_nonempty(self):
        assert edit_distance("", "abc") == 3.0
        assert edit_distance("abc", "") == 3.0

    def test_both_empty(self):
        assert edit_distance("", "") == 0.0

    def test_single_substitution(self):
        assert edit_distance("abc", "axc") == 1.0

    def test_works_on_lists(self):
        assert edit_distance([1, 2, 3], [1, 3]) == 1.0


class TestCustomCosts:
    def test_substitution_cost_function(self):
        def cost(a, b):
            return 0.0 if a == b else 0.5

        assert edit_distance("ab", "ax", substitution_cost=cost) == 0.5

    def test_insertion_deletion_costs(self):
        assert edit_distance("a", "abc", insertion_cost=2.0) == 4.0
        assert edit_distance("abc", "a", deletion_cost=0.5) == 1.0

    def test_asymmetric_costs_respect_direction(self):
        # deleting from seq1 vs inserting into seq1 must not be confused
        # by the internal swap that keeps the shorter sequence inner.
        d1 = edit_distance("aaaa", "a", deletion_cost=0.1, insertion_cost=10)
        assert abs(d1 - 0.3) < 1e-9

    def test_fractional_substitution_beats_indel_pair(self):
        def cost(a, b):
            return 0.2

        assert edit_distance("a", "b", substitution_cost=cost) == 0.2


class TestNormalized:
    def test_range_unit_costs(self):
        assert normalized_edit_distance("abc", "xyz") == 1.0
        assert normalized_edit_distance("abc", "abc") == 0.0

    def test_empty_pair_is_zero(self):
        assert normalized_edit_distance("", "") == 0.0

    def test_one_empty(self):
        assert normalized_edit_distance("", "ab") == 1.0

    @given(short_text, short_text)
    def test_bounds(self, s1, s2):
        d = normalized_edit_distance(s1, s2)
        assert 0.0 <= d <= 1.0

    @given(short_text, short_text)
    def test_symmetry(self, s1, s2):
        assert abs(
            normalized_edit_distance(s1, s2) - normalized_edit_distance(s2, s1)
        ) < 1e-12


class TestMetricProperties:
    @given(short_text, short_text)
    def test_symmetry_unnormalized(self, s1, s2):
        assert edit_distance(s1, s2) == edit_distance(s2, s1)

    @given(short_text)
    def test_identity(self, s):
        assert edit_distance(s, s) == 0.0

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c) + 1e-9

    @given(short_text, short_text)
    def test_upper_bound_is_longer_length(self, s1, s2):
        assert edit_distance(s1, s2) <= max(len(s1), len(s2))

    @given(short_text, short_text)
    def test_lower_bound_is_length_difference(self, s1, s2):
        assert edit_distance(s1, s2) >= abs(len(s1) - len(s2))
