"""Evaluation kit tests: matching rules, metrics, harness."""

import pytest

from repro.core.model import ExtractedRecord, ExtractedSection, PageExtraction
from repro.evalkit.matching import (
    PARTIAL_RECORD_FRACTION,
    SectionMatch,
    grade_page,
    span_jaccard,
    span_overlap,
)
from repro.evalkit.metrics import EvalRows, RecordCounts, SectionCounts
from repro.evalkit.report import render_record_table, render_section_table
from repro.testbed.groundtruth import PageTruth, TruthSection


def extracted(span, record_spans, schema="S0"):
    records = tuple(
        ExtractedRecord(lines=("x",), line_span=s) for s in record_spans
    )
    return ExtractedSection(records=records, line_span=span, schema_id=schema)


def truth_section(sid, span, record_spans):
    return TruthSection(sid=sid, span=span, record_spans=tuple(record_spans))


def page_truth(sections):
    return PageTruth(page=None, sections=list(sections))


class TestSpans:
    def test_overlap(self):
        assert span_overlap((0, 5), (3, 8)) == 3
        assert span_overlap((0, 2), (5, 8)) == 0

    def test_jaccard(self):
        assert span_jaccard((0, 4), (0, 4)) == 1.0
        assert span_jaccard((0, 4), (5, 9)) == 0.0
        assert abs(span_jaccard((0, 4), (0, 9)) - 0.5) < 1e-9


class TestGrading:
    RECORDS = [(1, 2), (3, 4), (5, 6), (7, 8), (9, 10)]

    def test_perfect_section(self):
        truth = page_truth([truth_section("s0", (1, 10), self.RECORDS)])
        extraction = PageExtraction(sections=(extracted((1, 10), self.RECORDS),))
        grade = grade_page(extraction, truth)
        assert grade.perfect_count == 1
        assert grade.partial_count == 0
        assert grade.missed_truth == []

    def test_partial_section_above_60_percent(self):
        truth = page_truth([truth_section("s0", (1, 10), self.RECORDS)])
        extraction = PageExtraction(
            sections=(extracted((1, 8), self.RECORDS[:4]),)
        )
        grade = grade_page(extraction, truth)
        assert grade.perfect_count == 0
        assert grade.partial_count == 1

    def test_below_60_percent_not_partial(self):
        truth = page_truth([truth_section("s0", (1, 10), self.RECORDS)])
        extraction = PageExtraction(
            sections=(extracted((1, 6), self.RECORDS[:3]),)
        )
        grade = grade_page(extraction, truth)
        # 3/5 = 60% is not *more than* 60%
        assert grade.partial_count == 0

    def test_extra_record_blocks_perfect(self):
        truth = page_truth([truth_section("s0", (1, 10), self.RECORDS)])
        extraction = PageExtraction(
            sections=(extracted((1, 12), self.RECORDS + [(11, 12)]),)
        )
        grade = grade_page(extraction, truth)
        assert grade.perfect_count == 0
        assert grade.partial_count == 1  # all 5 true records extracted

    def test_wrong_record_boundaries_not_perfect(self):
        truth = page_truth([truth_section("s0", (1, 10), self.RECORDS)])
        shifted = [(2, 3), (4, 5), (6, 7), (8, 9), (10, 10)]
        extraction = PageExtraction(sections=(extracted((1, 10), shifted),))
        grade = grade_page(extraction, truth)
        assert grade.perfect_count == 0
        assert grade.partial_count == 0

    def test_false_section_unmatched(self):
        truth = page_truth([truth_section("s0", (1, 10), self.RECORDS)])
        extraction = PageExtraction(
            sections=(
                extracted((1, 10), self.RECORDS),
                extracted((20, 22), [(20, 22)]),
            )
        )
        grade = grade_page(extraction, truth)
        assert grade.perfect_count == 1
        assert sum(1 for m in grade.matches if not m.matched) == 1

    def test_missed_truth_reported(self):
        truth = page_truth(
            [
                truth_section("s0", (1, 10), self.RECORDS),
                truth_section("s1", (12, 15), [(12, 13), (14, 15)]),
            ]
        )
        extraction = PageExtraction(sections=(extracted((1, 10), self.RECORDS),))
        grade = grade_page(extraction, truth)
        assert [t.sid for t in grade.missed_truth] == ["s1"]

    def test_one_to_one_matching(self):
        # two extracted sections cannot both match one truth section
        truth = page_truth([truth_section("s0", (1, 10), self.RECORDS)])
        extraction = PageExtraction(
            sections=(
                extracted((1, 10), self.RECORDS),
                extracted((1, 9), self.RECORDS[:4]),
            )
        )
        grade = grade_page(extraction, truth)
        matched = [m for m in grade.matches if m.matched]
        assert len(matched) == 1


class TestMetrics:
    def test_section_counts_ratios(self):
        counts = SectionCounts(actual=100, extracted=90, perfect=70, partial=15)
        assert counts.recall_perfect == 0.70
        assert counts.recall_total == 0.85
        assert abs(counts.precision_perfect - 70 / 90) < 1e-9
        assert abs(counts.precision_total - 85 / 90) < 1e-9

    def test_zero_denominators(self):
        counts = SectionCounts()
        assert counts.recall_perfect == 0.0
        assert counts.precision_perfect == 0.0

    def test_record_counts(self):
        counts = RecordCounts(actual=200, extracted=195, correct=190)
        assert counts.recall == 0.95
        assert abs(counts.precision - 190 / 195) < 1e-9

    def test_eval_rows_totals(self):
        rows = EvalRows()
        rows.sample_sections.actual = 10
        rows.test_sections.actual = 7
        assert rows.total_sections.actual == 17

    def test_merge(self):
        a = EvalRows()
        a.sample_sections.perfect = 3
        b = EvalRows()
        b.sample_sections.perfect = 4
        a.merge(b)
        assert a.sample_sections.perfect == 7


class TestReport:
    def test_section_table_renders(self):
        rows = EvalRows()
        rows.sample_sections.merge(SectionCounts(10, 11, 8, 1))
        rows.test_sections.merge(SectionCounts(10, 10, 7, 2))
        table = render_section_table(rows, "Table X")
        assert "Table X" in table
        assert "S pgs" in table and "T pgs" in table and "Total" in table
        assert "80.0" in table  # sample perfect recall

    def test_record_table_renders(self):
        rows = EvalRows()
        rows.sample_records.merge(RecordCounts(100, 99, 98))
        table = render_record_table(rows, "Table 3")
        assert "98.0" in table


class TestHarnessSmoke:
    def test_evaluate_one_engine(self):
        from repro.evalkit.harness import evaluate_engine
        from repro.testbed import load_engine_pages

        result = evaluate_engine(load_engine_pages(0))
        total = result.rows.total_sections
        assert total.actual >= 10
        assert not result.failed
        assert result.build_seconds > 0

    def test_run_evaluation_subset(self):
        from repro.evalkit.harness import run_evaluation

        run = run_evaluation("single", limit=2)
        assert len(run.engines) == 2
        assert run.rows.total_sections.actual > 0


class TestParallelHarness:
    """--jobs N must reproduce the serial run bit for bit."""

    def test_parallel_rows_match_serial(self):
        from dataclasses import asdict

        from repro.evalkit.harness import run_evaluation
        from repro.obs import Observer

        serial_obs = Observer()
        serial = run_evaluation("all", limit=3, obs=serial_obs)
        parallel_obs = Observer()
        parallel = run_evaluation("all", limit=3, obs=parallel_obs, jobs=2)

        assert [e.engine_id for e in parallel.engines] == [
            e.engine_id for e in serial.engines
        ]
        assert [asdict(e.rows) for e in parallel.engines] == [
            asdict(e.rows) for e in serial.engines
        ]
        assert asdict(parallel.rows) == asdict(serial.rows)

        # The merged worker traces carry the same span structure and
        # counters as one serial observer.
        serial_stats = serial_obs.stats()
        parallel_stats = parallel_obs.stats()
        spans_s = {d["path"]: d for d in serial_stats["spans"]}
        spans_p = {d["path"]: d for d in parallel_stats["spans"]}
        assert set(spans_s) == set(spans_p)
        for path, span in spans_s.items():
            assert spans_p[path]["calls"] == span["calls"], path
            assert spans_p[path]["counters"] == span["counters"], path
        assert (
            parallel_stats["metrics"]["counters"]
            == serial_stats["metrics"]["counters"]
        )

    def test_jobs_larger_than_workload(self):
        from repro.evalkit.harness import run_evaluation

        run = run_evaluation("all", limit=2, jobs=8)
        assert len(run.engines) == 2
