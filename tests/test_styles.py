"""Text attribute resolution tests."""

from repro.render.styles import (
    TextAttr,
    apply_element_style,
    default_attr,
    parse_inline_style,
)


def apply(attr, tag, attrs=None):
    return apply_element_style(attr, tag, attrs or {})


class TestPresentationalTags:
    def test_bold(self):
        assert apply(default_attr(), "b").bold

    def test_strong(self):
        assert apply(default_attr(), "strong").bold

    def test_italic(self):
        assert apply(default_attr(), "i").italic
        assert apply(default_attr(), "em").italic

    def test_bold_italic_combination(self):
        attr = apply(apply(default_attr(), "b"), "i")
        assert attr.style == "bold italic"
        assert attr.bold and attr.italic

    def test_underline(self):
        assert apply(default_attr(), "u").underline

    def test_headings_sized_and_bold(self):
        h1 = apply(default_attr(), "h1")
        h3 = apply(default_attr(), "h3")
        assert h1.size > h3.size > 0
        assert h1.bold and h3.bold

    def test_big_small(self):
        base = default_attr()
        assert apply(base, "big").size == base.size + 2
        assert apply(base, "small").size == base.size - 2

    def test_anchor_blue_underlined(self):
        attr = apply(default_attr(), "a", {"href": "/x"})
        assert attr.color == "blue"
        assert attr.underline

    def test_anchor_without_href_unstyled(self):
        attr = apply(default_attr(), "a", {})
        assert attr.color == default_attr().color

    def test_monospace_tags(self):
        assert apply(default_attr(), "tt").font == "courier new"
        assert apply(default_attr(), "code").font == "courier new"

    def test_th_bold(self):
        assert apply(default_attr(), "th").bold


class TestFontTag:
    def test_face(self):
        attr = apply(default_attr(), "font", {"face": "Arial, Helvetica"})
        assert attr.font == "arial"

    def test_absolute_size(self):
        attr = apply(default_attr(), "font", {"size": "5"})
        assert attr.size == 18

    def test_relative_size(self):
        attr = apply(default_attr(), "font", {"size": "+1"})
        assert attr.size == 14

    def test_size_clamped(self):
        attr = apply(default_attr(), "font", {"size": "99"})
        assert attr.size == 32  # legacy size 7

    def test_color(self):
        attr = apply(default_attr(), "font", {"color": "#FF0000"})
        assert attr.color == "#ff0000"

    def test_invalid_size_ignored(self):
        attr = apply(default_attr(), "font", {"size": "huge"})
        assert attr.size == default_attr().size


class TestInlineCss:
    def test_parse_inline_style(self):
        css = parse_inline_style("color: red; font-size: 14px")
        assert css == {"color": "red", "font-size": "14px"}

    def test_font_family(self):
        attr = apply(default_attr(), "span", {"style": "font-family: 'Verdana', sans"})
        assert attr.font == "verdana"

    def test_font_size_px(self):
        attr = apply(default_attr(), "span", {"style": "font-size: 18px"})
        assert attr.size == 18

    def test_font_size_pt_converted(self):
        attr = apply(default_attr(), "span", {"style": "font-size: 12pt"})
        assert attr.size == 16

    def test_font_size_keywords(self):
        attr = apply(default_attr(), "span", {"style": "font-size: x-large"})
        assert attr.size == 18

    def test_font_weight(self):
        assert apply(default_attr(), "span", {"style": "font-weight: bold"}).bold
        assert apply(default_attr(), "span", {"style": "font-weight: 700"}).bold
        assert not apply(default_attr(), "span", {"style": "font-weight: normal"}).bold

    def test_font_style(self):
        assert apply(default_attr(), "span", {"style": "font-style: italic"}).italic

    def test_color(self):
        attr = apply(default_attr(), "span", {"style": "color: green"})
        assert attr.color == "green"

    def test_text_decoration(self):
        attr = apply(default_attr(), "span", {"style": "text-decoration: underline"})
        assert attr.underline

    def test_css_overrides_tag_defaults(self):
        attr = apply(default_attr(), "b", {"style": "font-weight: normal"})
        assert not attr.bold


class TestTextAttrValue:
    def test_equality_and_hash(self):
        a = TextAttr("arial", 12, "bold", "red")
        b = TextAttr("arial", 12, "bold", "red")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_str(self):
        text = str(TextAttr("arial", 14, "bold", "red", underline=True))
        assert "arial" in text and "14" in text and "bold" in text

    def test_default(self):
        attr = default_attr()
        assert attr.style == "plain"
        assert not attr.underline
