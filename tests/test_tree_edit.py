"""Zhang-Shasha tree edit distance tests."""

from hypothesis import given, settings, strategies as st

from repro.algorithms.tree_edit import (
    OrderedTree,
    forest_distance,
    normalized_tree_distance,
    tree_edit_distance,
    tree_from_element,
)
from repro.htmlmod.parser import parse_html


def t(spec):
    return OrderedTree.from_tuple(spec)


class TestKnownValues:
    def test_identical_trees(self):
        tree = t(("a", ("b",), ("c", ("d",))))
        assert tree_edit_distance(tree, tree) == 0.0

    def test_single_relabel(self):
        assert tree_edit_distance(t(("a", ("b",))), t(("a", ("x",)))) == 1.0

    def test_single_insert(self):
        assert tree_edit_distance(t(("a",)), t(("a", ("b",)))) == 1.0

    def test_single_delete(self):
        assert tree_edit_distance(t(("a", ("b",), ("c",))), t(("a", ("b",)))) == 1.0

    def test_leaf_vs_chain(self):
        # a vs a->b->c: two insertions
        assert tree_edit_distance(t(("a",)), t(("a", ("b", ("c",))))) == 2.0

    def test_zhang_shasha_classic_example(self):
        # The canonical f(d(a c(b)) e) vs f(c(d(a b)) e) example: distance 2.
        t1 = t(("f", ("d", ("a",), ("c", ("b",))), ("e",)))
        t2 = t(("f", ("c", ("d", ("a",), ("b",))), ("e",)))
        assert tree_edit_distance(t1, t2) == 2.0

    def test_completely_different_labels(self):
        t1 = t(("a", ("b",)))
        t2 = t(("x", ("y",)))
        assert tree_edit_distance(t1, t2) == 2.0

    def test_sibling_order_matters(self):
        t1 = t(("r", ("a",), ("b",)))
        t2 = t(("r", ("b",), ("a",)))
        # ordered TED: one relabel pair or delete+insert; cost 2 either way
        assert tree_edit_distance(t1, t2) == 2.0


class TestSizeAndConstruction:
    def test_size(self):
        assert t(("a", ("b", ("c",)), ("d",))).size() == 4

    def test_from_element(self):
        doc = parse_html("<body><ul><li>a</li><li>b</li></ul></body>")
        tree = tree_from_element(doc.body.find("ul"))
        assert tree.label == "ul"
        assert [c.label for c in tree.children] == ["li", "li"]

    def test_custom_cost(self):
        def cost(a, b):
            if a is None or b is None:
                return 2.0
            return 0.0 if a == b else 0.5

        assert tree_edit_distance(t(("a",)), t(("b",)), cost) == 0.5
        assert tree_edit_distance(t(("a",)), t(("a", ("b",))), cost) == 2.0


class TestNormalized:
    def test_identical_is_zero(self):
        tree = t(("a", ("b",)))
        assert normalized_tree_distance(tree, tree) == 0.0

    def test_range(self):
        t1 = t(("a", ("b",), ("c",)))
        t2 = t(("x",))
        d = normalized_tree_distance(t1, t2)
        assert 0.0 <= d <= 1.0

    def test_structurally_disjoint_pair_saturates_at_one(self):
        # Regression (found by hypothesis): ancestry constraints make a
        # raw distance of 6 between these two 5-node trees, so the
        # larger-size ratio is 1.2 without the clamp.
        t1 = t(("a", ("b", ("a",), ("a",)), ("a",)))
        t2 = t(("c", ("c",), ("a", ("c",), ("b",))))
        assert tree_edit_distance(t1, t2) == 6.0
        assert normalized_tree_distance(t1, t2) == 1.0


# Random tree strategy: nested tuples with small labels and sizes.
def tree_strategy(max_depth=3):
    labels = st.sampled_from(["a", "b", "c"])
    return st.recursive(
        labels.map(lambda l: (l,)),
        lambda children: st.tuples(labels, children, children).map(
            lambda triple: (triple[0], triple[1], triple[2])
        ),
        max_leaves=6,
    )


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(tree_strategy())
    def test_self_distance_zero(self, spec):
        tree = t(spec)
        assert tree_edit_distance(tree, tree) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(tree_strategy(), tree_strategy())
    def test_symmetry(self, s1, s2):
        t1, t2 = t(s1), t(s2)
        assert tree_edit_distance(t1, t2) == tree_edit_distance(t2, t1)

    @settings(max_examples=40, deadline=None)
    @given(tree_strategy(), tree_strategy())
    def test_bounds(self, s1, s2):
        t1, t2 = t(s1), t(s2)
        d = tree_edit_distance(t1, t2)
        assert abs(t1.size() - t2.size()) <= d <= t1.size() + t2.size()
        assert 0.0 <= normalized_tree_distance(t1, t2) <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(tree_strategy(), tree_strategy(), tree_strategy())
    def test_triangle_inequality(self, s1, s2, s3):
        t1, t2, t3 = t(s1), t(s2), t(s3)
        assert tree_edit_distance(t1, t3) <= (
            tree_edit_distance(t1, t2) + tree_edit_distance(t2, t3) + 1e-9
        )


class TestForestDistance:
    def test_identical_forests(self):
        f = [t(("a", ("b",))), t(("c",))]
        assert forest_distance(f, f) == 0.0

    def test_empty_forests(self):
        assert forest_distance([], []) == 0.0

    def test_one_empty(self):
        assert forest_distance([t(("a",))], []) == 1.0

    def test_extra_tree_costs_fractionally(self):
        f1 = [t(("a",)), t(("b",))]
        f2 = [t(("a",))]
        assert abs(forest_distance(f1, f2) - 0.5) < 1e-9

    def test_range(self):
        f1 = [t(("a", ("b",), ("c",)))]
        f2 = [t(("x",)), t(("y",))]
        assert 0.0 <= forest_distance(f1, f2) <= 1.0
