"""RenderedPage DOM-mapping tests: span forests and subtrees."""

from repro.render.lines import deepest_common_ancestor
from tests.helpers import render

PAGE = render(
    "<html><body>"
    "<h2>Header</h2>"
    "<ul><li><a href='/1'>one</a><br>snip one</li>"
    "<li><a href='/2'>two</a><br>snip two</li></ul>"
    "<p>footer</p>"
    "</body></html>"
)
# lines: 0 Header, 1 one, 2 snip one, 3 two, 4 snip two, 5 footer


class TestSpanSubtree:
    def test_whole_list(self):
        assert PAGE.span_subtree(1, 4).tag == "ul"

    def test_single_record(self):
        assert PAGE.span_subtree(1, 2).tag == "li"

    def test_cross_section_span(self):
        assert PAGE.span_subtree(0, 5).tag == "body"

    def test_single_line(self):
        subtree = PAGE.span_subtree(0, 0)
        assert subtree.tag == "h2"


class TestSpanForest:
    def test_record_forest_is_li_children(self):
        forest = PAGE.span_forest(1, 2)
        assert [e.tag for e in forest] == ["a", "br"]

    def test_section_forest_is_li_list(self):
        forest = PAGE.span_forest(1, 4)
        assert [e.tag for e in forest] == ["li", "li"]

    def test_full_page_forest(self):
        forest = PAGE.span_forest(0, 5)
        assert [e.tag for e in forest] == ["h2", "ul", "p"]

    def test_empty_for_out_of_content(self):
        page = render("<html><body></body></html>")
        assert page.span_forest(0, 0) == []


class TestDeepestCommonAncestor:
    def test_sibling_leaves(self):
        lis = PAGE.document.body.find_all("li")
        assert deepest_common_ancestor(lis).tag == "ul"

    def test_single_node_is_own_ancestor(self):
        ul = PAGE.document.body.find("ul")
        assert deepest_common_ancestor([ul]) is ul

    def test_empty_returns_none(self):
        assert deepest_common_ancestor([]) is None

    def test_text_node_with_element(self):
        li = PAGE.document.body.find("li")
        text = next(li.iter_texts())
        ancestor = deepest_common_ancestor([text, li])
        assert ancestor is li


class TestPageBasics:
    def test_len_and_getitem(self):
        assert len(PAGE) == 6
        assert PAGE[0].text == "Header"

    def test_dump_contains_lines(self):
        dump = PAGE.dump()
        assert "Header" in dump and "footer" in dump
