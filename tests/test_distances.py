"""Feature measure tests: Formulas 2-7."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.features.blocks import Block
from repro.features.cohesion import (
    best_partition,
    inter_record_distance,
    record_diversity,
    section_cohesion,
)
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.line_distance import (
    line_distance,
    position_distance,
    text_attr_distance,
)
from repro.features.record_distance import (
    RecordDistanceCache,
    block_position_distance,
    block_shape_distance,
    block_text_attr_distance,
    block_type_distance,
    record_distance,
    tag_forest_distance,
)
from repro.render.linetypes import LineType, type_distance
from repro.render.styles import TextAttr
from tests.helpers import render

PAGE = render(
    "<html><body>"
    "<ul><li><a href='/1'>alpha one</a><br>snippet alpha</li>"
    "<li><a href='/2'>beta two</a><br>snippet beta</li>"
    "<li><a href='/3'>gamma three</a><br>snippet gamma</li></ul>"
    "<h2>Header</h2>"
    "</body></html>"
)
R1, R2, R3 = Block(PAGE, 0, 1), Block(PAGE, 2, 3), Block(PAGE, 4, 5)
HEADER = Block(PAGE, 6, 6)


class TestTypeDistance:
    def test_identity(self):
        for lt in LineType:
            assert type_distance(lt, lt) == 0.0

    def test_symmetry(self):
        for a in LineType:
            for b in LineType:
                assert type_distance(a, b) == type_distance(b, a)

    def test_range(self):
        for a in LineType:
            for b in LineType:
                assert 0.0 <= type_distance(a, b) <= 1.0

    def test_related_types_closer_than_unrelated(self):
        assert type_distance(LineType.LINK, LineType.LINK_TEXT) < type_distance(
            LineType.LINK, LineType.HR
        )


class TestPositionDistance:
    def test_zero_for_same_position(self):
        assert position_distance(100, 100) == 0.0

    def test_paper_k_constant(self):
        expected = 0.127 * math.log1p(50)
        assert abs(position_distance(0, 50) - expected) < 1e-9

    def test_clamped_to_one(self):
        assert position_distance(0, 10**9) == 1.0

    def test_symmetry(self):
        assert position_distance(10, 90) == position_distance(90, 10)


class TestTextAttrDistance:
    def test_formula_two(self):
        a1 = frozenset({TextAttr(), TextAttr(style="bold")})
        a2 = frozenset({TextAttr()})
        # |intersection| = 1, max size = 2 -> 1 - 1/2
        assert text_attr_distance(a1, a2) == 0.5

    def test_identical_sets(self):
        a = frozenset({TextAttr()})
        assert text_attr_distance(a, a) == 0.0

    def test_disjoint_sets(self):
        a1 = frozenset({TextAttr(color="red")})
        a2 = frozenset({TextAttr(color="blue")})
        assert text_attr_distance(a1, a2) == 1.0

    def test_both_empty(self):
        assert text_attr_distance(frozenset(), frozenset()) == 0.0


class TestLineDistance:
    def test_identity(self):
        assert line_distance(PAGE.lines[0], PAGE.lines[0]) == 0.0

    def test_similar_lines_close(self):
        # two title lines
        assert line_distance(PAGE.lines[0], PAGE.lines[2]) < 0.1

    def test_title_vs_snippet_far(self):
        d_titles = line_distance(PAGE.lines[0], PAGE.lines[2])
        d_mixed = line_distance(PAGE.lines[0], PAGE.lines[1])
        assert d_mixed > d_titles

    def test_range(self):
        for l1 in PAGE.lines:
            for l2 in PAGE.lines:
                assert 0.0 <= line_distance(l1, l2) <= 1.0 + 1e-9

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            FeatureConfig(line_weights=(0.5, 0.5, 0.5))


class TestBlockDistances:
    def test_same_format_records_near_zero(self):
        assert record_distance(R1, R2) < 0.05

    def test_record_vs_header_far(self):
        assert record_distance(R1, HEADER) > 0.3

    def test_type_distance_component(self):
        assert block_type_distance(R1, R2) == 0.0
        assert block_type_distance(R1, HEADER) > 0.0

    def test_shape_distance_translation_invariant(self):
        assert block_shape_distance(R1, R2) == 0.0

    def test_position_distance_same_column(self):
        assert block_position_distance(R1, R2) == 0.0

    def test_text_attr_distance(self):
        assert block_text_attr_distance(R1, R2) == 0.0
        assert block_text_attr_distance(R1, HEADER) > 0.0

    def test_tag_forest_distance_identical_structure(self):
        assert tag_forest_distance(R1, R2) == 0.0

    def test_record_weights_validated(self):
        with pytest.raises(ValueError):
            FeatureConfig(record_weights=(1.0, 1.0, 0.0, 0.0, 0.0))

    def test_cache_returns_same_value(self):
        cache = RecordDistanceCache()
        assert cache.distance(R1, R2) == record_distance(R1, R2)
        assert cache.distance(R2, R1) == cache.distance(R1, R2)

    def test_cache_average_to_group(self):
        cache = RecordDistanceCache()
        avg = cache.average_to_group(HEADER, [R1, R2])
        manual = (record_distance(HEADER, R1) + record_distance(HEADER, R2)) / 2
        assert abs(avg - manual) < 1e-9

    def test_cache_average_empty_group(self):
        assert RecordDistanceCache().average_to_group(R1, []) == 0.0


class TestCohesion:
    def test_diversity_of_single_line_record_is_zero(self):
        assert record_diversity(Block(PAGE, 0, 0)) == 0.0

    def test_diversity_of_mixed_record_positive(self):
        assert record_diversity(R1) > 0.0

    def test_inter_record_distance_single_record(self):
        assert inter_record_distance([R1]) == 0.0

    def test_inter_record_distance_of_uniform_records_low(self):
        assert inter_record_distance([R1, R2, R3]) < 0.05

    def test_formula_seven(self):
        records = [R1, R2, R3]
        div = sum(record_diversity(r) for r in records) / 3
        dinr = inter_record_distance(records)
        assert abs(section_cohesion(records) - div / (1 + dinr)) < 1e-9

    def test_empty_section_cohesion_zero(self):
        assert section_cohesion([]) == 0.0

    def test_correct_partition_beats_merged_and_split(self):
        correct = [R1, R2, R3]
        merged = [Block(PAGE, 0, 5)]
        split = [Block(PAGE, i, i) for i in range(6)]
        assert section_cohesion(correct) > section_cohesion(merged)
        assert section_cohesion(correct) > section_cohesion(split)

    def test_best_partition_selects_correct(self):
        correct = [R1, R2, R3]
        candidates = [
            [Block(PAGE, 0, 5)],
            correct,
            [Block(PAGE, i, i) for i in range(6)],
        ]
        assert best_partition(candidates) == correct

    def test_best_partition_empty_raises(self):
        with pytest.raises(ValueError):
            best_partition([])

    def test_best_partition_tie_prefers_finer(self):
        # identical cohesion (all zero): single-line blocks everywhere
        page = render(
            "<html><body><ul><li><a href='/1'>a</a></li>"
            "<li><a href='/2'>b</a></li></ul></body></html>"
        )
        coarse = [Block(page, 0, 1)]
        fine = [Block(page, 0, 0), Block(page, 1, 1)]
        # both have zero-ish cohesion; finer must win ties
        result = best_partition([coarse, fine])
        assert len(result) >= len(coarse)
