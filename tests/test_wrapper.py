"""Section wrapper construction & application tests (§5.7)."""

from repro.core.dse import clean_page_lines
from repro.core.grouping import InstanceGroup, group_section_instances
from repro.core.mse import MSE
from repro.core.wrapper import (
    EngineWrapper,
    SeparatorRule,
    apply_section_wrapper,
    build_section_wrapper,
    partition_subtree_records,
)
from repro.htmlmod.parser import parse_html
from repro.render.layout import render_page
from tests.helpers import make_records, render, sample_pages, simple_result_page


def induced_wrappers(plan, queries=("apple", "banana", "cherry")):
    mse = MSE()
    prepared = mse._prepare(sample_pages(queries, plan))
    sections = mse.analyze_pages(prepared)
    groups = group_section_instances(sections)
    wrappers = []
    for index, group in enumerate(groups):
        wrapper = build_section_wrapper(group, schema_id=f"S{index}")
        if wrapper is not None:
            wrappers.append(wrapper)
    return wrappers


class TestBuild:
    def test_wrapper_built_for_schema(self):
        wrappers = induced_wrappers([("Web", 4)])
        assert len(wrappers) >= 1
        w = wrappers[0]
        assert w.pref.tags[-1] == "ul"
        assert w.separator == SeparatorRule("child-start", "li")

    def test_lbm_texts_recorded(self):
        (w, *_) = induced_wrappers([("Web", 4)])
        assert "web" in w.lbm_texts

    def test_markers_outside_subtree(self):
        (w, *_) = induced_wrappers([("Web", 4)])
        assert not w.markers_inside

    def test_record_attrs_collected(self):
        (w, *_) = induced_wrappers([("Web", 4)])
        assert w.record_attrs  # title + snippet attrs

    def test_typical_records(self):
        (w, *_) = induced_wrappers([("Web", 4)])
        assert 3 <= w.typical_records <= 5


class TestApplication:
    def test_extracts_on_unseen_page(self):
        wrappers = induced_wrappers([("Web", 4)])
        html = simple_result_page("durian", [("Web", make_records("Web", 6, "durian"))])
        page = render(html)
        clean_page_lines(page, ["durian"])
        instance = apply_section_wrapper(wrappers[0], page)
        assert instance is not None
        assert len(instance.records) == 6

    def test_absent_schema_returns_none(self):
        wrappers = induced_wrappers([("Web", 4)])
        page = render("<html><body><p>nothing here</p></body></html>")
        clean_page_lines(page, [])
        assert apply_section_wrapper(wrappers[0], page) is None

    def test_marker_bounding_clips_foreign_records(self):
        # Build a wrapper whose pref resolves to a subtree containing two
        # sections; the markers must clip to the right one.
        wrappers = induced_wrappers([("Web", 4), ("News", 4)])
        html = simple_result_page(
            "durian",
            [
                ("Web", make_records("Web", 3, "durian")),
                ("News", make_records("News", 5, "durian")),
            ],
        )
        page = render(html)
        clean_page_lines(page, ["durian"])
        by_lbm = {next(iter(w.lbm_texts), ""): w for w in wrappers}
        web = apply_section_wrapper(by_lbm["web"], page)
        news = apply_section_wrapper(by_lbm["news"], page)
        assert web is not None and len(web.records) == 3
        assert news is not None and len(news.records) == 5
        assert web.end < news.start


class TestPartitionSubtreeRecords:
    PAGE = render(
        "<html><body><ul>"
        "<li><a href='/1'>alpha</a><br>sn a</li>"
        "<li><a href='/2'>bravo</a><br>sn b</li>"
        "</ul></body></html>"
    )

    def test_child_start(self):
        ul = self.PAGE.document.body.find("ul")
        records = partition_subtree_records(
            self.PAGE, ul, SeparatorRule("child-start", "li")
        )
        assert [(r.start, r.end) for r in records] == [(0, 1), (2, 3)]

    def test_per_child(self):
        ul = self.PAGE.document.body.find("ul")
        records = partition_subtree_records(self.PAGE, ul, SeparatorRule("per-child"))
        assert len(records) == 2

    def test_whole(self):
        ul = self.PAGE.document.body.find("ul")
        records = partition_subtree_records(self.PAGE, ul, SeparatorRule("whole"))
        assert [(r.start, r.end) for r in records] == [(0, 3)]

    def test_empty_subtree(self):
        page = render("<html><body><div></div><p>x</p></body></html>")
        div = page.document.body.find("div")
        assert partition_subtree_records(page, div, SeparatorRule("whole")) == []


class TestEngineWrapper:
    def test_extract_page_order(self):
        wrapper = EngineWrapper([])
        extraction = wrapper.extract("<html><body><p>x</p></body></html>")
        assert len(extraction) == 0

    def test_repr(self):
        assert "schemas=0" in repr(EngineWrapper([]))

    def test_dedup_prefers_confirmed_instances(self):
        from repro.core.wrapper import _dedup_instances
        from repro.core.model import SectionInstance
        from repro.features.blocks import Block

        page = render(
            "<html><body><p>a</p><p>b</p><p>c</p><p>d</p></body></html>"
        )
        confirmed = SectionInstance(
            page=page, block=Block(page, 1, 2), records=[Block(page, 1, 2)], score=2.0
        )
        monster = SectionInstance(
            page=page, block=Block(page, 0, 3), records=[Block(page, 0, 3)], score=0.0
        )
        kept = _dedup_instances([("big", monster), ("good", confirmed)])
        assert [k[0] for k in kept] == ["good"]

    def test_dedup_keeps_non_overlapping(self):
        from repro.core.wrapper import _dedup_instances
        from repro.core.model import SectionInstance
        from repro.features.blocks import Block

        page = render(
            "<html><body><p>a</p><p>b</p><p>c</p><p>d</p></body></html>"
        )
        first = SectionInstance(
            page=page, block=Block(page, 0, 1), records=[Block(page, 0, 1)]
        )
        second = SectionInstance(
            page=page, block=Block(page, 2, 3), records=[Block(page, 2, 3)]
        )
        kept = _dedup_instances([("a", first), ("b", second)])
        assert len(kept) == 2


class TestDedupTieBreaks:
    """The overlap-resolution order is part of the extraction contract.

    ``_dedup_instances`` resolves overlapping claims by score, then
    record count, then span length, then earlier start — these tests pin
    each tie-break level so a reordering (e.g. in the sweep-line
    rewrite) cannot silently change which section wins.
    """

    def page(self):
        return render(
            "<html><body>"
            + "".join(f"<p>line {i}</p>" for i in range(8))
            + "</body></html>"
        )

    def instance(self, page, start, end, n_records, score=0.0):
        from repro.core.model import SectionInstance
        from repro.features.blocks import Block

        width = (end - start + 1) // n_records
        records = [
            Block(
                page,
                start + i * width,
                start + (i + 1) * width - 1 if i < n_records - 1 else end,
            )
            for i in range(n_records)
        ]
        return SectionInstance(
            page=page,
            block=Block(page, start, end),
            records=records,
            score=score,
        )

    def kept_ids(self, instances):
        from repro.core.wrapper import _dedup_instances

        return [schema_id for schema_id, _ in _dedup_instances(instances)]

    def test_score_beats_record_count(self):
        page = self.page()
        scored = self.instance(page, 0, 3, 1, score=2.0)
        finer = self.instance(page, 0, 3, 4, score=0.0)
        assert self.kept_ids([("finer", finer), ("scored", scored)]) == [
            "scored"
        ]

    def test_record_count_beats_span_length(self):
        page = self.page()
        fine = self.instance(page, 0, 3, 4, score=1.0)
        coarse = self.instance(page, 0, 5, 2, score=1.0)
        assert self.kept_ids([("coarse", coarse), ("fine", fine)]) == ["fine"]

    def test_span_length_beats_start(self):
        page = self.page()
        wide = self.instance(page, 1, 5, 2, score=1.0)
        narrow = self.instance(page, 0, 3, 2, score=1.0)
        assert self.kept_ids([("narrow", narrow), ("wide", wide)]) == ["wide"]

    def test_earlier_start_is_final_tie_break(self):
        page = self.page()
        late = self.instance(page, 3, 5, 3, score=1.0)
        early = self.instance(page, 1, 3, 3, score=1.0)
        assert self.kept_ids([("late", late), ("early", early)]) == ["early"]

    def test_loser_of_overlap_does_not_block_disjoint_instance(self):
        """A dropped overlapper must not shadow later disjoint claims."""
        page = self.page()
        winner = self.instance(page, 0, 5, 3, score=2.0)
        loser = self.instance(page, 4, 7, 2, score=1.0)
        tail = self.instance(page, 6, 7, 2, score=0.5)
        kept = self.kept_ids(
            [("tail", tail), ("loser", loser), ("winner", winner)]
        )
        assert kept == ["winner", "tail"]
