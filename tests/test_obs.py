"""Tests for the observability subsystem (repro.obs)."""

import io
import json

import pytest

from repro.core.mse import MSE, build_wrapper
from repro.features.blocks import Block
from repro.features.record_distance import RecordDistanceCache
from repro.obs import (
    NULL_OBSERVER,
    MetricsRegistry,
    Observer,
    read_jsonl,
    render_metrics,
    render_report,
    render_tree,
)
from repro.testbed import load_engine_pages
from tests.helpers import render


class FakeClock:
    """Deterministic seconds source for timing assertions."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestSpans:
    def test_span_records_wall_time(self):
        clock = FakeClock()
        obs = Observer(clock=clock)
        with obs.span("stage"):
            clock.advance(1.5)
        (node,) = obs.spans()
        assert node.name == "stage"
        assert node.calls == 1
        assert node.seconds == pytest.approx(1.5)

    def test_span_nesting_builds_tree(self):
        obs = Observer(clock=FakeClock())
        with obs.span("refine"):
            with obs.span("case3"):
                pass
            with obs.span("case4"):
                pass
        paths = [node.path for node in obs.spans()]
        assert paths == ["refine", "refine/case3", "refine/case4"]

    def test_same_name_spans_aggregate(self):
        clock = FakeClock()
        obs = Observer(clock=clock)
        for _ in range(3):
            with obs.span("mine"):
                clock.advance(0.25)
        (node,) = obs.spans()
        assert node.calls == 3
        assert node.seconds == pytest.approx(0.75)

    def test_counters_attribute_to_innermost_span(self):
        obs = Observer(clock=FakeClock())
        with obs.span("outer"):
            obs.count("outer.items", 2)
            with obs.span("inner"):
                obs.count("inner.items", 5)
        outer, inner = obs.spans()
        assert outer.counters == {"outer.items": 2}
        assert inner.counters == {"inner.items": 5}
        # The registry aggregates both regardless of span.
        assert obs.metrics.counters == {"outer.items": 2, "inner.items": 5}

    def test_counter_aggregation_across_calls(self):
        obs = Observer(clock=FakeClock())
        for amount in (1, 2, 3):
            with obs.span("dse"):
                obs.count("dse.csbms", amount)
        (node,) = obs.spans()
        assert node.counters == {"dse.csbms": 6}
        assert obs.metrics.counters["dse.csbms"] == 6


class TestMetricsRegistry:
    def test_count_gauge_observe(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.count("a", 4)
        registry.gauge("g", 0.5)
        registry.observe("t", 0.1)
        registry.observe("t", 0.3)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 5}
        assert snap["gauges"] == {"g": 0.5}
        assert snap["timings"]["t"]["count"] == 2
        assert snap["timings"]["t"]["total"] == pytest.approx(0.4)
        assert snap["timings"]["t"]["mean"] == pytest.approx(0.2)
        assert snap["timings"]["t"]["min"] == pytest.approx(0.1)
        assert snap["timings"]["t"]["max"] == pytest.approx(0.3)

    def test_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.count("x", 1)
        b.count("x", 2)
        b.gauge("g", 9)
        b.observe("t", 0.5)
        a.merge(b)
        assert a.counters["x"] == 3
        assert a.gauges["g"] == 9
        assert a.timings["t"].count == 1


class TestDisabledMode:
    def test_null_observer_is_noop(self):
        obs = NULL_OBSERVER
        assert obs.enabled is False
        with obs.span("anything"):
            obs.count("x")
            obs.gauge("g", 1)
            obs.observe("t", 0.1)
        # No state anywhere to assert on — the calls simply must not fail
        # and must not allocate per-call (the span is a shared singleton).
        assert obs.span("a") is obs.span("b")

    def test_pipeline_accepts_null_observer(self):
        engine_pages = load_engine_pages(3)
        wrapper = MSE(obs=NULL_OBSERVER).build_wrapper(engine_pages.sample_set)
        assert wrapper.wrappers


class TestJsonlRoundTrip:
    def _traced_observer(self):
        clock = FakeClock()
        obs = Observer(clock=clock)
        with obs.span("mre"):
            clock.advance(0.5)
            obs.count("mre.sections", 4)
        with obs.span("refine"):
            with obs.span("grow"):
                clock.advance(0.25)
        obs.gauge("record_distance_cache.hit_rate", 0.75)
        return obs

    def test_round_trip(self, tmp_path):
        obs = self._traced_observer()
        path = str(tmp_path / "trace.jsonl")
        obs.write_jsonl(path)
        doc = read_jsonl(path)
        assert doc["format"] == "repro-obs-trace"
        assert doc["spans"] == obs.stats()["spans"]
        assert doc["metrics"] == obs.metrics.snapshot()

    def test_round_trip_via_stream(self):
        obs = self._traced_observer()
        buffer = io.StringIO()
        obs.write_jsonl(buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert all(json.loads(line) for line in lines)
        doc = read_jsonl(io.StringIO(buffer.getvalue()))
        assert [span["path"] for span in doc["spans"]] == [
            "mre",
            "refine",
            "refine/grow",
        ]

    def test_read_rejects_foreign_jsonl(self, tmp_path):
        path = tmp_path / "not_a_trace.jsonl"
        path.write_text('{"event": "other"}\n')
        with pytest.raises(ValueError):
            read_jsonl(str(path))


class TestReport:
    def test_tree_and_metrics_render(self):
        clock = FakeClock()
        obs = Observer(clock=clock)
        with obs.span("dse"):
            clock.advance(0.1)
            obs.count("dse.csbms", 7)
        obs.gauge("hit_rate", 0.5)
        tree = render_tree(obs)
        assert "dse" in tree and "dse.csbms=7" in tree
        metrics = render_metrics(obs)
        assert "hit_rate" in metrics
        report = render_report(obs, "t")
        assert report.startswith("t (calls")

    def test_empty_observer_renders(self):
        obs = Observer(clock=FakeClock())
        assert "(no spans recorded)" in render_tree(obs)


PIPELINE_STAGES = (
    "render", "mre", "dse", "refine", "mine",
    "granularity", "grouping", "wrapper", "families",
)


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def traced_induction(self):
        obs = Observer()
        engine_pages = load_engine_pages(85)
        wrapper = build_wrapper(engine_pages.sample_set, obs=obs)
        return obs, wrapper

    def test_one_span_per_pipeline_stage(self, traced_induction):
        obs, _ = traced_induction
        top_level = {node.name: node for node in obs.root.children.values()}
        assert set(top_level) == set(PIPELINE_STAGES)
        for node in top_level.values():
            assert node.calls == 1
            assert node.seconds >= 0.0

    def test_stage_counters_recorded(self, traced_induction):
        obs, wrapper = traced_induction
        counters = obs.metrics.counters
        assert counters["render.pages"] == 5
        assert counters["render.lines"] > 0
        assert counters["mre.sections"] > 0
        assert counters["dse.csbms"] > 0
        assert counters["refine.sections"] > 0
        assert counters["grouping.groups"] >= len(wrapper.wrappers)
        assert counters["wrapper.schemas"] == len(wrapper.wrappers)

    def test_cache_hit_rate_reported(self, traced_induction):
        obs, _ = traced_induction
        gauges = obs.metrics.gauges
        assert "record_distance_cache.hit_rate" in gauges
        assert 0.0 <= gauges["record_distance_cache.hit_rate"] <= 1.0
        assert gauges["record_distance_cache.hits"] + gauges[
            "record_distance_cache.misses"
        ] == obs.metrics.counters["cache.hits"] + obs.metrics.counters[
            "cache.misses"
        ]

    def test_extraction_spans(self):
        engine_pages = load_engine_pages(3)
        wrapper = build_wrapper(engine_pages.sample_set)
        obs = Observer()
        markup, query = engine_pages.test_set[0]
        extraction = wrapper.extract(markup, query, obs=obs)
        names = {node.name for node in obs.spans()}
        assert {"render", "families", "wrappers"} <= names
        assert obs.metrics.counters["extract.sections"] == len(extraction)

    def test_traced_run_matches_untraced(self):
        engine_pages = load_engine_pages(7)
        plain = build_wrapper(engine_pages.sample_set)
        traced = build_wrapper(engine_pages.sample_set, obs=Observer())
        markup, query = engine_pages.test_set[0]
        result_plain = plain.extract(markup, query)
        result_traced = traced.extract(markup, query)
        assert [s.line_span for s in result_plain.sections] == [
            s.line_span for s in result_traced.sections
        ]


class TestRecordDistanceCacheStats:
    def test_repeated_lookups_hit_the_cache(self):
        page = render(
            "<html><body>"
            "<p><a href='/a'>alpha</a> one</p>"
            "<p><a href='/b'>beta</a> two</p>"
            "</body></html>"
        )
        cache = RecordDistanceCache()
        b1 = Block(page, 0, 0)
        b2 = Block(page, 1, 1)
        first = cache.distance(b1, b2)
        assert (cache.hits, cache.misses) == (0, 1)
        # Same pair again, both orders: served from the cache.
        assert cache.distance(b1, b2) == first
        assert cache.distance(b2, b1) == first
        assert (cache.hits, cache.misses) == (2, 1)
        assert cache.hit_rate == pytest.approx(2 / 3)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 2

    def test_average_to_group_counts_lookups(self):
        page = render(
            "<html><body>"
            "<p><a href='/a'>alpha</a></p>"
            "<p><a href='/b'>beta</a></p>"
            "<p><a href='/c'>gamma</a></p>"
            "</body></html>"
        )
        cache = RecordDistanceCache()
        blocks = [Block(page, i, i) for i in range(3)]
        cache.average_to_group(blocks[0], blocks[1:])
        assert cache.misses == 2
        cache.average_to_group(blocks[0], blocks[1:])
        assert cache.hits == 2

    def test_fresh_cache_rate_is_zero(self):
        assert RecordDistanceCache().hit_rate == 0.0


class TestMergeStats:
    def test_metrics_merge_snapshot(self):
        source = MetricsRegistry()
        source.count("items", 3)
        source.gauge("rate", 0.5)
        source.observe("lap", 1.0)
        source.observe("lap", 3.0)

        target = MetricsRegistry()
        target.count("items", 2)
        target.observe("lap", 2.0)
        target.merge_snapshot(source.snapshot())

        snap = target.snapshot()
        assert snap["counters"]["items"] == 5
        assert snap["gauges"]["rate"] == 0.5
        lap = snap["timings"]["lap"]
        assert lap["count"] == 3
        assert lap["total"] == 6.0
        assert lap["min"] == 1.0 and lap["max"] == 3.0

    def test_merge_snapshot_empty_timing_keeps_min(self):
        target = MetricsRegistry()
        target.observe("lap", 2.0)
        target.merge_snapshot(
            {"timings": {"lap": {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}}}
        )
        assert target.timings["lap"].min == 2.0

    def test_observer_merge_stats_grafts_span_tree(self):
        worker = Observer(clock=FakeClock())
        with worker.span("build"):
            with worker.span("mre"):
                worker.count("mre.sections", 2)

        parent = Observer(clock=FakeClock())
        with parent.span("build"):
            with parent.span("mre"):
                parent.count("mre.sections", 1)
        parent.merge_stats(worker.stats())
        parent.merge_stats(worker.stats())

        by_path = {node.path: node for node in parent.spans()}
        assert by_path["build"].calls == 3
        mre = by_path["build/mre"]
        assert mre.calls == 3
        assert mre.counters["mre.sections"] == 5
        assert parent.metrics.counters["mre.sections"] == 5

    def test_merge_stats_into_empty_observer(self):
        worker = Observer(clock=FakeClock())
        with worker.span("render"):
            pass
        parent = Observer()
        parent.merge_stats(worker.stats())
        assert [node.path for node in parent.spans()] == ["render"]

    def test_merge_snapshot_empty_snapshot_is_noop(self):
        target = MetricsRegistry()
        target.count("items", 2)
        target.gauge("rate", 0.5)
        target.observe("lap", 1.0)
        before = target.snapshot()
        target.merge_snapshot({})
        target.merge_snapshot({"counters": {}, "gauges": {}, "timings": {}})
        assert target.snapshot() == before

    def test_merge_snapshot_disjoint_keys_union(self):
        target = MetricsRegistry()
        target.count("a", 1)
        target.observe("t1", 1.0)
        source = MetricsRegistry()
        source.count("b", 2)
        source.gauge("g", 9.0)
        source.observe("t2", 2.0)
        target.merge_snapshot(source.snapshot())
        snap = target.snapshot()
        assert snap["counters"] == {"a": 1, "b": 2}
        assert snap["gauges"] == {"g": 9.0}
        assert set(snap["timings"]) == {"t1", "t2"}
        assert snap["timings"]["t2"]["total"] == 2.0

    def test_merge_snapshot_repeated_merges_accumulate(self):
        source = MetricsRegistry()
        source.count("items", 3)
        source.observe("lap", 2.0)
        snapshot = source.snapshot()
        target = MetricsRegistry()
        for _ in range(3):
            target.merge_snapshot(snapshot)
        snap = target.snapshot()
        assert snap["counters"]["items"] == 9
        assert snap["timings"]["lap"]["count"] == 3
        assert snap["timings"]["lap"]["total"] == 6.0
        assert snap["timings"]["lap"]["min"] == 2.0
        assert snap["timings"]["lap"]["max"] == 2.0

    def test_rewritten_parent_carries_nested_children(self):
        # A harness nests a worker's spans under a host span by rewriting
        # only the *top-level* docs' parent; nested docs still name their
        # worker-relative parents and must follow the relocated subtree.
        worker = Observer(clock=FakeClock())
        with worker.span("mre"):
            with worker.span("sub"):
                worker.count("sub.items", 3)
        stats = worker.stats()
        for doc in stats["spans"]:
            if doc["parent"] == "":
                doc["parent"] = "fanout"

        host = Observer(clock=FakeClock())
        with host.span("fanout"):
            pass
        host.merge_stats(stats)
        assert [node.path for node in host.spans()] == [
            "fanout",
            "fanout/mre",
            "fanout/mre/sub",
        ]
        by_path = {node.path: node for node in host.spans()}
        assert by_path["fanout/mre/sub"].counters["sub.items"] == 3

    def test_grafted_spans_survive_jsonl_round_trip(self):
        # write -> read -> merge -> render_tree must keep the grafted
        # hierarchy: one tree rooted at the host span, no phantom roots.
        clock = FakeClock()
        worker = Observer(clock=clock)
        with worker.span("mre"):
            clock.advance(0.25)
            with worker.span("sub"):
                clock.advance(0.5)
        stats = worker.stats()
        for doc in stats["spans"]:
            if doc["parent"] == "":
                doc["parent"] = "fanout"
        host = Observer(clock=FakeClock())
        with host.span("fanout"):
            pass
        host.merge_stats(stats)

        buffer = io.StringIO()
        host.write_jsonl(buffer)
        doc = read_jsonl(io.StringIO(buffer.getvalue()))
        fresh = Observer(clock=FakeClock())
        fresh.merge_stats(doc)
        assert [node.path for node in fresh.spans()] == [
            "fanout",
            "fanout/mre",
            "fanout/mre/sub",
        ]
        tree = render_tree(fresh)
        assert "fanout" in tree and "sub" in tree
        # A split tree would render a phantom top-level "mre" root.
        top_level = [n.name for n in fresh.root.children.values()]
        assert top_level == ["fanout"]


class TestZeroSpanReport:
    def test_render_report_with_zero_span_observer(self):
        obs = Observer(clock=FakeClock())
        obs.count("items", 2)
        report = render_report(obs, "empty run")
        assert report.startswith("empty run (calls")
        assert "(no spans recorded)" in report
        assert "items" in report

    def test_render_report_fresh_observer(self):
        report = render_report(Observer(clock=FakeClock()), "fresh")
        assert "(no spans recorded)" in report
        assert "(none)" in render_metrics(Observer(clock=FakeClock()))
