"""Staged pipeline tests: codecs, checkpoints, resume, parallel identity.

The load-bearing invariant of ``repro.pipeline`` is that serial,
``jobs=N`` and checkpoint-resumed inductions produce bit-identical
wrappers; these tests pin it on the synthetic corpus, plus the resume
semantics (deleting one stage's artifacts re-runs exactly that stage
and its dependents, growing the sample set reuses page-local work).
"""

import json
import os

import pytest

from repro.core.mse import MSE, MSEConfig
from repro.core.serialize import (
    ds_from_obj,
    ds_to_obj,
    mr_from_obj,
    mr_to_obj,
    section_instance_from_obj,
    section_instance_to_obj,
    wrapper_to_json,
)
from repro.core.dse import DynamicSection
from repro.core.model import SectionInstance
from repro.core.mre import TentativeMR
from repro.features.blocks import Block
from repro.obs import Observer
from repro.pipeline import ArtifactStore, InductionContext, config_key, page_id
from tests.helpers import render, sample_pages

SAMPLES = sample_pages(("apple", "banana", "cherry"), [("Web", 4), ("News", 3)])
GROWN = SAMPLES + sample_pages(("durian",), [("Web", 4), ("News", 3)])

ALL_STAGES = (
    "render", "mre", "dse", "refine", "mine",
    "granularity", "grouping", "wrapper", "families",
)


def induce_json(**kwargs):
    obs = kwargs.pop("obs", None) or Observer()
    samples = kwargs.pop("samples", SAMPLES)
    engine = MSE(kwargs.pop("config", None), obs=obs, **kwargs).build_wrapper(samples)
    return wrapper_to_json(engine), obs


def span_names(obs):
    return [span.name for span in obs.spans()]


# -- artifact codecs --------------------------------------------------------


class TestCodecs:
    MARKUP = SAMPLES[0][0]

    def roundtrip(self, obj):
        # Through actual JSON text, as the store and the fan-out do.
        return json.loads(json.dumps(obj))

    def test_mr_roundtrip_against_rerendered_page(self):
        page = render(self.MARKUP)
        mr = TentativeMR(page=page, records=[Block(page, 3, 5), Block(page, 6, 8)])
        clone = mr_from_obj(self.roundtrip(mr_to_obj(mr)), render(self.MARKUP))
        assert [(r.start, r.end) for r in clone.records] == [(3, 5), (6, 8)]
        assert (clone.start, clone.end) == (mr.start, mr.end)

    def test_ds_roundtrip(self):
        page = render(self.MARKUP)
        ds = DynamicSection(page, 4, 9, lbm=3, rbm=10)
        clone = ds_from_obj(self.roundtrip(ds_to_obj(ds)), page)
        assert (clone.start, clone.end, clone.lbm, clone.rbm) == (4, 9, 3, 10)

    def test_ds_roundtrip_without_markers(self):
        page = render(self.MARKUP)
        clone = ds_from_obj(
            self.roundtrip(ds_to_obj(DynamicSection(page, 2, 6))), page
        )
        assert clone.lbm is None and clone.rbm is None

    def test_section_instance_roundtrip(self):
        page = render(self.MARKUP)
        instance = SectionInstance(
            page=page,
            block=Block(page, 3, 8),
            records=[Block(page, 3, 5), Block(page, 6, 8)],
            lbm=2,
            rbm=9,
            origin="refined",
            score=0.25,
        )
        clone = section_instance_from_obj(
            self.roundtrip(section_instance_to_obj(instance)), page
        )
        assert (clone.block.start, clone.block.end) == (3, 8)
        assert [(r.start, r.end) for r in clone.records] == [(3, 5), (6, 8)]
        assert (clone.lbm, clone.rbm, clone.origin, clone.score) == (
            2, 9, "refined", 0.25,
        )


# -- identity: serial / parallel / checkpointed -----------------------------


class TestRunIdentity:
    def test_parallel_matches_serial(self):
        serial, _ = induce_json()
        parallel, _ = induce_json(jobs=2)
        assert parallel == serial

    def test_checkpointed_matches_serial(self, tmp_path):
        serial, _ = induce_json()
        checkpointed, _ = induce_json(checkpoint_dir=str(tmp_path))
        assert checkpointed == serial

    def test_checkpoint_writes_all_stage_files(self, tmp_path):
        induce_json(checkpoint_dir=str(tmp_path))
        names = sorted(os.listdir(tmp_path))
        assert "manifest.json" in names
        # render and the select hook are never checkpointed
        assert names == ["manifest.json"] + [
            f"stage-{s}.json"
            for s in sorted(ALL_STAGES)
            if s != "render"
        ]


# -- resume semantics -------------------------------------------------------


class TestResume:
    def test_full_resume_runs_only_render(self, tmp_path):
        first, _ = induce_json(checkpoint_dir=str(tmp_path))
        resumed, obs = induce_json(checkpoint_dir=str(tmp_path), resume=True)
        assert resumed == first
        assert span_names(obs) == ["render"]

    def test_deleting_one_stage_reruns_it_and_dependents(self, tmp_path):
        first, _ = induce_json(checkpoint_dir=str(tmp_path))
        os.unlink(tmp_path / "stage-mine.json")
        resumed, obs = induce_json(checkpoint_dir=str(tmp_path), resume=True)
        assert resumed == first
        assert span_names(obs) == [
            "render", "mine", "granularity", "grouping", "wrapper", "families"
        ]

    def test_deleting_a_barrier_reruns_downstream(self, tmp_path):
        first, _ = induce_json(checkpoint_dir=str(tmp_path))
        os.unlink(tmp_path / "stage-grouping.json")
        resumed, obs = induce_json(checkpoint_dir=str(tmp_path), resume=True)
        assert resumed == first
        assert span_names(obs) == ["render", "grouping", "wrapper", "families"]

    def test_without_resume_flag_recomputes_everything(self, tmp_path):
        induce_json(checkpoint_dir=str(tmp_path))
        again, obs = induce_json(checkpoint_dir=str(tmp_path))
        assert set(ALL_STAGES) <= set(span_names(obs))

    def test_growing_sample_set_reuses_page_local_artifacts(self, tmp_path):
        induce_json(checkpoint_dir=str(tmp_path))
        grown, obs = induce_json(
            samples=GROWN, checkpoint_dir=str(tmp_path), resume=True
        )
        fresh, _ = induce_json(samples=GROWN)
        assert grown == fresh
        # MRE re-ran for the one new page only; the DSE barrier saw the
        # changed page set and re-ran, dragging its dependents with it.
        mre = next(s for s in obs.spans() if s.name == "mre")
        assert mre.calls == 1
        assert mre.counters["mre.sections"] <= 4
        assert "dse" in span_names(obs)
        # The store now holds artifacts for all four pages.
        doc = json.loads((tmp_path / "stage-mre.json").read_text())
        assert len(doc["pages"]) == 4

    def test_config_change_invalidates_store(self, tmp_path):
        induce_json(checkpoint_dir=str(tmp_path))
        changed, obs = induce_json(
            config=MSEConfig(use_families=False),
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        # Nothing reused: every stage ran again under the new config.
        assert set(ALL_STAGES) <= set(span_names(obs))
        fresh, _ = induce_json(config=MSEConfig(use_families=False))
        assert changed == fresh


# -- the store itself -------------------------------------------------------


class TestArtifactStore:
    CONFIG = MSEConfig()

    def test_page_saves_merge(self, tmp_path):
        store = ArtifactStore.open(str(tmp_path), self.CONFIG, ["a", "b"])
        store.save_pages("mre", {"a": {"mrs": []}})
        store.save_pages("mre", {"b": {"mrs": [1]}})
        assert store.load_pages("mre") == [{"mrs": []}, {"mrs": [1]}]

    def test_missing_pages_load_as_none(self, tmp_path):
        store = ArtifactStore.open(str(tmp_path), self.CONFIG, ["a", "b"])
        store.save_pages("mre", {"a": {"mrs": []}})
        assert store.load_pages("mre") == [{"mrs": []}, None]

    def test_barrier_keyed_by_page_set(self, tmp_path):
        store = ArtifactStore.open(str(tmp_path), self.CONFIG, ["a", "b"])
        store.save_barrier("dse", {"x": 1})
        assert store.load_barrier("dse") == {"x": 1}
        grown = ArtifactStore.open(
            str(tmp_path), self.CONFIG, ["a", "b", "c"], resume=True
        )
        assert grown.load_barrier("dse") is None
        # ...but per-page artifacts survive the growth.
        store.save_pages("mre", {"a": 1, "b": 2})
        assert grown.load_pages("mre") == [1, 2, None]

    def test_open_without_resume_wipes(self, tmp_path):
        store = ArtifactStore.open(str(tmp_path), self.CONFIG, ["a"])
        store.save_barrier("dse", {"x": 1})
        reopened = ArtifactStore.open(str(tmp_path), self.CONFIG, ["a"])
        assert reopened.load_barrier("dse") is None

    def test_resume_with_other_config_wipes(self, tmp_path):
        store = ArtifactStore.open(str(tmp_path), self.CONFIG, ["a"])
        store.save_barrier("dse", {"x": 1})
        other = ArtifactStore.open(
            str(tmp_path), MSEConfig(use_granularity=False), ["a"], resume=True
        )
        assert other.load_barrier("dse") is None

    def test_config_key_is_canonical(self):
        assert config_key(MSEConfig()) == config_key(MSEConfig())
        assert config_key(MSEConfig()) != config_key(
            MSEConfig(mining_strategy="per-child")
        )


# -- context identity -------------------------------------------------------


class TestContext:
    def test_page_id_depends_on_query_and_markup(self):
        assert page_id("<html>", "a") == page_id("<html>", "a")
        assert page_id("<html>", "a") != page_id("<html>", "b")
        assert page_id("<html>", "a") != page_id("<html><p>", "a")

    def test_context_without_html_has_no_page_ids(self):
        ctx = InductionContext.from_pages(
            [render(SAMPLES[0][0])], ["q"], MSEConfig()
        )
        assert ctx.page_ids() is None

    def test_context_from_samples(self):
        ctx = InductionContext.from_samples(SAMPLES, MSEConfig())
        assert ctx.page_count == len(SAMPLES)
        assert ctx.queries == [q for _, q in SAMPLES]
        ids = ctx.page_ids()
        assert ids is not None and len(set(ids)) == len(SAMPLES)


# -- observer parent field --------------------------------------------------


class TestSpanParents:
    def test_span_dict_carries_parent(self):
        obs = Observer()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        docs = {d["name"]: d for d in (s.to_dict() for s in obs.spans())}
        assert docs["outer"]["parent"] == ""
        assert docs["inner"]["parent"] == "outer"

    def test_merge_stats_grafts_by_parent(self):
        worker = Observer()
        with worker.span("mre"):
            worker.count("mre.sections", 2)
        stats = worker.stats()
        # Rewrite the parent to nest the worker's top-level span.
        for span in stats["spans"]:
            span["parent"] = "fanout"

        host = Observer()
        with host.span("fanout"):
            pass
        host.merge_stats(stats)
        paths = {s.path for s in host.spans()}
        assert "fanout/mre" in paths
