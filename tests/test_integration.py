"""Integration tests: the full pipeline against corpus engines.

These use a handful of fixed engines spanning the layout styles; the
full 119-engine sweep lives in the benchmark harness.
"""

import pytest

from repro.core.mse import build_wrapper
from repro.evalkit.harness import evaluate_engine
from repro.evalkit.matching import grade_page
from repro.testbed import load_engine_pages, make_engine


@pytest.fixture(scope="module")
def engine_cache():
    cache = {}

    def load(engine_id):
        if engine_id not in cache:
            cache[engine_id] = load_engine_pages(engine_id)
        return cache[engine_id]

    return load


class TestSingleSectionEngines:
    @pytest.mark.parametrize("engine_id", [0, 1, 2, 5, 7])
    def test_high_quality_extraction(self, engine_cache, engine_id):
        result = evaluate_engine(engine_cache(engine_id))
        total = result.rows.total_sections
        assert not result.failed
        assert total.recall_total >= 0.8, (
            f"engine {engine_id}: recall {total.recall_total:.2f}"
        )


class TestMultiSectionEngines:
    @pytest.mark.parametrize("engine_id", [81, 83, 85, 97])
    def test_sections_separated(self, engine_cache, engine_id):
        result = evaluate_engine(engine_cache(engine_id))
        total = result.rows.total_sections
        assert not result.failed
        assert total.recall_total >= 0.7, (
            f"engine {engine_id}: recall {total.recall_total:.2f}"
        )

    def test_section_record_relationship(self, engine_cache):
        ep = engine_cache(85)
        wrapper = build_wrapper(ep.sample_set)
        extraction = wrapper.extract(ep.pages[7], ep.queries[7])
        truth = ep.truths[7]
        # every extracted record must lie inside its section span
        for section in extraction.sections:
            start, end = section.line_span
            for record in section.records:
                assert start <= record.line_span[0] <= record.line_span[1] <= end
        # extracted sections must not overlap each other
        spans = sorted(s.line_span for s in extraction.sections)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 < s2


class TestWrapperReuse:
    def test_wrapper_is_reusable_across_pages(self, engine_cache):
        ep = engine_cache(2)
        wrapper = build_wrapper(ep.sample_set)
        counts = []
        for markup, query in ep.test_set:
            counts.append(wrapper.extract(markup, query).record_count)
        assert all(c > 0 for c in counts)

    def test_determinism(self, engine_cache):
        ep = engine_cache(1)
        w1 = build_wrapper(ep.sample_set)
        w2 = build_wrapper(ep.sample_set)
        e1 = w1.extract(ep.pages[6], ep.queries[6])
        e2 = w2.extract(ep.pages[6], ep.queries[6])
        assert [s.line_span for s in e1.sections] == [s.line_span for s in e2.sections]


class TestHiddenSectionOnCorpus:
    def test_family_covers_section_absent_from_samples(self):
        # Find a multi-section engine where some section is absent from
        # every sample page but present on a test page.
        for engine_id in range(81, 119):
            ep = load_engine_pages(engine_id)
            sample_sids = set()
            for truth in ep.truths[:5]:
                sample_sids.update(s.sid for s in truth.sections)
            for index in range(5, 10):
                test_sids = {s.sid for s in ep.truths[index].sections}
                hidden = test_sids - sample_sids
                if not hidden:
                    continue
                wrapper = build_wrapper(ep.sample_set)
                if not wrapper.families:
                    continue
                grade = grade_page(
                    wrapper.extract(ep.pages[index], ep.queries[index]),
                    ep.truths[index],
                )
                missed_sids = {t.sid for t in grade.missed_truth}
                if hidden - missed_sids:
                    return  # at least one truly hidden section was extracted
        pytest.fail(
            "no hidden section extracted anywhere in the corpus — the "
            "rare-section mechanism or section families regressed"
        )
