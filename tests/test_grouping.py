"""Section instance grouping tests (§5.6)."""

from repro.core.dse import clean_page_lines
from repro.core.model import SectionInstance
from repro.core.grouping import group_section_instances, match_score
from repro.features.blocks import Block
from tests.helpers import make_records, render, simple_result_page


def page_instances(query, plan):
    """Render a page and hand-build the true section instances."""
    html = simple_result_page(query, [(h, make_records(h, n, query)) for h, n in plan])
    page = render(html)
    clean_page_lines(page, query.split())
    instances = []
    cursor = 2  # nav + count line
    for header, n in plan:
        header_line = cursor
        start = cursor + 1
        end = start + 2 * n - 1
        records = [Block(page, s, s + 1) for s in range(start, end, 2)]
        instances.append(
            SectionInstance(
                page=page,
                block=Block(page, start, end),
                records=records,
                lbm=header_line,
                rbm=end + 1,
            )
        )
        cursor = end + 2  # skip the more-link
    return instances


class TestMatchScore:
    def test_same_schema_across_pages_high(self):
        (a,) = page_instances("apple", [("Web", 3)])
        (b,) = page_instances("banana", [("Web", 4)])
        assert match_score(a, b) > 0.8

    def test_different_schema_lower(self):
        a1, a2 = page_instances("apple", [("Web", 3), ("News", 3)])
        b1, b2 = page_instances("banana", [("Web", 3), ("News", 3)])
        assert match_score(a1, b1) > match_score(a1, b2)

    def test_symmetric(self):
        (a,) = page_instances("apple", [("Web", 3)])
        (b,) = page_instances("banana", [("Web", 4)])
        assert abs(match_score(a, b) - match_score(b, a)) < 1e-9


class TestGrouping:
    def test_single_schema_one_group(self):
        pages = [
            page_instances(q, [("Web", 3 + i)])
            for i, q in enumerate(["apple", "banana", "cherry"])
        ]
        groups = group_section_instances(pages)
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_two_schemas_two_groups(self):
        pages = [
            page_instances(q, [("Web", 3), ("News", 4)])
            for q in ["apple", "banana", "cherry"]
        ]
        groups = group_section_instances(pages)
        assert len(groups) == 2
        assert all(len(g) == 3 for g in groups)

    def test_groups_ordered_by_position(self):
        pages = [
            page_instances(q, [("Web", 3), ("News", 4)])
            for q in ["apple", "banana"]
        ]
        groups = group_section_instances(pages)
        starts = [min(i.start for i in g.instances) for g in groups]
        assert starts == sorted(starts)

    def test_dangling_instance_dropped(self):
        # the News section appears on only one page -> no group for it
        pages = [
            page_instances("apple", [("Web", 3), ("News", 4)]),
            page_instances("banana", [("Web", 3)]),
            page_instances("cherry", [("Web", 5)]),
        ]
        groups = group_section_instances(pages)
        assert len(groups) == 1

    def test_one_instance_per_page_in_group(self):
        pages = [
            page_instances(q, [("Web", 3), ("News", 3)])
            for q in ["apple", "banana", "cherry"]
        ]
        for group in group_section_instances(pages):
            page_ids = [id(inst.page) for inst in group.instances]
            assert len(page_ids) == len(set(page_ids))

    def test_empty_input(self):
        assert group_section_instances([]) == []

    def test_pages_without_sections(self):
        assert group_section_instances([[], [], []]) == []

    def test_threshold_blocks_weak_matches(self):
        pages = [
            page_instances("apple", [("Web", 3)]),
            page_instances("banana", [("Web", 3)]),
        ]
        assert group_section_instances(pages, threshold=1.01) == []
