"""Serializer tests (round trips, escaping)."""

from hypothesis import given, strategies as st

from repro.htmlmod.dom import Comment, Document, Element, Text
from repro.htmlmod.parser import parse_html
from repro.htmlmod.serializer import serialize, serialize_node


class TestSerializeNode:
    def test_simple_element(self):
        el = Element("p")
        el.append_text("hi")
        assert serialize_node(el) == "<p>hi</p>"

    def test_attributes_quoted(self):
        el = Element("a", {"href": "/x"})
        assert serialize_node(el) == '<a href="/x"></a>'

    def test_attribute_value_escaped(self):
        el = Element("a", {"title": 'say "hi" & go'})
        out = serialize_node(el)
        assert "&quot;" in out and "&amp;" in out

    def test_text_escaped(self):
        el = Element("p")
        el.append_text("a < b & c")
        assert serialize_node(el) == "<p>a &lt; b &amp; c</p>"

    def test_void_element_no_end_tag(self):
        el = Element("div")
        el.append(Element("br"))
        assert serialize_node(el) == "<div><br></div>"

    def test_comment(self):
        el = Element("div")
        el.append(Comment("note"))
        assert serialize_node(el) == "<div><!--note--></div>"


class TestDocumentSerialization:
    def test_default_doctype(self):
        doc = Document(Element("html"))
        assert serialize(doc).startswith("<!DOCTYPE html>")

    def test_custom_doctype_preserved(self):
        doc = Document(Element("html"), doctype="DOCTYPE html PUBLIC x")
        assert serialize(doc).startswith("<!DOCTYPE html PUBLIC x>")


class TestRoundTrip:
    def test_structure_survives_round_trip(self):
        markup = (
            "<html><body><table><tr><td><a href='/a'>A</a></td>"
            "<td><b>B</b></td></tr></table><ul><li>x</li></ul></body></html>"
        )
        doc = parse_html(markup)
        again = parse_html(serialize(doc))
        assert doc.root.tag_signature() == again.root.tag_signature()

    def test_text_survives_round_trip(self):
        doc = parse_html("<body><p>a &amp; b</p></body>")
        again = parse_html(serialize(doc))
        assert again.body.text_content() == "a & b"

    @given(
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
            min_size=1,
            max_size=40,
        )
    )
    def test_arbitrary_text_round_trips(self, text):
        el = Element("p")
        el.append_text(text)
        doc = Document(_wrap(el))
        again = parse_html(serialize(doc))
        from repro.htmlmod.dom import collapse_whitespace

        assert again.body.text_content() == collapse_whitespace(text)

    @given(st.dictionaries(st.sampled_from(["href", "class", "id", "title"]),
                           st.text(max_size=20), max_size=3))
    def test_arbitrary_attrs_round_trip(self, attrs):
        el = Element("a", attrs)
        doc = Document(_wrap(el))
        again = parse_html(serialize(doc))
        anchor = again.body.find("a")
        assert anchor is not None
        for key, value in attrs.items():
            assert anchor.get(key) == value


def _wrap(element):
    root = Element("html")
    body = Element("body")
    root.append(body)
    body.append(element)
    return root
