"""Layout engine edge cases and robustness."""

from repro.render.layout import BODY_MARGIN, render_html
from repro.render.linetypes import LineType


def lines(markup):
    return render_html(f"<html><body>{markup}</body></html>").lines


class TestEmptyAndDegenerate:
    def test_empty_body(self):
        assert lines("") == []

    def test_empty_table_cell_skipped(self):
        out = lines("<table><tr><td>a</td><td></td><td>c</td></tr></table>")
        assert [l.text for l in out] == ["a", "c"]

    def test_empty_list_item_skipped(self):
        out = lines("<ul><li>a</li><li></li><li>c</li></ul>")
        assert [l.text for l in out] == ["a", "c"]

    def test_nested_empty_divs(self):
        out = lines("<div><div><div></div></div></div><p>x</p>")
        assert [l.text for l in out] == ["x"]

    def test_deeply_nested_content(self):
        markup = "<div>" * 30 + "deep" + "</div>" * 30
        out = lines(markup)
        assert out[0].text == "deep"


class TestEntitiesAndText:
    def test_entities_rendered_decoded(self):
        out = lines("<p>AT&amp;T &lt;tags&gt; &copy;</p>")
        assert out[0].text == "AT&T <tags> ©"

    def test_unicode_text(self):
        out = lines("<p>café 日本語</p>")
        assert "café" in out[0].text

    def test_very_long_line(self):
        out = lines(f"<p>{'word ' * 500}</p>")
        assert len(out) == 1  # no wrapping in the wide-viewport model
        assert out[0].width > 0


class TestTables:
    def test_row_without_cells(self):
        out = lines("<table><tr></tr><tr><td>x</td></tr></table>")
        assert [l.text for l in out] == ["x"]

    def test_cell_with_block_content(self):
        out = lines("<table><tr><td><p>one</p><p>two</p></td></tr></table>")
        assert [l.text for l in out] == ["one", "two"]

    def test_invalid_width_attribute_defaults(self):
        out = lines('<table><tr><td width="banana">a</td><td>b</td></tr></table>')
        assert out[1].position > out[0].position

    def test_three_level_table_nesting(self):
        out = lines(
            '<table><tr><td width="50">'
            '<table><tr><td width="50">'
            "<table><tr><td>deep</td></tr></table>"
            "</td></tr></table>"
            "</td></tr></table>"
        )
        assert out[0].text == "deep"
        assert out[0].position == BODY_MARGIN

    def test_th_renders_bold(self):
        out = lines("<table><tr><th>Header</th></tr></table>")
        assert any(a.bold for a in out[0].attrs)


class TestMixedContent:
    def test_inline_then_block_then_inline(self):
        out = lines("<div>before<p>middle</p>after</div>")
        assert [l.text for l in out] == ["before", "middle", "after"]

    def test_multiple_brs_no_empty_lines(self):
        out = lines("<p>a<br><br><br>b</p>")
        assert [l.text for l in out] == ["a", "b"]

    def test_hr_between_sections(self):
        out = lines("<p>a</p><hr><p>b</p>")
        assert [l.line_type for l in out] == [
            LineType.TEXT,
            LineType.HR,
            LineType.TEXT,
        ]

    def test_image_inside_link(self):
        out = lines('<p><a href="/x"><img src="i.gif"></a></p>')
        assert out[0].line_type == LineType.IMAGE

    def test_form_with_surrounding_text(self):
        out = lines("<form>Search: <input type='text' value='q'></form>")
        assert out[0].line_type == LineType.FORM
