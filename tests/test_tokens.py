"""Tokenizer tests."""

from repro.htmlmod.tokens import (
    CommentToken,
    DoctypeToken,
    EndTag,
    StartTag,
    TextToken,
    tokenize,
)


def kinds(markup):
    return [type(t).__name__ for t in tokenize(markup)]


class TestBasicTokens:
    def test_start_and_end_tags(self):
        tokens = tokenize("<p>x</p>")
        assert tokens == [StartTag("p"), TextToken("x"), EndTag("p")]

    def test_tag_names_lowercased(self):
        tokens = tokenize("<DIV><A HREF='x'>t</A></DIV>")
        assert tokens[0] == StartTag("div")
        assert tokens[1].name == "a"
        assert tokens[1].attrs == (("href", "x"),)

    def test_attribute_without_value_becomes_empty_string(self):
        (tag, *_rest) = tokenize("<input disabled>")
        assert tag.get("disabled") == ""
        assert tag.get("missing", "d") == "d"

    def test_attribute_quoting_styles(self):
        for markup in ('<a href="x">', "<a href='x'>", "<a href=x>"):
            tag = tokenize(markup)[0]
            assert tag.get("href") == "x"

    def test_self_closing_tag_flagged(self):
        tag = tokenize("<br/>")[0]
        assert isinstance(tag, StartTag)
        assert tag.self_closing

    def test_entities_decoded(self):
        tokens = tokenize("<p>a &amp; b &lt;c&gt;</p>")
        assert tokens[1] == TextToken("a & b <c>")

    def test_numeric_entities_decoded(self):
        tokens = tokenize("<p>&#65;&#x42;</p>")
        assert tokens[1] == TextToken("AB")

    def test_comment_token(self):
        tokens = tokenize("<!-- hello -->")
        assert tokens == [CommentToken(" hello ")]

    def test_doctype_token(self):
        tokens = tokenize("<!DOCTYPE html><html></html>")
        assert isinstance(tokens[0], DoctypeToken)
        assert tokens[0].data == "DOCTYPE html"


class TestRobustness:
    def test_unclosed_tag_at_eof(self):
        tokens = tokenize("<p>text")
        assert TextToken("text") in tokens

    def test_empty_input(self):
        assert tokenize("") == []

    def test_plain_text_only(self):
        assert tokenize("just text") == [TextToken("just text")]

    def test_stray_angle_bracket_degrades_to_text(self):
        tokens = tokenize("<p>1 < 2</p>")
        text = "".join(t.data for t in tokens if isinstance(t, TextToken))
        assert "1" in text and "2" in text

    def test_script_content_not_tokenized_as_tags(self):
        tokens = tokenize("<script>if (a<b) { x('<p>'); }</script>")
        assert not any(
            isinstance(t, StartTag) and t.name == "p" for t in tokens
        )

    def test_mixed_case_attributes_lowercased(self):
        tag = tokenize('<td WIDTH="5" Align="left">')[0]
        assert tag.get("width") == "5"
        assert tag.get("align") == "left"
