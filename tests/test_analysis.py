"""Tests for the AST invariant linter (repro.analysis)."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    analyze_paths,
    apply_baseline,
    default_rules,
    load_baseline,
    module_name_of,
    save_baseline,
)
from repro.analysis.__main__ import main as analysis_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def write_module(tmp_path, relpath, source):
    """Lay a fixture module out under tmp_path (e.g. 'repro/core/x.py')."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


def rules_of(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# Engine basics
# ---------------------------------------------------------------------------


def test_module_name_anchors_on_repro_component(tmp_path):
    assert module_name_of(Path("src/repro/core/mse.py")) == "repro.core.mse"
    assert module_name_of(Path("repro/perf/__init__.py")) == "repro.perf"
    assert (
        module_name_of(tmp_path / "repro" / "features" / "x.py")
        == "repro.features.x"
    )
    assert module_name_of(Path("somewhere/else.py")) is None


def test_syntax_error_becomes_parse_finding(tmp_path):
    path = write_module(tmp_path, "repro/core/broken.py", "def f(:\n")
    findings = analyze_paths([str(path)])
    assert [f.rule for f in findings] == ["E000"]


def test_unknown_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        analyze_paths([str(tmp_path / "missing")])


# ---------------------------------------------------------------------------
# DET01 determinism
# ---------------------------------------------------------------------------

DET01_BAD = """\
    import random
    import os

    def score(items):
        seed = os.environ["SEED"]
        for item in {1, 2, 3}:
            pass
        return id(items)
"""

DET01_GOOD = """\
    def score(items: list) -> list:
        out = []
        for item in sorted({1, 2, 3}):
            out.append(item)
        return out
"""


def test_det01_flags_nondeterminism_in_scope(tmp_path):
    path = write_module(tmp_path, "repro/core/scoring.py", DET01_BAD)
    findings = [f for f in analyze_paths([str(path)]) if f.rule == "DET01"]
    messages = " ".join(f.message for f in findings)
    assert "random" in messages
    assert "os.environ" in messages
    assert "id()" in messages
    assert "unordered set" in messages


def test_det01_passes_clean_module(tmp_path):
    path = write_module(tmp_path, "repro/core/scoring.py", DET01_GOOD)
    assert "DET01" not in rules_of(analyze_paths([str(path)]))


def test_det01_ignores_out_of_scope_packages(tmp_path):
    path = write_module(tmp_path, "repro/obs/clock.py", DET01_BAD)
    assert "DET01" not in rules_of(analyze_paths([str(path)]))


# ---------------------------------------------------------------------------
# PUR01 kernel purity
# ---------------------------------------------------------------------------

PUR01_BAD = """\
    def kernel(sig, out):
        sig.cached = 1
        out.append(sig)
        return out
"""

PUR01_GOOD = """\
    class Memo:
        def store(self, key: tuple, value: float) -> None:
            self._table[key] = value

    def kernel(sig: tuple) -> list:
        local = []
        local.append(sig)
        return local
"""


def test_pur01_flags_argument_mutation_in_perf(tmp_path):
    path = write_module(tmp_path, "repro/perf/hot.py", PUR01_BAD)
    findings = [f for f in analyze_paths([str(path)]) if f.rule == "PUR01"]
    assert len(findings) == 2  # attribute assignment + .append()


def test_pur01_allows_self_and_locals(tmp_path):
    path = write_module(tmp_path, "repro/perf/hot.py", PUR01_GOOD)
    assert "PUR01" not in rules_of(analyze_paths([str(path)]))


def test_pur01_only_applies_to_perf(tmp_path):
    path = write_module(tmp_path, "repro/core/hot.py", PUR01_BAD)
    assert "PUR01" not in rules_of(analyze_paths([str(path)]))


# ---------------------------------------------------------------------------
# OBS01 observer threading
# ---------------------------------------------------------------------------

OBS01_BAD = """\
    OBS = Observer()

    def stage_a(page, obs):
        return page

    def stage_b(page, obs=Observer()):
        return page
"""

OBS01_GOOD = """\
    def stage(page, obs=NULL_OBSERVER):
        return page
"""


def test_obs01_flags_unthreaded_observers(tmp_path):
    path = write_module(tmp_path, "repro/core/stage.py", OBS01_BAD)
    findings = [f for f in analyze_paths([str(path)]) if f.rule == "OBS01"]
    messages = " ".join(f.message for f in findings)
    assert "module-level Observer()" in messages
    assert "without a default" in messages
    assert len(findings) == 3


def test_obs01_passes_null_observer_default(tmp_path):
    path = write_module(tmp_path, "repro/core/stage.py", OBS01_GOOD)
    assert "OBS01" not in rules_of(analyze_paths([str(path)]))


# ---------------------------------------------------------------------------
# API01 hygiene (unscoped)
# ---------------------------------------------------------------------------

API01_BAD = """\
    __all__ = ["f", "f", "ghost"]

    def f(items=[]):
        try:
            return items
        except:
            return None
"""

API01_GOOD = """\
    __all__ = ["f"]

    def f(items=None):
        try:
            return items
        except ValueError:
            return None
"""


def test_api01_flags_hygiene_everywhere(tmp_path):
    # Deliberately outside any repro package: API01 is unscoped.
    path = write_module(tmp_path, "scripts/tool.py", API01_BAD)
    findings = [f for f in analyze_paths([str(path)]) if f.rule == "API01"]
    messages = " ".join(f.message for f in findings)
    assert "mutable default" in messages
    assert "bare except" in messages
    assert "duplicate 'f'" in messages
    assert "'ghost'" in messages


def test_api01_passes_clean_module(tmp_path):
    path = write_module(tmp_path, "scripts/tool.py", API01_GOOD)
    assert "API01" not in rules_of(analyze_paths([str(path)]))


def test_api01_skips_computed_dunder_all(tmp_path):
    path = write_module(
        tmp_path,
        "repro/pkg.py",
        """\
        _EXPORTS = {"a": 1}
        __all__ = sorted(_EXPORTS)
        """,
    )
    assert "API01" not in rules_of(analyze_paths([str(path)]))


# ---------------------------------------------------------------------------
# CFG01 config threading
# ---------------------------------------------------------------------------

CFG01_BAD = """\
    def distance(a, b):
        return compare(a, b, DEFAULT_CONFIG)
"""

CFG01_GOOD = """\
    def distance(a, b, config=DEFAULT_CONFIG):
        return compare(a, b, config)
"""


def test_cfg01_flags_ambient_config_read(tmp_path):
    path = write_module(tmp_path, "repro/features/dist.py", CFG01_BAD)
    findings = [f for f in analyze_paths([str(path)]) if f.rule == "CFG01"]
    assert len(findings) == 1
    assert "DEFAULT_CONFIG" in findings[0].message


def test_cfg01_allows_default_parameter_value(tmp_path):
    path = write_module(tmp_path, "repro/features/dist.py", CFG01_GOOD)
    assert "CFG01" not in rules_of(analyze_paths([str(path)]))


# ---------------------------------------------------------------------------
# TYP01 typing gate
# ---------------------------------------------------------------------------

TYP01_BAD = """\
    def f(x) -> int:
        return x

    def g(x: int):
        return x
"""

TYP01_GOOD = """\
    class C:
        def __init__(self, x: int):
            self.x = x

        def get(self) -> int:
            return self.x

        @staticmethod
        def make(x: int) -> "C":
            return C(x)

    def f(x: int) -> int:
        return x
"""


def test_typ01_flags_missing_annotations(tmp_path):
    path = write_module(tmp_path, "repro/algorithms/alg.py", TYP01_BAD)
    findings = [f for f in analyze_paths([str(path)]) if f.rule == "TYP01"]
    assert len(findings) == 2


def test_typ01_exempts_self_cls_and_init_return(tmp_path):
    path = write_module(tmp_path, "repro/algorithms/alg.py", TYP01_GOOD)
    assert "TYP01" not in rules_of(analyze_paths([str(path)]))


def test_typ01_ignores_unscoped_files(tmp_path):
    path = write_module(tmp_path, "scripts/tool.py", TYP01_BAD)
    assert "TYP01" not in rules_of(analyze_paths([str(path)]))


# ---------------------------------------------------------------------------
# Inline pragmas
# ---------------------------------------------------------------------------


def test_pragma_suppresses_named_rule_on_line(tmp_path):
    path = write_module(
        tmp_path,
        "repro/core/memo.py",
        """\
        def key_of(page):
            return id(page)  # lint: allow DET01 -- process-local memo key
        """,
    )
    assert "DET01" not in rules_of(analyze_paths([str(path)]))


def test_pragma_does_not_suppress_other_rules(tmp_path):
    path = write_module(
        tmp_path,
        "repro/core/memo.py",
        """\
        def key_of(page):
            return id(page)  # lint: allow PUR01 -- wrong rule id
        """,
    )
    assert "DET01" in rules_of(analyze_paths([str(path)]))


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------


def test_baseline_round_trip_suppresses_findings(tmp_path):
    module = write_module(tmp_path, "repro/core/dirty.py", "import random\n")
    findings = analyze_paths([str(module)])
    assert findings

    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, findings)
    loaded = load_baseline(baseline_path)
    assert loaded == findings
    assert apply_baseline(findings, loaded) == []


def test_baseline_matching_is_line_insensitive(tmp_path):
    module = write_module(tmp_path, "repro/core/dirty.py", "import random\n")
    baseline = analyze_paths([str(module)])

    # The same violation moves down two lines; it must stay suppressed.
    write_module(tmp_path, "repro/core/dirty.py", "X = 1\nY = 2\nimport random\n")
    moved = analyze_paths([str(module)])
    assert moved and moved[0].line != baseline[0].line
    assert apply_baseline(moved, baseline) == []


def test_baseline_rejects_foreign_files(tmp_path):
    bad = tmp_path / "not-a-baseline.json"
    bad.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(bad)


# ---------------------------------------------------------------------------
# Determinism of the linter itself
# ---------------------------------------------------------------------------


def test_findings_identical_regardless_of_path_order(tmp_path):
    a = write_module(tmp_path, "repro/core/a.py", "import random\n")
    b = write_module(tmp_path, "repro/perf/b.py", PUR01_BAD)
    c = write_module(tmp_path, "repro/features/c.py", CFG01_BAD)

    orders = [
        [str(a), str(b), str(c)],
        [str(c), str(a), str(b)],
        [str(b), str(c), str(a)],
    ]
    results = [analyze_paths(order) for order in orders]
    assert results[0] == results[1] == results[2]
    # Directory discovery agrees with explicit file lists.
    assert analyze_paths([str(tmp_path)]) == results[0]


def test_duplicate_paths_do_not_duplicate_findings(tmp_path):
    a = write_module(tmp_path, "repro/core/a.py", "import random\n")
    once = analyze_paths([str(a)])
    twice = analyze_paths([str(a), str(a), str(tmp_path)])
    assert once == twice


# ---------------------------------------------------------------------------
# The repository gates itself
# ---------------------------------------------------------------------------


def test_src_repro_is_clean():
    assert analyze_paths([str(SRC_REPRO)]) == []


def test_committed_baseline_is_empty():
    baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
    assert baseline == []


def test_every_rule_has_id_title_invariant():
    rules = default_rules()
    ids = [rule.rule_id for rule in rules]
    assert len(ids) == len(set(ids))
    assert len(rules) >= 5
    for rule in rules:
        assert rule.rule_id and rule.title and rule.invariant


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_exit_codes_and_text_output(tmp_path, capsys):
    dirty = write_module(tmp_path, "repro/core/dirty.py", "import random\n")
    clean = write_module(tmp_path, "repro/core/clean.py", "X = 1\n")

    assert analysis_main([str(clean)]) == 0
    assert analysis_main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "DET01" in out
    assert f"{dirty.as_posix()}:1:0:" in out


def test_cli_json_format(tmp_path, capsys):
    dirty = write_module(tmp_path, "repro/core/dirty.py", "import random\n")
    assert analysis_main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"]) == 1
    assert payload["findings"][0]["rule"] == "DET01"


def test_cli_baseline_flow(tmp_path, capsys):
    dirty = write_module(tmp_path, "repro/core/dirty.py", "import random\n")
    baseline = tmp_path / "baseline.json"

    assert analysis_main([str(dirty), "--write-baseline", str(baseline)]) == 0
    assert analysis_main([str(dirty), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "suppressed by baseline" in out


def test_cli_usage_errors(tmp_path, capsys):
    assert analysis_main([str(tmp_path / "missing")]) == 2
    assert analysis_main(["--rules", "NOPE99", str(tmp_path)]) == 2


def test_cli_rule_filter(tmp_path):
    dirty = write_module(
        tmp_path, "repro/core/dirty.py", "import random\n\ndef f(x=[]):\n    return x\n"
    )
    assert analysis_main([str(dirty), "--rules", "OBS01"]) == 0
    assert analysis_main([str(dirty), "--rules", "DET01"]) == 1


# ---------------------------------------------------------------------------
# mypy strict gate (runs only where the lint extra is installed, e.g. CI)
# ---------------------------------------------------------------------------


def test_mypy_strict_on_gated_packages():
    pytest.importorskip("mypy")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "-p",
            "repro.core",
            "-p",
            "repro.algorithms",
            "-p",
            "repro.features",
            "-p",
            "repro.perf",
        ],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
