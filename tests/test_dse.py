"""DSE tests: cleaning, CSBM marking, filtering, DS identification."""

from repro.core.dse import (
    DynamicSection,
    clean_line_text,
    clean_page_lines,
    filter_csbms,
    identify_dss,
    mark_csbms_multi,
    mark_csbms_pair,
    run_dse,
)
from repro.core.mre import extract_mrs
from tests.helpers import make_records, render, simple_result_page


def rendered_pair(query1="apple", query2="banana", n1=4, n2=5):
    pages = []
    for query, n in ((query1, n1), (query2, n2)):
        html = simple_result_page(query, [("Web", make_records("Web", n, query))])
        page = render(html)
        clean_page_lines(page, query.split())
        pages.append(page)
    return pages


class TestCleaning:
    def test_numbers_removed(self):
        assert clean_line_text("Your search returned 578 matches", []) == (
            "your search returned matches"
        )

    def test_query_terms_removed_case_insensitive(self):
        out = clean_line_text("Results for Apple pie", ["apple"])
        assert "apple" not in out
        assert "results for pie" == out

    def test_dates_removed(self):
        out = clean_line_text("News story (4/10/2002 1:07:00 PM)", [])
        assert "2002" not in out and "07" not in out

    def test_lowercased_and_collapsed(self):
        assert clean_line_text("  A   B  ", []) == "a b"

    def test_empty_query_terms(self):
        assert clean_line_text("hello", [""]) == "hello"

    def test_clean_page_lines_fills_cleaned(self):
        page = render("<html><body><p>Result 5 for apple</p></body></html>")
        clean_page_lines(page, ["apple"])
        assert page.lines[0].cleaned == "result for"


class TestCsbmMarking:
    def test_static_chrome_marked(self):
        p1, p2 = rendered_pair()
        csbms1, csbms2 = mark_csbms_pair(p1, p2)
        nav_line = next(l for l in p1.lines if "Home" in l.text)
        assert nav_line.number in csbms1

    def test_semi_dynamic_count_line_marked(self):
        p1, p2 = rendered_pair()
        csbms1, _ = mark_csbms_pair(p1, p2)
        count_line = next(l for l in p1.lines if "matches" in l.text)
        assert count_line.number in csbms1

    def test_section_header_marked(self):
        p1, p2 = rendered_pair()
        csbms1, _ = mark_csbms_pair(p1, p2)
        header = next(l for l in p1.lines if l.text == "Web")
        assert header.number in csbms1

    def test_record_titles_not_marked(self):
        p1, p2 = rendered_pair()
        csbms1, _ = mark_csbms_pair(p1, p2)
        for line in p1.lines:
            if "result" in line.text and "about" in line.text:
                assert line.number not in csbms1

    def test_marking_is_mutual(self):
        p1, p2 = rendered_pair()
        csbms1, csbms2 = mark_csbms_pair(p1, p2)
        assert len(csbms1) == len(csbms2)

    def test_multi_page_union(self):
        pages = rendered_pair() + rendered_pair("cherry", "durian")
        marks = mark_csbms_multi(pages)
        assert len(marks) == 4
        assert all(marks)

    def test_structural_hr_line_marked(self):
        p1 = render("<html><body><p>unique apple text</p><hr><p>tail</p></body></html>")
        p2 = render("<html><body><p>unique banana text</p><hr><p>tail</p></body></html>")
        clean_page_lines(p1, ["apple"])
        clean_page_lines(p2, ["banana"])
        csbms1, _ = mark_csbms_pair(p1, p2)
        hr_line = next(l for l in p1.lines if l.text == "")
        assert hr_line.number in csbms1


class TestFilterCsbms:
    def test_per_record_pattern_dropped(self):
        # A string appearing in every record of an MR is not a boundary.
        items = "".join(
            f'<li><a href="/{i}">Item {i}</a><br>Buy new: $19.99</li>'
            for i in range(4)
        )
        page = render(f"<html><body><ul>{items}</ul></body></html>")
        clean_page_lines(page, [])
        mrs = extract_mrs(page)
        assert mrs
        price_lines = {l.number for l in page.lines if "Buy new" in l.text}
        kept = filter_csbms(page, set(price_lines), mrs)
        assert not kept & price_lines

    def test_marker_outside_mr_kept(self):
        page = render("<html><body><p>keep me</p></body></html>")
        clean_page_lines(page, [])
        assert filter_csbms(page, {0}, []) == {0}


class TestIdentifyDss:
    def test_non_csbm_runs_become_dss(self):
        page = render(
            "<html><body><p>a</p><p>b</p><p>c</p><p>d</p></body></html>"
        )
        dss = identify_dss(page, {0, 2})
        assert [(d.start, d.end) for d in dss] == [(1, 1), (3, 3)]

    def test_boundary_markers_attached(self):
        page = render("<html><body><p>a</p><p>b</p><p>c</p></body></html>")
        (ds,) = identify_dss(page, {0, 2})
        assert ds.lbm == 0 and ds.rbm == 2

    def test_ds_at_page_edges_has_no_marker(self):
        page = render("<html><body><p>a</p><p>b</p></body></html>")
        (ds,) = identify_dss(page, set())
        assert ds.lbm is None and ds.rbm is None
        assert (ds.start, ds.end) == (0, 1)

    def test_all_csbms_no_ds(self):
        page = render("<html><body><p>a</p><p>b</p></body></html>")
        assert identify_dss(page, {0, 1}) == []


class TestRunDse:
    def test_end_to_end(self):
        pages = []
        queries = ["apple", "banana", "cherry"]
        for q in queries:
            html = simple_result_page(q, [("Web", make_records("Web", 4, q))])
            pages.append(render(html))
        mrs = [extract_mrs(p) for p in pages]
        csbms, dss = run_dse(pages, queries, mrs)
        assert len(csbms) == 3 and len(dss) == 3
        # the record region must be (inside) a DS on each page
        for page, page_dss in zip(pages, dss):
            record_line = next(
                l.number for l in page.lines if "result 0" in l.text
            )
            assert any(d.start <= record_line <= d.end for d in page_dss)

    def test_mismatched_inputs_raise(self):
        import pytest

        with pytest.raises(ValueError):
            run_dse([], ["q"], [])
