"""DSE multi-page voting tests, including the marker-text inheritance rule."""

from repro.core.dse import clean_page_lines, mark_csbms_multi, match_key
from repro.render.linetypes import LineType
from tests.helpers import render


def engine_page(query, records_a, more_b=False):
    """Two sections; section B's 'more' footer appears only sometimes."""
    parts = ["<html><body><h2>Alpha</h2><ul>"]
    salt = sum(ord(c) for c in query)
    words = ["red", "blue", "green", "gold", "gray", "teal"]
    for i in range(records_a):
        w = words[(salt + i) % 6]
        parts.append(f'<li><a href="/{i}">{w} {query} item</a><br>body {w} text</li>')
    parts.append('</ul><a href="/moreA">Click for more</a>')
    parts.append("<h2>Beta</h2><ul>")
    for i in range(2):
        w = words[(salt + 2 * i + 1) % 6]
        parts.append(f'<li><a href="/b{i}">{w} beta {query}</a><br>beta {w} body</li>')
    parts.append("</ul>")
    if more_b:
        parts.append('<a href="/moreB">Click for more</a>')
    parts.append("<p>Copyright Demo</p></body></html>")
    return "".join(parts)


def rendered(pages_spec):
    pages = []
    for query, n, more_b in pages_spec:
        page = render(engine_page(query, n, more_b))
        clean_page_lines(page, query.split())
        pages.append(page)
    return pages


class TestVoting:
    def test_static_lines_marked_everywhere(self):
        pages = rendered([("apple", 3, True), ("banana", 4, True), ("cherry", 3, True)])
        marks = mark_csbms_multi(pages)
        for page, csbms in zip(pages, marks):
            copyright_line = next(l for l in page.lines if "Copyright" in l.text)
            assert copyright_line.number in csbms

    def test_single_pairing_match_not_enough(self):
        # Identical record appearing on exactly two pages must not become
        # a marker: one pairing = one vote < 2.
        pages = rendered([("apple", 3, False), ("banana", 4, False), ("cherry", 3, False)])
        # inject the same cleaned text into a record line of pages 0 and 1
        pages[0].lines[3].cleaned = "coincidental overlap record"
        pages[1].lines[3].cleaned = "coincidental overlap record"
        marks = mark_csbms_multi(pages)
        assert 3 not in marks[0] or pages[0].lines[3].cleaned != "coincidental overlap record"

    def test_rare_footer_inherits_marker_status(self):
        # Section B's footer exists on only one other page (one vote), but
        # section A's identical footer text is fully certified -> the rare
        # footer inherits CSBM status.
        pages = rendered(
            [("apple", 3, True), ("banana", 4, False), ("cherry", 3, False)]
        )
        marks = mark_csbms_multi(pages)
        page0 = pages[0]
        footers = [l.number for l in page0.lines if "Click for more" in l.text]
        assert len(footers) == 2
        assert all(n in marks[0] for n in footers)


class TestMatchKey:
    def test_text_key_for_text_lines(self):
        page = render("<html><body><p>Hello World</p></body></html>")
        clean_page_lines(page, [])
        assert match_key(page.lines[0]) == "hello world"

    def test_structural_key_for_hr(self):
        page = render("<html><body><hr></body></html>")
        clean_page_lines(page, [])
        key = match_key(page.lines[0])
        assert key.startswith("\x00")
        assert str(LineType.HR.value) in key

    def test_no_key_for_cleaned_away_text(self):
        page = render("<html><body><p>12345</p></body></html>")
        clean_page_lines(page, [])
        assert match_key(page.lines[0]) == ""
