"""Data model tests."""

from repro.core.model import (
    ExtractedRecord,
    ExtractedSection,
    PageExtraction,
    SectionInstance,
    section_to_extracted,
)
from repro.features.blocks import Block
from tests.helpers import render

PAGE = render(
    "<html><body><h2>Web</h2><ul>"
    "<li><a href='/1'>alpha</a><br>sn a</li>"
    "<li><a href='/2'>bravo</a><br>sn b</li>"
    "</ul><p>More</p></body></html>"
)


class TestSectionInstance:
    def instance(self):
        return SectionInstance(
            page=PAGE,
            block=Block(PAGE, 1, 4),
            records=[Block(PAGE, 1, 2), Block(PAGE, 3, 4)],
            lbm=0,
            rbm=5,
        )

    def test_span_properties(self):
        inst = self.instance()
        assert inst.start == 1 and inst.end == 4

    def test_marker_lines(self):
        inst = self.instance()
        assert inst.lbm_line.text == "Web"
        assert inst.rbm_line.text == "More"

    def test_no_markers(self):
        inst = SectionInstance(page=PAGE, block=Block(PAGE, 1, 4))
        assert inst.lbm_line is None and inst.rbm_line is None

    def test_record_spans(self):
        assert self.instance().record_spans() == [(1, 2), (3, 4)]


class TestConversion:
    def test_section_to_extracted(self):
        inst = SectionInstance(
            page=PAGE,
            block=Block(PAGE, 1, 4),
            records=[Block(PAGE, 1, 2), Block(PAGE, 3, 4)],
            lbm=0,
            rbm=5,
        )
        section = section_to_extracted(inst, schema_id="S9")
        assert section.schema_id == "S9"
        assert section.lbm_text == "Web"
        assert section.rbm_text == "More"
        assert len(section) == 2
        assert section.records[0].line_span == (1, 2)
        assert "alpha" in section.records[0].text


class TestExtractedTypes:
    def test_record_text_joins_lines(self):
        record = ExtractedRecord(lines=("title", "snippet"), line_span=(0, 1))
        assert record.text == "title / snippet"

    def test_record_text_skips_empty_lines(self):
        record = ExtractedRecord(lines=("title", ""), line_span=(0, 1))
        assert record.text == "title"

    def test_page_extraction_counts(self):
        sections = (
            ExtractedSection(
                records=(ExtractedRecord(("a",), (0, 0)),), line_span=(0, 0)
            ),
            ExtractedSection(
                records=(
                    ExtractedRecord(("b",), (2, 2)),
                    ExtractedRecord(("c",), (3, 3)),
                ),
                line_span=(2, 3),
            ),
        )
        extraction = PageExtraction(sections=sections)
        assert len(extraction) == 2
        assert extraction.record_count == 3
        assert [r.text for r in extraction.all_records()] == ["a", "b", "c"]
