"""Baseline tests: MDR and single-section ViNTs."""

from repro.baselines.mdr import mdr_extract
from repro.baselines.vints_single import build_single_section_wrapper
from repro.evalkit.matching import grade_page
from repro.testbed import load_engine_pages
from tests.helpers import make_records, sample_pages, simple_result_page


class TestMdr:
    def test_finds_record_region(self):
        html = simple_result_page("apple", [("Web", make_records("Web", 5, "apple"))])
        extraction = mdr_extract(html)
        assert any(len(s) >= 4 for s in extraction.sections)

    def test_no_dynamic_static_distinction(self):
        # MDR reports the static nav region too (the paper's critique).
        html = (
            "<html><body>"
            + "".join(f'<div><a href="/{i}">Channel {i}</a></div>' for i in range(5))
            + "<ul>"
            + "".join(
                f'<li><a href="/r{i}">{w} title</a><br>snippet {w}</li>'
                for i, w in enumerate(["alpha", "bravo", "charlie", "delta"])
            )
            + "</ul></body></html>"
        )
        extraction = mdr_extract(html)
        assert len(extraction.sections) >= 2  # nav region + record region

    def test_two_record_minimum(self):
        html = (
            "<html><body><ul>"
            "<li><a href='/1'>only one</a><br>snippet</li>"
            "</ul></body></html>"
        )
        extraction = mdr_extract(html)
        assert all(len(s) >= 2 for s in extraction.sections)

    def test_empty_page(self):
        assert len(mdr_extract("<html><body><p>x</p></body></html>")) == 0

    def test_sections_in_document_order(self):
        ep = load_engine_pages(85, pages_per_engine=1)
        extraction = mdr_extract(ep.pages[0])
        spans = [s.line_span for s in extraction.sections]
        assert spans == sorted(spans)


class TestSingleSectionVints:
    def test_extracts_only_main_section(self):
        pages = sample_pages(
            ("apple", "banana", "cherry"), [("Web", 5), ("News", 3)]
        )
        wrapper = build_single_section_wrapper(pages)
        html, query = pages[0]
        extraction = wrapper.extract(html, query)
        assert len(extraction) == 1
        assert len(extraction.sections[0]) == 5  # the larger section

    def test_misses_secondary_sections_on_multi_engine(self):
        ep = load_engine_pages(85)
        wrapper = build_single_section_wrapper(ep.sample_set)
        misses = 0
        for i in range(len(ep.pages)):
            grade = grade_page(
                wrapper.extract(ep.pages[i], ep.queries[i]), ep.truths[i]
            )
            misses += len(grade.missed_truth)
        assert misses > 0  # by construction it cannot cover all sections
