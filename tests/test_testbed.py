"""Test-bed generator tests: determinism, structure, ground truth."""

import pytest

from repro.htmlmod.parser import parse_html
from repro.render.layout import render_page
from repro.testbed import (
    MULTI_SECTION_ENGINES,
    SINGLE_SECTION_ENGINES,
    TOTAL_ENGINES,
    Repository,
    boundary_marker_rate,
    compute_truth,
    engine_ids,
    load_engine_pages,
    make_engine,
)
from repro.testbed.vocab import make_query, make_snippet, make_title
import random


class TestVocab:
    def test_query_deterministic(self):
        assert make_query(random.Random(7)) == make_query(random.Random(7))

    def test_title_echoes_query_term(self):
        rng = random.Random(1)
        title = make_title(rng, "asthma")
        assert "asthma" in title

    def test_snippet_echoes_query_term(self):
        rng = random.Random(1)
        assert "lunar" in make_snippet(rng, "lunar")


class TestRepository:
    def repo(self, **kwargs):
        return Repository(seed=42, topic="News", domain="newsdigest", **kwargs)

    def test_deterministic_per_query(self):
        repo = self.repo()
        assert [r.title for r in repo.retrieve("asthma")] == [
            r.title for r in repo.retrieve("asthma")
        ]

    def test_different_queries_different_results(self):
        repo = self.repo()
        a = [r.title for r in repo.retrieve("asthma")]
        b = [r.title for r in repo.retrieve("lunar")]
        assert a != b

    def test_hit_count_bounds(self):
        repo = self.repo(min_hits=2, max_hits=4)
        for query in ("a", "b", "c", "d"):
            assert 2 <= len(repo.retrieve(query)) <= 4

    def test_empty_rate_one_always_empty(self):
        repo = self.repo(empty_rate=1.0)
        assert repo.retrieve("anything") == []

    def test_records_have_titles_and_urls(self):
        for record in self.repo().retrieve("asthma"):
            assert record.title
            assert record.url.startswith("http://")


class TestEngineGeneration:
    def test_deterministic(self):
        a = make_engine(5)
        b = make_engine(5)
        assert a.name == b.name
        assert [s.topic for s in a.sections] == [s.topic for s in b.sections]
        assert a.result_page("lunar") == b.result_page("lunar")

    def test_single_section_split(self):
        assert not make_engine(0).is_multi_section
        assert make_engine(SINGLE_SECTION_ENGINES).is_multi_section

    def test_corpus_size(self):
        assert TOTAL_ENGINES == 119
        assert len(engine_ids("single")) == 81
        assert len(engine_ids("multi")) == MULTI_SECTION_ENGINES == 38

    def test_bad_engine_id(self):
        with pytest.raises(ValueError):
            make_engine(TOTAL_ENGINES)

    def test_queries_distinct(self):
        queries = make_engine(3).queries(10)
        assert len(queries) == len(set(queries)) == 10

    def test_result_page_is_parseable_html(self):
        engine = make_engine(7)
        page = render_page(parse_html(engine.result_page("lunar")))
        assert len(page.lines) > 5

    def test_boundary_marker_rate_near_paper(self):
        rate = boundary_marker_rate()
        assert 0.93 <= rate <= 1.0  # paper reports 96.9%


class TestGroundTruth:
    def test_truth_sections_present_when_repository_nonempty(self):
        ep = load_engine_pages(0, pages_per_engine=2)
        for truth in ep.truths:
            assert len(truth.sections) >= 1

    def test_record_spans_tile_the_section(self):
        ep = load_engine_pages(2, pages_per_engine=2)
        for truth in ep.truths:
            for section in truth.sections:
                spans = sorted(section.record_spans)
                for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                    assert e1 + 1 == s2  # contiguous
                assert spans[0][0] == section.span[0]
                assert spans[-1][1] == section.span[1]

    def test_truth_spans_sorted(self):
        ep = load_engine_pages(90, pages_per_engine=2)
        for truth in ep.truths:
            starts = [s.span[0] for s in truth.sections]
            assert starts == sorted(starts)

    def test_sections_do_not_overlap(self):
        ep = load_engine_pages(95, pages_per_engine=3)
        for truth in ep.truths:
            spans = sorted(s.span for s in truth.sections)
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 < s2

    def test_shared_table_truth(self):
        # find a shared-table engine among the multi-section ids
        shared = next(
            (eid for eid in engine_ids("multi") if make_engine(eid).shared_table),
            None,
        )
        assert shared is not None, "corpus should contain shared-table engines"
        ep = load_engine_pages(shared, pages_per_engine=2)
        for truth in ep.truths:
            assert truth.sections

    def test_record_text_is_query_related(self):
        ep = load_engine_pages(1, pages_per_engine=1)
        truth = ep.truths[0]
        query_terms = ep.queries[0].split()
        section = truth.sections[0]
        start, end = section.record_spans[0]
        text = " ".join(l.text for l in truth.page.lines[start : end + 1])
        assert any(term in text for term in query_terms)


class TestMarkersInvisibleToExtractor:
    """data-gt-* attributes must not influence anything the pipeline sees."""

    def test_rendering_identical_without_markers(self):
        engine = make_engine(10)
        markup = engine.result_page("lunar")
        stripped = _strip_markers(markup)
        original = render_page(parse_html(markup))
        clean = render_page(parse_html(stripped))
        assert [(l.text, l.line_type, l.position) for l in original.lines] == [
            (l.text, l.line_type, l.position) for l in clean.lines
        ]

    def test_tag_signatures_identical_without_markers(self):
        engine = make_engine(99)
        markup = engine.result_page("lunar")
        doc1 = parse_html(markup)
        doc2 = parse_html(_strip_markers(markup))
        assert doc1.root.tag_signature() == doc2.root.tag_signature()

    def test_extraction_identical_without_markers(self):
        ep = load_engine_pages(4)
        from repro.core.mse import build_wrapper

        engine = build_wrapper(ep.sample_set)
        marked = engine.extract(ep.pages[5], ep.queries[5])
        clean = engine.extract(_strip_markers(ep.pages[5]), ep.queries[5])
        assert [s.line_span for s in marked.sections] == [
            s.line_span for s in clean.sections
        ]
        assert [r.line_span for s in marked.sections for r in s.records] == [
            r.line_span for s in clean.sections for r in s.records
        ]


def _strip_markers(markup: str) -> str:
    import re

    return re.sub(r'\s*data-gt-[a-z]+="[^"]*"', "", markup)
