"""Deeper edge-case tests across the core pipeline."""

import pytest

from repro.core.mse import MSE, MSEConfig, build_wrapper
from repro.core.family import Type1Family
from repro.evalkit.matching import grade_page
from repro.testbed import engine_ids, load_engine_pages, make_engine
from tests.helpers import make_records, sample_pages, simple_result_page


class TestSharedTableEndToEnd:
    """The Figure-10 structure: sections as row ranges of one tbody."""

    @pytest.fixture(scope="class")
    def shared_engine(self):
        for engine_id in engine_ids("multi"):
            if make_engine(engine_id).shared_table:
                return load_engine_pages(engine_id)
        pytest.fail("corpus has no shared-table engine")

    def test_extraction_quality(self, shared_engine):
        from repro.evalkit.harness import evaluate_engine

        result = evaluate_engine(shared_engine)
        total = result.rows.total_sections
        assert total.recall_total >= 0.5

    def test_sections_share_one_subtree(self, shared_engine):
        wrapper = build_wrapper(shared_engine.sample_set)
        prefs = {str(w.pref) for w in wrapper.wrappers if w.markers_inside}
        # at least two schemas resolve to the same pref (the shared tbody)
        # when markers are inside -- the Type 1 precondition
        if len(prefs) < len([w for w in wrapper.wrappers if w.markers_inside]):
            assert True
        else:
            # or a Type 1 family was built outright
            assert any(isinstance(f, Type1Family) for f in wrapper.families) or prefs


class TestJunkEngines:
    """Dynamic junk lines are false sections by design (precision cost)."""

    @pytest.fixture(scope="class")
    def junk_engine(self):
        for engine_id in engine_ids("all"):
            if make_engine(engine_id).dynamic_junk:
                return load_engine_pages(engine_id)
        pytest.fail("corpus has no junk engine")

    def test_junk_becomes_false_section(self, junk_engine):
        wrapper = build_wrapper(junk_engine.sample_set)
        false_sections = 0
        for index in range(len(junk_engine.pages)):
            extraction = wrapper.extract(
                junk_engine.pages[index], junk_engine.queries[index]
            )
            grade = grade_page(extraction, junk_engine.truths[index])
            false_sections += sum(1 for m in grade.matches if not m.matched)
        assert false_sections > 0  # the paper's main precision loss source

    def test_real_sections_still_extracted(self, junk_engine):
        from repro.evalkit.harness import evaluate_engine

        result = evaluate_engine(junk_engine)
        assert result.rows.total_sections.recall_total >= 0.7


class TestMatchThreshold:
    def test_threshold_one_kills_all_groups(self):
        pages = sample_pages(("apple", "banana", "cherry"), [("Web", 4)])
        engine = build_wrapper(pages, MSEConfig(match_threshold=1.01))
        assert engine.wrappers == []

    def test_default_threshold_builds_wrappers(self):
        pages = sample_pages(("apple", "banana", "cherry"), [("Web", 4)])
        engine = build_wrapper(pages)
        assert engine.wrappers


class TestPositionShift:
    """A wrapper must find its section when preceding sections vanish."""

    def test_section_found_at_shifted_position(self):
        # Train with News always present; extract a page without News,
        # which shifts the Images section upward.
        plans = [
            [("Web", 4), ("News", 3), ("Images", 3)],
            [("Web", 5), ("News", 2), ("Images", 4)],
        ]
        pages = []
        for (query, plan) in zip(("apple", "banana"), plans):
            sections = [(h, make_records(h, n, query)) for h, n in plan]
            pages.append((simple_result_page(query, sections), query))
        engine = build_wrapper(pages)

        html = simple_result_page(
            "durian",
            [
                ("Web", make_records("Web", 4, "durian")),
                ("Images", make_records("Images", 2, "durian")),  # News absent
            ],
        )
        extraction = engine.extract(html, "durian")
        lbms = [s.lbm_text for s in extraction.sections]
        assert "Images" in lbms
        images = next(s for s in extraction.sections if s.lbm_text == "Images")
        assert len(images) == 2

    def test_absent_middle_section_not_hallucinated(self):
        plans = [
            [("Web", 4), ("News", 3), ("Images", 3)],
            [("Web", 5), ("News", 2), ("Images", 4)],
        ]
        pages = []
        for (query, plan) in zip(("apple", "banana"), plans):
            sections = [(h, make_records(h, n, query)) for h, n in plan]
            pages.append((simple_result_page(query, sections), query))
        engine = build_wrapper(pages)
        html = simple_result_page(
            "durian",
            [
                ("Web", make_records("Web", 4, "durian")),
                ("Images", make_records("Images", 2, "durian")),
            ],
        )
        extraction = engine.extract(html, "durian")
        assert all(s.lbm_text != "News" for s in extraction.sections)


class TestRecordCountExtremes:
    def test_many_records(self):
        pages = sample_pages(("apple", "banana"), [("Web", 9)])
        engine = build_wrapper(pages)
        html = simple_result_page("durian", [("Web", make_records("Web", 12, "durian"))])
        extraction = engine.extract(html, "durian")
        assert extraction.record_count == 12

    def test_record_count_grows_and_shrinks(self):
        pages = sample_pages(("apple", "banana", "cherry"), [("Web", 5)])
        engine = build_wrapper(pages)
        for count in (1, 3, 8):
            html = simple_result_page(
                "durian", [("Web", make_records("Web", count, "durian"))]
            )
            assert engine.extract(html, "durian").record_count == count


class TestGroupingCliqueMerge:
    def test_overlapping_cliques_merged(self):
        from repro.core.grouping import _merge_overlapping_cliques

        cliques = [frozenset({1, 2, 3}), frozenset({3, 4, 5}), frozenset({7, 8})]
        merged = _merge_overlapping_cliques(cliques)
        as_sets = sorted(merged, key=len)
        assert {7, 8} in as_sets
        assert {1, 2, 3, 4, 5} in as_sets

    def test_disjoint_cliques_untouched(self):
        from repro.core.grouping import _merge_overlapping_cliques

        cliques = [frozenset({1, 2}), frozenset({3, 4})]
        assert len(_merge_overlapping_cliques(cliques)) == 2
