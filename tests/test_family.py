"""Section family tests (§5.8): construction rules and hidden sections."""

from repro.core.family import Type1Family, Type2Family, build_families
from repro.core.mse import MSE, MSEConfig
from repro.core.wrapper import SectionWrapper, SeparatorRule
from repro.render.styles import TextAttr
from repro.tagpath.paths import MergedTagPath
from tests.helpers import make_records, sample_pages, simple_result_page

HEADER_ATTRS = frozenset({TextAttr(size=20, style="bold")})
RECORD_ATTRS = frozenset({TextAttr(), TextAttr(color="blue", underline=True)})


def wrapper(schema_id, s_count, lbm_attrs=HEADER_ATTRS, markers_inside=False,
            sep=SeparatorRule("child-start", "li"), tags=("html", "body", "ul")):
    counts = [0] * len(tags)
    counts[-1] = s_count
    pref = MergedTagPath(tags, counts, [{c} for c in counts])
    return SectionWrapper(
        schema_id=schema_id,
        pref=pref,
        separator=sep,
        lbm_texts={schema_id.lower()},
        lbm_attrs=lbm_attrs,
        rbm_attrs=frozenset(),
        record_attrs=RECORD_ATTRS,
        markers_inside=markers_inside,
    )


class TestType2Construction:
    def test_same_shape_wrappers_fold(self):
        families, leftover = build_families([wrapper("A", 1), wrapper("B", 3)])
        assert len(families) == 1
        assert isinstance(families[0], Type2Family)
        assert set(families[0].member_ids) == {"A", "B"}

    def test_flexible_level_in_family_pref(self):
        families, _ = build_families([wrapper("A", 1), wrapper("B", 3)])
        assert families[0].pref.fixed_counts[-1] is None

    def test_single_wrapper_no_family(self):
        families, leftover = build_families([wrapper("A", 1)])
        assert families == []
        assert len(leftover) == 1

    def test_marker_attrs_colliding_with_records_rejected(self):
        colliding = frozenset({TextAttr()})  # same as a record attr
        ws = [
            wrapper("A", 1, lbm_attrs=colliding),
            wrapper("B", 3, lbm_attrs=colliding),
        ]
        families, leftover = build_families(ws)
        assert families == []
        assert len(leftover) == 2

    def test_different_separators_not_folded(self):
        ws = [
            wrapper("A", 1),
            wrapper("B", 3, sep=SeparatorRule("child-start", "tr")),
        ]
        families, _ = build_families(ws)
        assert families == []

    def test_member_positions_map_known_schemas(self):
        families, _ = build_families([wrapper("A", 1), wrapper("B", 3)])
        positions = families[0].member_positions
        assert positions.get((1,)) == "A"
        assert positions.get((3,)) == "B"


class TestType1Construction:
    def test_identical_pref_with_inside_markers_folds(self):
        ws = [
            wrapper("A", 0, markers_inside=True, sep=SeparatorRule("child-start", "tr"),
                    tags=("html", "body", "table", "tbody")),
            wrapper("B", 0, markers_inside=True, sep=SeparatorRule("child-start", "tr"),
                    tags=("html", "body", "table", "tbody")),
        ]
        families, _ = build_families(ws)
        assert len(families) == 1
        assert isinstance(families[0], Type1Family)

    def test_outside_markers_do_not_fold_to_type1(self):
        ws = [wrapper("A", 0), wrapper("B", 0)]
        families, _ = build_families(ws)
        assert not any(isinstance(f, Type1Family) for f in families)


class TestHiddenSectionExtraction:
    def induce(self, plans):
        pages = []
        for query, plan in plans:
            sections = [(h, make_records(h, n, query)) for h, n in plan]
            pages.append((simple_result_page(query, sections), query))
        return MSE().build_wrapper(pages)

    def test_hidden_section_found_on_new_page(self):
        engine = self.induce(
            [
                ("apple", [("Web", 4), ("News", 3)]),
                ("banana", [("Web", 5), ("News", 4)]),
            ]
        )
        assert engine.families
        html = simple_result_page(
            "durian",
            [
                ("Web", make_records("Web", 3, "durian")),
                ("News", make_records("News", 2, "durian")),
                ("Images", make_records("Img", 4, "durian")),  # never seen
            ],
        )
        extraction = engine.extract(html, "durian")
        assert len(extraction) == 3
        headers = [s.lbm_text for s in extraction.sections]
        assert "Images" in headers
        hidden = next(s for s in extraction.sections if s.lbm_text == "Images")
        assert len(hidden) == 4
        assert hidden.schema_id.endswith("hidden0") or "hidden" in hidden.schema_id

    def test_families_disabled_config(self):
        config = MSEConfig(use_families=False)
        pages = []
        for query in ("apple", "banana"):
            sections = [
                ("Web", make_records("Web", 4, query)),
                ("News", make_records("News", 3, query)),
            ]
            pages.append((simple_result_page(query, sections), query))
        engine = MSE(config).build_wrapper(pages)
        assert engine.families == []

    def test_section_order_preserved(self):
        engine = self.induce(
            [
                ("apple", [("Web", 4), ("News", 3)]),
                ("banana", [("Web", 5), ("News", 4)]),
            ]
        )
        html = simple_result_page(
            "durian",
            [
                ("Web", make_records("Web", 3, "durian")),
                ("News", make_records("News", 4, "durian")),
            ],
        )
        extraction = engine.extract(html, "durian")
        spans = [s.line_span for s in extraction.sections]
        assert spans == sorted(spans)
