"""Layout engine tests: line formation, types, positions, attributes."""

from repro.render.layout import BODY_MARGIN, LIST_INDENT, render_html
from repro.render.linetypes import LineType


def lines(markup):
    return render_html(f"<html><body>{markup}</body></html>").lines


class TestLineFormation:
    def test_block_elements_start_new_lines(self):
        out = lines("<p>one</p><p>two</p>")
        assert [l.text for l in out] == ["one", "two"]

    def test_inline_elements_continue_line(self):
        out = lines("<p>hello <b>bold</b> world</p>")
        assert len(out) == 1
        assert out[0].text == "hello bold world"

    def test_br_breaks_line(self):
        out = lines("<p>one<br>two</p>")
        assert [l.text for l in out] == ["one", "two"]

    def test_whitespace_only_content_produces_no_line(self):
        assert lines("<p>   </p>") == []

    def test_line_numbers_sequential(self):
        out = lines("<p>a</p><p>b</p><p>c</p>")
        assert [l.number for l in out] == [0, 1, 2]

    def test_table_cells_are_separate_lines(self):
        out = lines("<table><tr><td>a</td><td>b</td></tr></table>")
        assert [l.text for l in out] == ["a", "b"]

    def test_list_items_are_separate_lines(self):
        out = lines("<ul><li>a</li><li>b</li></ul>")
        assert [l.text for l in out] == ["a", "b"]

    def test_script_and_style_invisible(self):
        out = lines("<script>var x=1;</script><style>p{}</style><p>real</p>")
        assert [l.text for l in out] == ["real"]

    def test_display_none_invisible(self):
        out = lines('<div style="display:none">hidden</div><p>shown</p>')
        assert [l.text for l in out] == ["shown"]

    def test_comment_invisible(self):
        out = lines("<p>a<!-- hidden -->b</p>")
        assert "hidden" not in out[0].text
        assert out[0].text.replace(" ", "") == "ab"


class TestLineTypes:
    def test_text_line(self):
        assert lines("<p>plain</p>")[0].line_type == LineType.TEXT

    def test_link_line(self):
        assert lines('<p><a href="/x">link</a></p>')[0].line_type == LineType.LINK

    def test_link_text_line(self):
        out = lines('<p><a href="/x">link</a> and text</p>')
        assert out[0].line_type == LineType.LINK_TEXT

    def test_heading_line(self):
        assert lines("<h2>header</h2>")[0].line_type == LineType.HEADING

    def test_hr_line(self):
        out = lines("<hr>")
        assert out[0].line_type == LineType.HR
        assert out[0].text == ""

    def test_image_line(self):
        assert lines('<p><img src="x.gif"></p>')[0].line_type == LineType.IMAGE

    def test_image_text_line(self):
        out = lines('<p><img src="x.gif"> caption</p>')
        assert out[0].line_type == LineType.IMAGE_TEXT

    def test_form_line(self):
        out = lines('<form><input type="text" value="q"><input type="submit" value="Go"></form>')
        assert out[0].line_type == LineType.FORM

    def test_select_options_not_rendered_as_text(self):
        out = lines("<form><select name='s'><option>one</option><option>two</option></select></form>")
        assert len(out) == 1
        assert out[0].line_type == LineType.FORM
        assert "one" not in out[0].text

    def test_anchor_without_href_is_text(self):
        assert lines("<p><a>nolink</a></p>")[0].line_type == LineType.TEXT


class TestPositions:
    def test_body_margin(self):
        assert lines("<p>x</p>")[0].position == BODY_MARGIN

    def test_list_indent(self):
        out = lines("<ul><li>item</li></ul>")
        assert out[0].position == BODY_MARGIN + LIST_INDENT

    def test_nested_list_indent_accumulates(self):
        out = lines("<ul><li>a<ul><li>inner</li></ul></li></ul>")
        inner = [l for l in out if l.text == "inner"][0]
        assert inner.position == BODY_MARGIN + 2 * LIST_INDENT

    def test_blockquote_indent(self):
        assert lines("<blockquote>q</blockquote>")[0].position == BODY_MARGIN + LIST_INDENT

    def test_dd_indent(self):
        out = lines("<dl><dt>term</dt><dd>def</dd></dl>")
        term, definition = out
        assert definition.position == term.position + LIST_INDENT

    def test_table_cell_offsets(self):
        out = lines(
            '<table><tr><td width="150">a</td><td>b</td></tr></table>'
        )
        assert out[0].position == BODY_MARGIN
        assert out[1].position == BODY_MARGIN + 150

    def test_percent_cell_width(self):
        out = lines('<table><tr><td width="25%">a</td><td>b</td></tr></table>')
        assert out[1].position == BODY_MARGIN + 200  # 25% of 800

    def test_margin_left_css(self):
        out = lines('<div style="margin-left: 30px">x</div>')
        assert out[0].position == BODY_MARGIN + 30

    def test_nested_table_positions(self):
        out = lines(
            '<table><tr><td width="100">nav</td><td>'
            "<table><tr><td>inner</td></tr></table>"
            "</td></tr></table>"
        )
        inner = [l for l in out if l.text == "inner"][0]
        assert inner.position == BODY_MARGIN + 100


class TestAttributes:
    def test_bold_attr_captured(self):
        line = lines("<p><b>bold text</b></p>")[0]
        assert any(a.bold for a in line.attrs)

    def test_mixed_attrs_in_one_line(self):
        line = lines("<p>plain <b>bold</b></p>")[0]
        styles = {a.style for a in line.attrs}
        assert styles == {"plain", "bold"}

    def test_link_color(self):
        line = lines('<p><a href="/x">link</a></p>')[0]
        assert any(a.color == "blue" and a.underline for a in line.attrs)

    def test_font_color_captured(self):
        line = lines('<p><font color="green">url text</font></p>')[0]
        assert any(a.color == "green" for a in line.attrs)


class TestDomLinks:
    def test_leaves_recorded(self):
        page = render_html("<html><body><p><a href='/x'>t</a> rest</p></body></html>")
        line = page.lines[0]
        assert len(line.leaves) == 2

    def test_line_of_node(self):
        page = render_html("<html><body><p>a</p><p>b</p></body></html>")
        second_p = page.document.body.find_all("p")[1]
        assert page.line_of_node(second_p) == 1

    def test_line_range_of_element(self):
        page = render_html(
            "<html><body><ul><li>a</li><li>b</li></ul><p>c</p></body></html>"
        )
        ul = page.document.body.find("ul")
        assert page.line_range_of_element(ul) == (0, 1)

    def test_line_range_of_empty_element(self):
        page = render_html("<html><body><div></div><p>x</p></body></html>")
        empty = page.document.body.find("div")
        assert page.line_range_of_element(empty) is None

    def test_tag_path_of_line(self):
        page = render_html("<html><body><ul><li><a href='/'>x</a></li></ul></body></html>")
        assert page.lines[0].tag_path.c_tags == ("html", "body", "ul", "li", "a")
