"""Block feature tests."""

import pytest

from repro.features.blocks import Block, partition_block
from repro.render.linetypes import LineType
from tests.helpers import render

PAGE = render(
    "<html><body>"
    "<ul><li><a href='/1'>one</a><br>snip one</li>"
    "<li><a href='/2'>two</a><br>snip two</li></ul>"
    "</body></html>"
)


class TestBlockBasics:
    def test_len(self):
        assert len(Block(PAGE, 0, 1)) == 2

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            Block(PAGE, 2, 1)

    def test_out_of_page_raises(self):
        with pytest.raises(ValueError):
            Block(PAGE, 0, 99)

    def test_equality_and_hash(self):
        assert Block(PAGE, 0, 1) == Block(PAGE, 0, 1)
        assert Block(PAGE, 0, 1) != Block(PAGE, 0, 2)
        assert len({Block(PAGE, 0, 1), Block(PAGE, 0, 1)}) == 1

    def test_lines(self):
        block = Block(PAGE, 0, 1)
        assert [l.text for l in block.lines] == ["one", "snip one"]


class TestBlockFeatures:
    def test_type_codes(self):
        block = Block(PAGE, 0, 1)
        assert block.type_codes == (LineType.LINK, LineType.TEXT)

    def test_shape_relative_to_first_line(self):
        block = Block(PAGE, 0, 1)
        assert block.shape[0] == 0

    def test_position_is_first_line_x(self):
        block = Block(PAGE, 0, 1)
        assert block.position == PAGE.lines[0].position

    def test_text_attrs_one_per_line(self):
        block = Block(PAGE, 0, 3)
        assert len(block.text_attrs) == 4

    def test_tag_forest_cached(self):
        block = Block(PAGE, 0, 1)
        assert block.tag_forest() is block.tag_forest()
        assert [t.label for t in block.tag_forest()] == ["a", "br"]

    def test_text_property(self):
        assert "one" in Block(PAGE, 0, 1).text


class TestOverlap:
    def test_overlaps(self):
        assert Block(PAGE, 0, 2).overlaps(Block(PAGE, 2, 3))
        assert not Block(PAGE, 0, 1).overlaps(Block(PAGE, 2, 3))

    def test_contains(self):
        assert Block(PAGE, 0, 3).contains(Block(PAGE, 1, 2))
        assert not Block(PAGE, 1, 2).contains(Block(PAGE, 0, 3))

    def test_overlap_size(self):
        assert Block(PAGE, 0, 2).overlap_size(Block(PAGE, 1, 3)) == 2
        assert Block(PAGE, 0, 1).overlap_size(Block(PAGE, 3, 3)) == 0


class TestPartition:
    def test_partition_at_boundaries(self):
        block = Block(PAGE, 0, 3)
        parts = partition_block(block, [2])
        assert [(p.start, p.end) for p in parts] == [(0, 1), (2, 3)]

    def test_partition_no_boundaries(self):
        block = Block(PAGE, 0, 3)
        assert partition_block(block, []) == [block]

    def test_partition_covers_block_exactly(self):
        block = Block(PAGE, 0, 3)
        parts = partition_block(block, [1, 3])
        assert parts[0].start == block.start
        assert parts[-1].end == block.end
        total = sum(len(p) for p in parts)
        assert total == len(block)

    def test_partition_outside_raises(self):
        with pytest.raises(ValueError):
            partition_block(Block(PAGE, 0, 1), [3])
