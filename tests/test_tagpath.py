"""Tag path tests: construction, Formula 1, merging, navigation."""

import pytest

from repro.htmlmod.parser import parse_html
from repro.tagpath.paths import MergedTagPath, PathStep, TagPath

MARKUP = (
    "<html><body>"
    "<table><tr><td>first</td></tr></table>"
    "<table><tr><td>a</td><td>b</td><td>c</td></tr></table>"
    "<div><p>x</p><p>y</p></div>"
    "</body></html>"
)


def doc():
    return parse_html(MARKUP)


class TestConstruction:
    def test_path_to_element(self):
        document = doc()
        td = document.body.find("td")
        path = TagPath.to_node(td)
        assert path.c_tags == ("html", "body", "table", "tr", "td")
        assert path.s_counts == (0, 0, 0, 0, 0)

    def test_s_counts_count_element_siblings_only(self):
        document = doc()
        tds = document.body.find_all("td")
        path = TagPath.to_node(tds[3])  # third td of the second table
        assert path.steps[-1] == PathStep("td", 2)
        assert path.steps[2] == PathStep("table", 1)

    def test_path_to_text_node_ends_at_parent(self):
        document = doc()
        td = document.body.find("td")
        text = td.children[0]
        assert TagPath.to_node(text) == TagPath.to_node(td)

    def test_detached_node_raises(self):
        from repro.htmlmod.dom import Text

        with pytest.raises(ValueError):
            TagPath.to_node(Text("loose"))

    def test_total_s(self):
        document = doc()
        tds = document.body.find_all("td")
        assert TagPath.to_node(tds[3]).total_s == 3  # table@1 + td@2

    def test_str_representation(self):
        document = doc()
        path = TagPath.to_node(document.body.find("td"))
        assert str(path) == "{html}@0/{body}@0/{table}@0/{tr}@0/{td}@0"


class TestCompatibilityAndDistance:
    def test_same_tags_compatible(self):
        document = doc()
        tds = document.body.find_all("td")
        assert TagPath.to_node(tds[0]).compatible(TagPath.to_node(tds[1]))

    def test_different_tags_incompatible(self):
        document = doc()
        td = TagPath.to_node(document.body.find("td"))
        p = TagPath.to_node(document.body.find("p"))
        assert not td.compatible(p)

    def test_distance_zero_for_identical(self):
        document = doc()
        path = TagPath.to_node(document.body.find("td"))
        assert path.distance(path) == 0.0

    def test_distance_formula_one(self):
        document = doc()
        tds = document.body.find_all("td")
        p0 = TagPath.to_node(tds[0])  # total_s = 0
        p3 = TagPath.to_node(tds[3])  # table@1, td@2 -> total_s = 3
        # numerator = |0-1| + |0-2| = 3; denominator = max(0, 3) = 3
        assert p0.distance(p3) == 1.0

    def test_distance_symmetric(self):
        document = doc()
        tds = document.body.find_all("td")
        p0, p1 = TagPath.to_node(tds[0]), TagPath.to_node(tds[1])
        assert p0.distance(p1) == p1.distance(p0)

    def test_distance_incompatible_raises(self):
        document = doc()
        td = TagPath.to_node(document.body.find("td"))
        p = TagPath.to_node(document.body.find("p"))
        with pytest.raises(ValueError):
            td.distance(p)

    def test_distance_degenerate_no_s_steps(self):
        path = TagPath([PathStep("html", 0), PathStep("body", 0)])
        other = TagPath([PathStep("html", 0), PathStep("body", 0)])
        assert path.distance(other) == 0.0


class TestResolve:
    def test_resolve_roundtrip(self):
        document = doc()
        for td in document.body.find_all("td"):
            path = TagPath.to_node(td)
            assert path.resolve(document.root) is td

    def test_resolve_missing_returns_none(self):
        document = doc()
        path = TagPath(
            [PathStep("html", 0), PathStep("body", 0), PathStep("table", 5)]
        )
        assert path.resolve(document.root) is None

    def test_resolve_wrong_tag_returns_none(self):
        document = doc()
        path = TagPath([PathStep("html", 0), PathStep("span", 0)])
        assert path.resolve(document.root) is None

    def test_slice(self):
        document = doc()
        path = TagPath.to_node(document.body.find("td"))
        assert path.slice(0, 2).c_tags == ("html", "body")
        assert path.slice(2).c_tags == ("table", "tr", "td")


class TestMergedTagPath:
    def test_merge_identical_paths_stays_fixed(self):
        document = doc()
        path = TagPath.to_node(document.body.find("td"))
        merged = MergedTagPath.merge([path, path])
        assert all(c is not None for c in merged.fixed_counts)

    def test_merge_divergent_level_becomes_flexible(self):
        document = doc()
        tds = document.body.find_all("td")
        merged = MergedTagPath.merge([TagPath.to_node(tds[0]), TagPath.to_node(tds[3])])
        assert merged.fixed_counts[2] is None  # table level varied
        assert merged.fixed_counts[4] is None  # td level varied
        assert merged.observed_counts[2] == {0, 1}

    def test_merge_incompatible_raises(self):
        document = doc()
        td = TagPath.to_node(document.body.find("td"))
        p = TagPath.to_node(document.body.find("p"))
        with pytest.raises(ValueError):
            MergedTagPath.merge([td, p])

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            MergedTagPath.merge([])

    def test_find_fixed(self):
        document = doc()
        td = document.body.find("td")
        merged = MergedTagPath.merge([TagPath.to_node(td)])
        assert merged.find(document.root) == [td]

    def test_find_flexible_matches_all_positions(self):
        document = doc()
        tds = document.body.find_all("td")
        merged = MergedTagPath.merge([TagPath.to_node(tds[0]), TagPath.to_node(tds[3])])
        assert merged.find(document.root) == tds  # all 4, document order

    def test_find_with_slack(self):
        document = doc()
        tds = document.body.find_all("td")
        merged = MergedTagPath.merge([TagPath.to_node(tds[1])])  # td@0 of table@1
        found = merged.find(document.root, slack=2)
        assert tds[1] in found and tds[3] in found

    def test_matches_concrete_path(self):
        document = doc()
        tds = document.body.find_all("td")
        merged = MergedTagPath.merge([TagPath.to_node(tds[0]), TagPath.to_node(tds[3])])
        assert merged.matches(TagPath.to_node(tds[1]))
        p = TagPath.to_node(document.body.find("p"))
        assert not merged.matches(p)

    def test_matches_respects_fixed_levels(self):
        document = doc()
        tds = document.body.find_all("td")
        merged = MergedTagPath.merge([TagPath.to_node(tds[0])])
        assert not merged.matches(TagPath.to_node(tds[3]))
        assert merged.matches(TagPath.to_node(tds[3]), slack=2)

    def test_find_wrong_root_tag(self):
        document = doc()
        merged = MergedTagPath.merge([TagPath.to_node(document.body.find("td"))])
        assert merged.find(document.body) == []
