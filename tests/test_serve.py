"""Compiled serving path tests (automaton, page index, parity)."""

import json
from dataclasses import asdict

import pytest

from repro.core.mse import build_wrapper
from repro.core.verify import _section_dinr_key, check_wrapper
from repro.htmlmod.parser import parse_html
from repro.perf.kernels import DINR_MEMO, clear_kernel_caches
from repro.perf.serve import (
    PageIndex,
    TagPathAutomaton,
    build_page_index,
    compile_wrapper,
    extract_many,
)
from repro.render.layout import render_page
from repro.core.wrapper import POSITION_SLACK
from repro.tagpath.paths import MergedTagPath
from tests.helpers import make_records, render, sample_pages, simple_result_page


@pytest.fixture(scope="module")
def engine():
    pages = sample_pages(
        ("apple", "banana", "cherry"), [("Web", 4), ("News", 3)]
    )
    return build_wrapper(pages)


@pytest.fixture(scope="module")
def compiled(engine):
    return compile_wrapper(engine)


def unseen_pages():
    pages = [
        (
            simple_result_page(
                query,
                [
                    ("Web", make_records("Web", count, query)),
                    ("News", make_records("News", 3, query)),
                ],
            ),
            query,
        )
        for query, count in (("durian", 6), ("elderberry", 2), ("fig", 5))
    ]
    # A page with one section legitimately absent, and a drifted layout.
    pages.append(
        (
            simple_result_page(
                "grape", [("Web", make_records("Web", 4, "grape"))]
            ),
            "grape",
        )
    )
    pages.append(
        (
            "<html><body><table><tr><td>totally different "
            "layout</td></tr></table></body></html>",
            "kiwi",
        )
    )
    return pages


def extraction_doc(extraction):
    return json.dumps(asdict(extraction), sort_keys=True)


# -- the merged tagpath automaton -------------------------------------------


class TestAutomaton:
    def test_matches_find_with_slack(self, engine):
        """One automaton run == per-pref find_with_slack, element-wise."""
        automaton = TagPathAutomaton()
        prefs = [w.pref for w in engine.wrappers]
        entries = [automaton.add(pref, POSITION_SLACK) for pref in prefs]
        for markup, _query in unseen_pages():
            root = parse_html(markup).root
            located = automaton.run(root)
            for pref, entry in zip(prefs, entries):
                exact, slacked = pref.find_with_slack(root, POSITION_SLACK)
                got_exact, got_slacked = located[entry]
                assert got_exact == exact
                assert got_slacked == slacked

    def test_matches_plain_find(self, engine):
        automaton = TagPathAutomaton()
        prefs = [w.pref for w in engine.wrappers]
        entries = [automaton.add(pref, 0) for pref in prefs]
        for markup, _query in unseen_pages():
            root = parse_html(markup).root
            located = automaton.run(root)
            for pref, entry in zip(prefs, entries):
                assert located[entry][0] == pref.find(root, 0)

    def test_unmatched_root_yields_empty(self):
        automaton = TagPathAutomaton()
        entry = automaton.add(
            MergedTagPath(("xyzzy",), (None,), ({0},)), 0
        )
        root = parse_html("<html><body><p>x</p></body></html>").root
        assert automaton.run(root)[entry] == ([], [])

    def test_len_counts_entries(self, engine):
        automaton = TagPathAutomaton()
        for wrapper in engine.wrappers:
            automaton.add(wrapper.pref, 1)
        assert len(automaton) == len(engine.wrappers)


# -- the shared page index --------------------------------------------------


class TestPageIndex:
    def page(self):
        markup, _ = unseen_pages()[0]
        return render(markup)

    def test_span_of_matches_line_range(self):
        from repro.htmlmod.dom import Element

        page = self.page()
        index = PageIndex(page)
        for node in page.document.root.iter():
            if isinstance(node, Element):
                assert index.span_of(node) == page.line_range_of_element(node)

    def test_span_of_cached(self):
        page = self.page()
        index = PageIndex(page)
        element = page.document.root
        assert index.span_of(element) is index.span_of(element)

    def test_first_occurrence_matches_linear_scan(self):
        page = self.page()
        index = PageIndex(page)
        keys = [line.cleaned or line.text.lower() for line in page.lines]
        distinct = sorted(set(keys))
        probes = [
            tuple(distinct[:3]),
            tuple(distinct[-2:]),
            ("not-on-the-page",),
            tuple(distinct[::4]),
        ]
        spans = [(0, len(page.lines) - 1), (2, 5), (5, 2), (3, 3)]
        for texts in probes:
            ids = tuple(index.key_ids[keys.index(t)] if t in keys else -1
                        for t in texts)
            for lo, hi in spans:
                reference = next(
                    (
                        number
                        for number in range(lo, hi + 1)
                        if keys[number] in texts
                    ),
                    None,
                )
                assert index.first_occurrence(ids, lo, hi) == reference

    def test_attr_mask_matches_interner(self):
        from repro.perf.fingerprints import ATTR_INTERNER

        page = self.page()
        index = PageIndex(page)
        for line in page.lines:
            assert index.attr_mask(line.number) == ATTR_INTERNER.mask(
                line.attrs
            )


# -- compiled == interpreted parity -----------------------------------------


class TestCompiledParity:
    def test_extract_identical_on_unseen_pages(self, engine, compiled):
        for markup, query in unseen_pages():
            reference = engine.extract(markup, query)
            fast = compiled.extract(markup, query)
            assert extraction_doc(fast) == extraction_doc(reference)

    def test_serve_health_identical_to_check_wrapper(self, engine, compiled):
        for markup, query in unseen_pages():
            reference = check_wrapper(engine, markup, query)
            served = compiled.serve(markup, query)
            assert json.dumps(
                served.health.to_obj(), sort_keys=True
            ) == json.dumps(reference.to_obj(), sort_keys=True)

    def test_parity_on_evolved_pages(self, engine, compiled):
        """Parity holds as the engine's markup drifts (S4).

        Each mutation models one template evolution: extra chrome before
        the sections, a wrapper div pushing every path one level deeper,
        reordered sections, and records stripped down mid-page.
        """
        base, query = unseen_pages()[0]
        mutations = [
            base.replace(
                "<body>", "<body><div id='banner'><span>Ad</span></div>", 1
            ),
            base.replace("<body>", "<body><div class='wrap'>", 1).replace(
                "</body>", "</div></body>", 1
            ),
            base.replace("<h2>Web</h2>", "<h2>Shopping</h2>", 1),
            base.replace("<ul>", "<ul><li>sponsored filler</li>", 1),
            base.replace("<br>", " - ", 20),
        ]
        for markup in mutations:
            reference = engine.extract(markup, query)
            fast = compiled.extract(markup, query)
            assert extraction_doc(fast) == extraction_doc(reference)
            reference_health = check_wrapper(engine, markup, query)
            served = compiled.serve(markup, query)
            assert json.dumps(
                served.health.to_obj(), sort_keys=True
            ) == json.dumps(reference_health.to_obj(), sort_keys=True)

    def test_serve_index_reuses_one_render(self, engine, compiled):
        markup, query = unseen_pages()[0]
        index = build_page_index(markup, query)
        served = compiled.serve_index(index)
        assert extraction_doc(served.extraction) == extraction_doc(
            engine.extract(markup, query)
        )


# -- batch serving -----------------------------------------------------------


class TestExtractMany:
    def test_jobs_match_serial(self, engine, compiled):
        pages = unseen_pages()
        serial = extract_many(pages, [compiled], jobs=1)
        fanned = extract_many(pages, [engine], jobs=2)
        assert [
            [extraction_doc(e) for e in per_page] for per_page in serial
        ] == [[extraction_doc(e) for e in per_page] for per_page in fanned]

    def test_wrapper_of_restricts_pages(self, engine, compiled):
        pages = unseen_pages()[:2]
        results = extract_many(pages, [compiled, compiled], wrapper_of=[1, 0])
        assert all(len(per_page) == 1 for per_page in results)

    def test_wrapper_of_length_mismatch(self, compiled):
        with pytest.raises(ValueError):
            extract_many(unseen_pages()[:2], [compiled], wrapper_of=[0])


# -- interner generation guards ---------------------------------------------


class TestGenerationGuards:
    def test_stale_index_rejected(self, compiled):
        markup, query = unseen_pages()[0]
        index = build_page_index(markup, query)
        clear_kernel_caches()
        with pytest.raises(ValueError, match="stale PageIndex"):
            compiled.extract_index(index)

    def test_compiled_wrapper_self_heals_after_clear(self, engine, compiled):
        markup, query = unseen_pages()[0]
        before = extraction_doc(compiled.extract(markup, query))
        clear_kernel_caches()
        after = extraction_doc(compiled.extract(markup, query))
        assert before == after
        assert extraction_doc(engine.extract(markup, query)) == after


# -- the section-homogeneity memo key ---------------------------------------


class TestSectionDinrKey:
    def served_instances(self, engine, compiled):
        markup, query = unseen_pages()[0]
        index = build_page_index(markup, query)
        apps = compiled.apply_to_index(index)
        return [i for i in apps.wrapper_instances if i is not None]

    def test_key_is_page_independent(self, engine, compiled):
        """The same section line-up on two renders keys identically.

        The key must not capture object identities: serving re-renders
        every page, so a key that varied across renders would never hit.
        """
        markup, query = unseen_pages()[0]
        keys = []
        for _ in range(2):
            index = build_page_index(markup, query)
            apps = compiled.apply_to_index(index)
            keys.append(
                tuple(
                    _section_dinr_key(engine.config, instance)
                    for instance in apps.wrapper_instances
                    if instance is not None and len(instance.records) >= 2
                )
            )
        assert keys[0] == keys[1]
        assert keys[0]  # the fixture pages do have multi-record sections

    def test_distinct_sections_key_differently(self, engine, compiled):
        instances = self.served_instances(engine, compiled)
        keys = [
            _section_dinr_key(engine.config, instance)
            for instance in instances
        ]
        assert len(set(keys)) == len(keys)

    def test_memo_hit_returns_exact_dinr(self, engine):
        """A DINR_MEMO hit equals the freshly computed homogeneity."""
        compiled = compile_wrapper(engine)
        markup, query = unseen_pages()[0]
        clear_kernel_caches()
        cold = compiled.serve(markup, query).health
        hits_before = DINR_MEMO.hits
        warm = compiled.serve(markup, query).health
        assert DINR_MEMO.hits > hits_before
        assert json.dumps(warm.to_obj(), sort_keys=True) == json.dumps(
            cold.to_obj(), sort_keys=True
        )


# -- monitor integration ------------------------------------------------------


class TestMonitorServing:
    def test_serve_page_matches_interpreted_pair(self, engine):
        from repro.monitor import WrapperMonitor

        monitor = WrapperMonitor(engine)
        markup, query = unseen_pages()[0]
        served = monitor.serve_page(markup, query)
        assert extraction_doc(served.extraction) == extraction_doc(
            engine.extract(markup, query)
        )
        assert json.dumps(
            served.health.to_obj(), sort_keys=True
        ) == json.dumps(
            check_wrapper(engine, markup, query).to_obj(), sort_keys=True
        )
