"""CLI tests (python -m repro ...)."""

import json

import pytest

from repro.cli import _split_page_arg, main
from repro.obs import read_jsonl
from repro.testbed import load_engine_pages


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    engine_pages = load_engine_pages(85)
    sample_args = []
    for i, (markup, query) in enumerate(engine_pages.sample_set):
        path = root / f"sample{i}.html"
        path.write_text(markup, encoding="utf-8")
        sample_args.append(f"{path}:{query}")
    new_markup, new_query = engine_pages.test_set[0]
    new_page = root / "new.html"
    new_page.write_text(new_markup, encoding="utf-8")
    wrapper_path = root / "wrapper.json"
    return {
        "samples": sample_args,
        "new_page": str(new_page),
        "new_query": new_query,
        "wrapper": str(wrapper_path),
    }


class TestInduce:
    def test_induce_writes_wrapper(self, workspace, capsys):
        code = main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        assert code == 0
        out = capsys.readouterr().out
        assert "section schema" in out
        assert json.loads(open(workspace["wrapper"]).read())["format"] == (
            "repro-mse-wrapper"
        )

    def test_induce_needs_two_pages(self, workspace, tmp_path):
        out = tmp_path / "w.json"
        code = main(["induce", "-o", str(out), workspace["samples"][0]])
        assert code == 2


class TestExtract:
    def test_extract_text_output(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(
            [
                "extract",
                "-w",
                workspace["wrapper"],
                workspace["new_page"],
                "--query",
                workspace["new_query"],
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "record(s)" in out

    def test_extract_json_output(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(
            [
                "extract",
                "--json",
                "-w",
                workspace["wrapper"],
                workspace["new_page"],
                "--query",
                workspace["new_query"],
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert len(payload) == 1
        entry = payload[0]
        assert entry["page"] == workspace["new_page"]
        assert entry["query"] == workspace["new_query"]
        assert entry["seconds"] >= 0.0
        assert entry["sections"] and entry["sections"][0]["records"]
        assert "fields" in entry["sections"][0]["records"][0]

    def test_extract_multiple_pages(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        # Inline :query suffixes, as in induce/monitor page arguments.
        code = main(
            [
                "extract",
                "--json",
                "-w",
                workspace["wrapper"],
                f"{workspace['new_page']}:{workspace['new_query']}",
                workspace["samples"][0],
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert payload[0]["query"] == workspace["new_query"]
        assert all("seconds" in entry for entry in payload)
        assert all(entry["sections"] for entry in payload)

    def test_extract_jobs_matches_serial(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        page_args = [
            f"{workspace['new_page']}:{workspace['new_query']}",
            *workspace["samples"][:2],
        ]
        assert main(
            ["extract", "--json", "-w", workspace["wrapper"], *page_args]
        ) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(
            ["extract", "--json", "-w", workspace["wrapper"],
             "--jobs", "2", "--chunksize", "1", *page_args]
        ) == 0
        pooled = json.loads(capsys.readouterr().out)
        strip = lambda payload: [
            {k: entry[k] for k in ("page", "query", "sections")}
            for entry in payload
        ]
        assert strip(serial) == strip(pooled)
        # batch mode has no per-page wall-clock timing
        assert all("seconds" not in entry for entry in pooled)

    def test_extract_multiple_pages_text_headers(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(
            [
                "extract",
                "-w",
                workspace["wrapper"],
                f"{workspace['new_page']}:{workspace['new_query']}",
                workspace["samples"][0],
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("== ") == 2
        assert "record(s)" in out


class TestServe:
    def test_serve_reports_throughput(self, workspace, tmp_path, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        report = tmp_path / "serve.json"
        code = main(
            [
                "serve",
                "-w",
                workspace["wrapper"],
                "--json",
                str(report),
                f"{workspace['new_page']}:{workspace['new_query']}",
                workspace["samples"][0],
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pages/sec" in out and "p99" in out
        doc = json.loads(report.read_text())
        assert doc["format"] == "repro-serve-report"
        assert len(doc["pages"]) == 2
        assert doc["pages_per_sec"] > 0
        assert doc["latency"]["p50_ms"] >= 0.0
        assert all(entry["records"] > 0 for entry in doc["pages"])

    def test_serve_pages_flag_and_jobs_match_serial(
        self, workspace, tmp_path, capsys
    ):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        serial = tmp_path / "serial.json"
        jobs = tmp_path / "jobs.json"
        page_args = [
            f"{workspace['new_page']}:{workspace['new_query']}",
            *workspace["samples"][:2],
        ]
        assert main(
            ["serve", "-w", workspace["wrapper"], "--json", str(serial),
             "--pages", *page_args]
        ) == 0
        assert main(
            ["serve", "-w", workspace["wrapper"], "--json", str(jobs),
             "--jobs", "2", "--pages", *page_args]
        ) == 0
        capsys.readouterr()
        a = json.loads(serial.read_text())
        b = json.loads(jobs.read_text())
        strip = lambda doc: [
            {k: entry[k] for k in ("page", "sections", "records")}
            for entry in doc["pages"]
        ]
        assert strip(a) == strip(b)
        # the pooled report documents the warm pool it ran on
        assert b["pool"]["workers"] == 2
        assert b["pool"]["restarts"] == 0
        assert b["pool"]["chunksize"] >= 1
        assert "pool" not in a

    def test_serve_chunksize_flag_matches_serial(
        self, workspace, tmp_path, capsys
    ):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        serial = tmp_path / "serial2.json"
        chunked = tmp_path / "chunked.json"
        page_args = [
            f"{workspace['new_page']}:{workspace['new_query']}",
            *workspace["samples"][:3],
        ]
        assert main(
            ["serve", "-w", workspace["wrapper"], "--json", str(serial),
             "--pages", *page_args]
        ) == 0
        assert main(
            ["serve", "-w", workspace["wrapper"], "--json", str(chunked),
             "--jobs", "2", "--chunksize", "1", "--pages", *page_args]
        ) == 0
        capsys.readouterr()
        a = json.loads(serial.read_text())
        b = json.loads(chunked.read_text())
        strip = lambda doc: [
            {k: entry[k] for k in ("page", "sections", "records")}
            for entry in doc["pages"]
        ]
        assert strip(a) == strip(b)
        assert b["pool"]["chunksize"] == 1

    def test_serve_without_pages_fails(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(["serve", "-w", workspace["wrapper"]])
        assert code == 2
        assert "need at least one page" in capsys.readouterr().err


class TestCheck:
    def test_check_ok(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(
            [
                "check",
                "-w",
                workspace["wrapper"],
                workspace["new_page"],
                "--query",
                workspace["new_query"],
            ]
        )
        out = capsys.readouterr().out
        assert "health score" in out
        assert code in (0, 1)

    def test_check_drifted(self, workspace, tmp_path, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        weird = tmp_path / "weird.html"
        weird.write_text("<html><body><p>redesign</p></body></html>")
        capsys.readouterr()
        code = main(["check", "-w", workspace["wrapper"], str(weird)])
        assert code == 1
        assert "DRIFTED" in capsys.readouterr().out


class TestDemoAndEval:
    def test_demo(self, capsys):
        code = main(["demo", "--engine-id", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "induced" in out and "extraction" in out

    def test_demo_reports_actual_sample_count(self, capsys):
        engine_pages = load_engine_pages(3)
        main(["demo", "--engine-id", "3"])
        out = capsys.readouterr().out
        assert f"from {len(engine_pages.sample_set)} sample pages" in out

    def test_eval_limited(self, capsys):
        code = main(["eval", "--table", "1", "--limit", "2"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out


class TestMissingPageFiles:
    """A missing/unreadable page file exits 2 with one stderr line."""

    def _assert_clean_failure(self, code, captured):
        assert code == 2
        lines = [line for line in captured.err.splitlines() if line]
        assert len(lines) == 1
        assert "cannot read page file" in lines[0]
        assert "Traceback" not in captured.err

    def test_induce_missing_page(self, workspace, tmp_path, capsys):
        out = tmp_path / "w.json"
        code = main(
            ["induce", "-o", str(out), workspace["samples"][0], "missing.html:q"]
        )
        self._assert_clean_failure(code, capsys.readouterr())
        assert not out.exists()

    def test_extract_missing_page(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(["extract", "-w", workspace["wrapper"], "missing.html"])
        self._assert_clean_failure(code, capsys.readouterr())

    def test_check_missing_page(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(["check", "-w", workspace["wrapper"], "missing.html"])
        self._assert_clean_failure(code, capsys.readouterr())

    def test_induce_unreadable_page(self, workspace, tmp_path, capsys):
        bad = tmp_path / "binary.html"
        bad.write_bytes(b"\xff\xfe\x00\x80garbage")
        out = tmp_path / "w.json"
        code = main(
            ["induce", "-o", str(out), workspace["samples"][0], f"{bad}:q"]
        )
        self._assert_clean_failure(code, capsys.readouterr())


class TestInducePipelineFlags:
    def test_jobs_and_checkpoint_resume_are_byte_identical(
        self, workspace, tmp_path, capsys
    ):
        serial = tmp_path / "serial.json"
        assert main(["induce", "-o", str(serial), *workspace["samples"]]) == 0

        jobs2 = tmp_path / "jobs2.json"
        assert main(
            ["induce", "--jobs", "2", "-o", str(jobs2), *workspace["samples"]]
        ) == 0

        ck = tmp_path / "ckpt"
        first = tmp_path / "ck.json"
        assert main(
            ["induce", "--checkpoint-dir", str(ck), "-o", str(first),
             *workspace["samples"]]
        ) == 0
        (ck / "stage-wrapper.json").unlink()
        resumed = tmp_path / "resumed.json"
        assert main(
            ["induce", "--checkpoint-dir", str(ck), "--resume",
             "-o", str(resumed), *workspace["samples"]]
        ) == 0

        reference = serial.read_text()
        assert jobs2.read_text() == reference
        assert first.read_text() == reference
        assert resumed.read_text() == reference

    def test_resume_requires_checkpoint_dir(self, workspace, tmp_path, capsys):
        out = tmp_path / "w.json"
        code = main(["induce", "--resume", "-o", str(out), *workspace["samples"]])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err


class TestSplitPageArg:
    def test_plain_path(self):
        assert _split_page_arg("page.html") == ("page.html", "")

    def test_path_with_query(self):
        assert _split_page_arg("page.html:lunar eclipse") == (
            "page.html",
            "lunar eclipse",
        )

    def test_query_containing_colons(self):
        assert _split_page_arg("p.html:a:b:c") == ("p.html", "a:b:c")

    def test_windows_drive_letter(self):
        assert _split_page_arg(r"C:\pages\p.html:query") == (
            r"C:\pages\p.html",
            "query",
        )
        assert _split_page_arg(r"C:\pages\p.html") == (r"C:\pages\p.html", "")

    def test_directory_with_colon_in_name(self):
        # Only the suffix after the *last* ``.html:`` is the query, so a
        # path component that itself ends in ``.html:`` stays in the path.
        assert _split_page_arg("snap.html:v2/page.html:deep query") == (
            "snap.html:v2/page.html",
            "deep query",
        )

    def test_htm_extension(self):
        assert _split_page_arg("page.htm:old style") == ("page.htm", "old style")

    def test_case_insensitive_extension(self):
        assert _split_page_arg("PAGE.HTML:query") == ("PAGE.HTML", "query")

    def test_no_extension_colon_is_path(self):
        assert _split_page_arg("archive:page") == ("archive:page", "")


PIPELINE_STAGES = (
    "render", "mre", "dse", "refine", "mine",
    "granularity", "grouping", "wrapper", "families",
)


class TestTraceFlags:
    def test_induce_trace_writes_valid_jsonl(self, workspace, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "induce",
                "--trace",
                str(trace),
                "-o",
                workspace["wrapper"],
                *workspace["samples"],
            ]
        )
        assert code == 0
        capsys.readouterr()

        # Every line is standalone JSON.
        lines = trace.read_text(encoding="utf-8").strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records

        doc = read_jsonl(str(trace))
        assert doc["format"] == "repro-obs-trace"
        top_level = [
            span for span in doc["spans"] if "/" not in span["path"]
        ]
        names = [span["name"] for span in top_level]
        assert sorted(names) == sorted(PIPELINE_STAGES)
        for span in top_level:
            assert span["calls"] == 1
            assert span["seconds"] >= 0.0
        # Stage counters and the cache hit-rate gauge made it to disk.
        by_name = {span["name"]: span for span in top_level}
        assert by_name["render"]["counters"]["render.pages"] == 5
        assert "record_distance_cache.hit_rate" in doc["metrics"]["gauges"]

    def test_induce_stats_prints_report(self, workspace, capsys):
        code = main(
            ["induce", "--stats", "-o", workspace["wrapper"], *workspace["samples"]]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "induce trace" in err
        for stage in PIPELINE_STAGES:
            assert stage in err

    def test_extract_trace(self, workspace, tmp_path, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        trace = tmp_path / "extract.jsonl"
        code = main(
            [
                "extract",
                "--trace",
                str(trace),
                "-w",
                workspace["wrapper"],
                workspace["new_page"],
                "--query",
                workspace["new_query"],
            ]
        )
        assert code == 0
        doc = read_jsonl(str(trace))
        names = {span["name"] for span in doc["spans"]}
        assert {"render", "families", "wrappers"} <= names

    def test_check_stats_metrics_breakdown(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(
            [
                "check",
                "--stats",
                "-w",
                workspace["wrapper"],
                workspace["new_page"],
                "--query",
                workspace["new_query"],
            ]
        )
        assert code in (0, 1)
        captured = capsys.readouterr()
        assert "checks:" in captured.out
        metrics_line = next(
            line for line in captured.err.splitlines()
            if line.startswith("metrics: ")
        )
        metrics = json.loads(metrics_line[len("metrics: "):])
        for key in (
            "score", "sections", "found_rate", "healthy_rate",
            "homogeneous_rate", "count_plausible_rate", "marker_hit_rate",
        ):
            assert key in metrics

    def test_eval_trace_and_stats(self, tmp_path, capsys):
        trace = tmp_path / "eval.jsonl"
        code = main(
            [
                "eval", "--table", "1", "--limit", "2",
                "--trace", str(trace), "--stats",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "eval trace" in err
        doc = read_jsonl(str(trace))
        names = {span["name"] for span in doc["spans"]}
        assert set(PIPELINE_STAGES) <= names
        assert doc["metrics"]["gauges"]["eval.engines"] == 2
