"""CLI tests (python -m repro ...)."""

import json

import pytest

from repro.cli import main
from repro.testbed import load_engine_pages


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    engine_pages = load_engine_pages(85)
    sample_args = []
    for i, (markup, query) in enumerate(engine_pages.sample_set):
        path = root / f"sample{i}.html"
        path.write_text(markup, encoding="utf-8")
        sample_args.append(f"{path}:{query}")
    new_markup, new_query = engine_pages.test_set[0]
    new_page = root / "new.html"
    new_page.write_text(new_markup, encoding="utf-8")
    wrapper_path = root / "wrapper.json"
    return {
        "samples": sample_args,
        "new_page": str(new_page),
        "new_query": new_query,
        "wrapper": str(wrapper_path),
    }


class TestInduce:
    def test_induce_writes_wrapper(self, workspace, capsys):
        code = main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        assert code == 0
        out = capsys.readouterr().out
        assert "section schema" in out
        assert json.loads(open(workspace["wrapper"]).read())["format"] == (
            "repro-mse-wrapper"
        )

    def test_induce_needs_two_pages(self, workspace, tmp_path):
        out = tmp_path / "w.json"
        code = main(["induce", "-o", str(out), workspace["samples"][0]])
        assert code == 2


class TestExtract:
    def test_extract_text_output(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(
            [
                "extract",
                "-w",
                workspace["wrapper"],
                workspace["new_page"],
                "--query",
                workspace["new_query"],
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "record(s)" in out

    def test_extract_json_output(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(
            [
                "extract",
                "--json",
                "-w",
                workspace["wrapper"],
                workspace["new_page"],
                "--query",
                workspace["new_query"],
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert payload and payload[0]["records"]
        assert "fields" in payload[0]["records"][0]


class TestCheck:
    def test_check_ok(self, workspace, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        capsys.readouterr()
        code = main(
            [
                "check",
                "-w",
                workspace["wrapper"],
                workspace["new_page"],
                "--query",
                workspace["new_query"],
            ]
        )
        out = capsys.readouterr().out
        assert "health score" in out
        assert code in (0, 1)

    def test_check_drifted(self, workspace, tmp_path, capsys):
        main(["induce", "-o", workspace["wrapper"], *workspace["samples"]])
        weird = tmp_path / "weird.html"
        weird.write_text("<html><body><p>redesign</p></body></html>")
        capsys.readouterr()
        code = main(["check", "-w", workspace["wrapper"], str(weird)])
        assert code == 1
        assert "DRIFTED" in capsys.readouterr().out


class TestDemoAndEval:
    def test_demo(self, capsys):
        code = main(["demo", "--engine-id", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "induced" in out and "extraction" in out

    def test_eval_limited(self, capsys):
        code = main(["eval", "--table", "1", "--limit", "2"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out
