"""End-to-end MSE tests: induction + extraction scenarios."""

import pytest

from repro.core.model import PageExtraction
from repro.core.mse import MSE, MSEConfig, build_wrapper
from tests.helpers import make_records, sample_pages, simple_result_page


def induce(plan, queries=("apple", "banana", "cherry")):
    return build_wrapper(sample_pages(queries, plan))


class TestInduction:
    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            build_wrapper([("<html><body></body></html>", "q")])

    def test_single_section_engine(self):
        engine = induce([("Web", 4)])
        assert len(engine.wrappers) >= 1

    def test_multi_section_engine(self):
        engine = induce([("Web", 4), ("News", 3), ("Images", 2)])
        lbms = {t for w in engine.wrappers for t in w.lbm_texts}
        assert {"web", "news", "images"} <= lbms

    def test_accepts_bare_html_strings(self):
        pages = [html for html, _ in sample_pages(("apple", "banana"), [("Web", 4)])]
        engine = build_wrapper(pages)
        assert engine.wrappers


class TestExtraction:
    def test_extraction_on_training_page(self):
        pages = sample_pages(("apple", "banana", "cherry"), [("Web", 4)])
        engine = build_wrapper(pages)
        extraction = engine.extract(*pages[0])
        assert isinstance(extraction, PageExtraction)
        assert len(extraction) == 1
        assert len(extraction.sections[0]) == 4

    def test_extraction_on_unseen_page_with_different_count(self):
        engine = induce([("Web", 4)])
        html = simple_result_page("durian", [("Web", make_records("Web", 7, "durian"))])
        extraction = engine.extract(html, "durian")
        assert extraction.record_count == 7

    def test_single_record_section_extracted(self):
        # the record-count strength of the method: even one record works
        engine = induce([("Web", 5), ("News", 2)], ("apple", "banana", "cherry"))
        html = simple_result_page(
            "durian",
            [
                ("Web", make_records("Web", 4, "durian")),
                ("News", make_records("News", 1, "durian")),
            ],
        )
        extraction = engine.extract(html, "durian")
        news = [s for s in extraction.sections if s.lbm_text == "News"]
        assert news and len(news[0]) == 1

    def test_absent_section_not_extracted(self):
        engine = induce([("Web", 4), ("News", 3)])
        html = simple_result_page("durian", [("Web", make_records("Web", 4, "durian"))])
        extraction = engine.extract(html, "durian")
        assert all(s.lbm_text != "News" for s in extraction.sections)

    def test_section_record_relationship_kept(self):
        engine = induce([("Web", 3), ("News", 3)])
        html = simple_result_page(
            "durian",
            [
                ("Web", make_records("Web", 2, "durian")),
                ("News", make_records("News", 5, "durian")),
            ],
        )
        extraction = engine.extract(html, "durian")
        counts = sorted(len(s) for s in extraction.sections)
        assert counts == [2, 5]
        assert extraction.record_count == 7

    def test_record_text_content(self):
        engine = induce([("Web", 4)])
        html = simple_result_page("durian", [("Web", make_records("Web", 3, "durian"))])
        extraction = engine.extract(html, "durian")
        first = extraction.sections[0].records[0]
        assert "result 0" in first.text
        assert first.lines  # per-line texts available

    def test_no_sections_on_empty_page(self):
        engine = induce([("Web", 4)])
        extraction = engine.extract("<html><body><p>maintenance</p></body></html>")
        assert len(extraction) == 0

    def test_all_records_flattened(self):
        engine = induce([("Web", 3)])
        html = simple_result_page("durian", [("Web", make_records("Web", 3, "durian"))])
        extraction = engine.extract(html, "durian")
        assert len(extraction.all_records()) == extraction.record_count


class TestConfigSwitches:
    PAGES = sample_pages(("apple", "banana", "cherry"), [("Web", 5)])

    def test_no_refinement_mode_runs(self):
        engine = build_wrapper(self.PAGES, MSEConfig(use_refinement=False))
        extraction = engine.extract(*self.PAGES[0])
        assert extraction.record_count >= 3

    def test_no_granularity_mode_runs(self):
        engine = build_wrapper(self.PAGES, MSEConfig(use_granularity=False))
        assert engine.extract(*self.PAGES[0]).record_count >= 3

    def test_per_child_mining_mode_runs(self):
        engine = build_wrapper(self.PAGES, MSEConfig(mining_strategy="per-child"))
        assert engine.wrappers is not None

    def test_full_default_config(self):
        config = MSEConfig()
        assert config.use_families and config.use_refinement and config.use_granularity
        assert config.mining_strategy == "cohesion"


class TestAblationCounts:
    """Pin the ablation branches' section/record counts.

    ``use_refinement=False`` takes the mre-raw bypass (trust raw MRs,
    pending = DSs with no MR overlap); ``mining_strategy="per-child"``
    swaps Formula-7 cohesion for the finest tag partition in the mine
    stage.  Both paths were previously untested beyond "runs".
    """

    TWO_SECTIONS = sample_pages(
        ("apple", "banana", "cherry"), [("Web", 5), ("News", 2)]
    )

    def test_no_refinement_sections_are_raw_mrs(self):
        mse = MSE(MSEConfig(use_refinement=False))
        per_page = mse.analyze_pages(mse._prepare(self.TWO_SECTIONS))
        # Raw MRE merges the adjacent Web and News runs into one 7-record
        # MR on every page; nothing is left pending for the miner.
        assert [
            [(s.origin, len(s.records)) for s in page] for page in per_page
        ] == [[("mre-raw", 7)]] * 3

    def test_no_refinement_collapses_sections_into_one_wrapper(self):
        engine = build_wrapper(
            self.TWO_SECTIONS, MSEConfig(use_refinement=False)
        )
        assert len(engine.wrappers) == 1
        assert engine.wrappers[0].typical_records == 7

    def test_refinement_splits_what_raw_mre_merges(self):
        # The control: with refinement on, the same pages yield the two
        # true sections — the §5.3 behaviour the ablation removes.
        engine = build_wrapper(self.TWO_SECTIONS, MSEConfig())
        assert sorted(w.typical_records for w in engine.wrappers) == [2, 5]
        extraction = engine.extract(*self.TWO_SECTIONS[0])
        assert len(extraction) == 2
        assert extraction.record_count == 7

    def test_per_child_matches_cohesion_when_nothing_pending(self):
        # Refinement leaves no pending DS on this corpus, so the mining
        # strategy never fires and both configs pin to the same counts.
        mse = MSE(MSEConfig(mining_strategy="per-child"))
        per_page = mse.analyze_pages(mse._prepare(self.TWO_SECTIONS))
        assert [
            [(s.origin, len(s.records)) for s in page] for page in per_page
        ] == [[("refine", 5), ("refine", 2)]] * 3
        engine = build_wrapper(
            self.TWO_SECTIONS, MSEConfig(mining_strategy="per-child")
        )
        assert sorted(w.typical_records for w in engine.wrappers) == [2, 5]

    def test_mine_stage_dispatches_by_strategy(self):
        # Drive the mine stage directly with a pending single-record DS:
        # cohesion keeps it whole, per-child fragments it.
        from repro.core.dse import DynamicSection
        from repro.pipeline import InductionContext, MineStage
        from tests.helpers import render

        page = render(
            "<html><body><div>"
            "<a href='/1'>only title here</a><br>the single snippet<br>"
            "<font color='green'>http://example.com/x</font>"
            "</div></body></html>"
        )
        counts = {}
        for strategy in ("cohesion", "per-child"):
            ctx = InductionContext.from_pages(
                [page], ["q"], MSEConfig(mining_strategy=strategy)
            )
            ctx.artifacts["refined"] = [[]]
            ctx.artifacts["pending"] = [[DynamicSection(page, 0, 2)]]
            mined = MineStage().run_page(ctx, 0)["mined"]
            assert [s.origin for s in mined] == ["mined"]
            counts[strategy] = [len(s.records) for s in mined]
        assert counts == {"cohesion": [1], "per-child": [2]}


class TestDifferentLayouts:
    WORDS = [
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
        "hotel", "india", "juliet", "kilo", "lima",
    ]

    def words(self, query, n):
        # Words vary with the query (as real result content does); without
        # this, cleaned titles would be identical on every page and DSE
        # would correctly classify them as template text.
        salt = sum(ord(c) for c in query)
        return [self.WORDS[(salt + 2 * i) % len(self.WORDS)] for i in range(n)]

    def test_table_layout_engine(self):
        def page(query, n):
            rows = "".join(
                f"<tr><td><a href='/{i}'>{w} {query} title {i}</a></td>"
                f"<td>cell snippet {w} body</td></tr>"
                for i, w in enumerate(self.words(query, n))
            )
            return (
                f"<html><body><h1>Engine</h1><p>Results for {query}</p>"
                f"<h2>Found</h2><table><tbody>{rows}</tbody></table>"
                f"<p>Copyright</p></body></html>"
            )

        engine = build_wrapper(
            [(page("apple", 4), "apple"), (page("banana", 5), "banana"),
             (page("cherry", 4), "cherry")]
        )
        extraction = engine.extract(page("durian", 3), "durian")
        assert extraction.record_count == 3

    def test_flat_br_layout_engine(self):
        def page(query, n):
            body = "".join(
                f"<a href='/{i}'>{w} {query} title</a><br>flat snippet {w}<br>"
                for i, w in enumerate(self.words(query, n))
            )
            return (
                f"<html><body><h1>Engine</h1><h2>Results</h2>"
                f"<div>{body}</div><p>Copyright</p></body></html>"
            )

        engine = build_wrapper(
            [(page("apple", 4), "apple"), (page("banana", 5), "banana"),
             (page("cherry", 4), "cherry")]
        )
        extraction = engine.extract(page("durian", 3), "durian")
        assert extraction.record_count == 3
