"""Cross-module property-based tests (hypothesis) on pipeline invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.mining import mine_records
from repro.features.blocks import Block
from repro.features.cohesion import (
    inter_record_distance,
    record_diversity,
    section_cohesion,
)
from repro.features.record_distance import record_distance
from repro.htmlmod.dom import Text
from repro.htmlmod.parser import parse_html
from repro.render.layout import render_page
from repro.tagpath.paths import MergedTagPath, TagPath

WORDS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]


@st.composite
def list_page(draw):
    """A random ul-li result section; returns (page, true record spans)."""
    n = draw(st.integers(min_value=1, max_value=6))
    with_snippet = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    items = []
    spans = []
    line = 0
    for i in range(n):
        word = WORDS[i % len(WORDS)]
        body = f"<li><a href='/{i}'>{word} title {i}</a>"
        length = 1
        if with_snippet[i]:
            body += f"<br>some snippet text about {word} here"
            length = 2
        body += "</li>"
        items.append(body)
        spans.append((line, line + length - 1))
        line += length
    markup = f"<html><body><ul>{''.join(items)}</ul></body></html>"
    return render_page(parse_html(markup)), spans


class TestRendererInvariants:
    @settings(max_examples=30, deadline=None)
    @given(list_page())
    def test_every_text_leaf_in_exactly_one_line(self, data):
        page, _ = data
        seen = {}
        for content_line in page.lines:
            for leaf in content_line.leaves:
                assert id(leaf) not in seen, "leaf rendered twice"
                seen[id(leaf)] = content_line.number
        for text in page.document.body.iter_texts():
            if text.data.strip():
                assert id(text) in seen, f"text leaf lost: {text.data!r}"

    @settings(max_examples=30, deadline=None)
    @given(list_page())
    def test_line_numbers_are_dense(self, data):
        page, _ = data
        assert [l.number for l in page.lines] == list(range(len(page.lines)))

    @settings(max_examples=30, deadline=None)
    @given(list_page())
    def test_tag_paths_resolve(self, data):
        page, _ = data
        for line in page.lines:
            path = line.tag_path
            assert path.resolve(page.document.root) is not None


class TestMeasureInvariants:
    @settings(max_examples=25, deadline=None)
    @given(list_page(), st.randoms(use_true_random=False))
    def test_record_distance_bounds_and_symmetry(self, data, rng):
        page, _ = data
        n = len(page.lines)
        blocks = []
        for _ in range(4):
            start = rng.randrange(n)
            end = rng.randrange(start, n)
            blocks.append(Block(page, start, end))
        for a in blocks:
            for b in blocks:
                d_ab = record_distance(a, b)
                assert 0.0 <= d_ab <= 1.0 + 1e-9
                assert abs(d_ab - record_distance(b, a)) < 1e-9
        for block in blocks:
            assert record_distance(block, block) < 1e-9

    @settings(max_examples=25, deadline=None)
    @given(list_page())
    def test_cohesion_nonnegative(self, data):
        page, spans = data
        records = [Block(page, s, e) for s, e in spans]
        assert section_cohesion(records) >= 0.0
        assert inter_record_distance(records) >= 0.0
        for record in records:
            assert record_diversity(record) >= 0.0


class TestMiningInvariants:
    @settings(max_examples=30, deadline=None)
    @given(list_page())
    def test_mined_records_tile_the_block(self, data):
        page, spans = data
        block = Block(page, spans[0][0], spans[-1][1])
        records = mine_records(block)
        assert records[0].start == block.start
        assert records[-1].end == block.end
        for left, right in zip(records, records[1:]):
            assert left.end + 1 == right.start

    @settings(max_examples=30, deadline=None)
    @given(list_page())
    def test_mined_records_match_truth_for_clean_lists(self, data):
        page, spans = data
        block = Block(page, spans[0][0], spans[-1][1])
        records = mine_records(block)
        assert [(r.start, r.end) for r in records] == spans


class TestTagPathInvariants:
    @settings(max_examples=30, deadline=None)
    @given(list_page())
    def test_merged_path_finds_all_inputs(self, data):
        page, _ = data
        lis = page.document.body.find_all("li")
        paths = [TagPath.to_node(li) for li in lis]
        merged = MergedTagPath.merge(paths)
        found = merged.find(page.document.root)
        for li in lis:
            assert li in found

    @settings(max_examples=30, deadline=None)
    @given(list_page())
    def test_path_distance_triangle_over_compatible(self, data):
        page, _ = data
        lis = page.document.body.find_all("li")
        paths = [TagPath.to_node(li) for li in lis]
        for a in paths:
            for b in paths:
                for c in paths:
                    assert a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9
