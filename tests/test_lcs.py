"""LCS and prefix/suffix utility tests."""

from hypothesis import given, strategies as st

from repro.algorithms.lcs import (
    common_prefix,
    common_suffix,
    lcs_length,
    longest_common_subsequence,
)

short = st.text(alphabet="abc", max_size=10)


class TestLCS:
    def test_classic(self):
        assert longest_common_subsequence("ABCBDAB", "BDCABA") == list("BCBA")

    def test_identical(self):
        assert longest_common_subsequence("abc", "abc") == list("abc")

    def test_disjoint(self):
        assert longest_common_subsequence("abc", "xyz") == []

    def test_empty(self):
        assert longest_common_subsequence("", "abc") == []

    def test_works_on_tuples(self):
        assert longest_common_subsequence((1, 2, 3), (2, 3, 4)) == [2, 3]

    @given(short, short)
    def test_length_agrees_with_sequence(self, a, b):
        assert len(longest_common_subsequence(a, b)) == lcs_length(a, b)

    @given(short, short)
    def test_result_is_subsequence_of_both(self, a, b):
        sub = longest_common_subsequence(a, b)
        assert _is_subsequence(sub, a)
        assert _is_subsequence(sub, b)

    @given(short)
    def test_self_lcs_is_self(self, a):
        assert longest_common_subsequence(a, a) == list(a)

    @given(short, short)
    def test_length_symmetry(self, a, b):
        assert lcs_length(a, b) == lcs_length(b, a)

    @given(short, short)
    def test_length_bounds(self, a, b):
        assert 0 <= lcs_length(a, b) <= min(len(a), len(b))


class TestPrefixSuffix:
    def test_common_prefix(self):
        assert common_prefix(["abcd", "abxy", "abz"]) == ["a", "b"]

    def test_common_suffix(self):
        assert common_suffix(["xyzcd", "abcd", "cd"]) == ["c", "d"]

    def test_no_common_prefix(self):
        assert common_prefix(["abc", "xbc"]) == []

    def test_single_sequence(self):
        assert common_prefix(["abc"]) == list("abc")

    def test_empty_input(self):
        assert common_prefix([]) == []
        assert common_suffix([]) == []

    def test_prefix_with_empty_member(self):
        assert common_prefix(["abc", ""]) == []

    @given(st.lists(short, min_size=1, max_size=5))
    def test_prefix_is_prefix_of_all(self, seqs):
        prefix = common_prefix(seqs)
        for seq in seqs:
            assert list(seq[: len(prefix)]) == prefix

    @given(st.lists(short, min_size=1, max_size=5))
    def test_suffix_is_suffix_of_all(self, seqs):
        suffix = common_suffix(seqs)
        for seq in seqs:
            assert list(seq[len(seq) - len(suffix) :]) == suffix


def _is_subsequence(sub, seq):
    it = iter(seq)
    return all(any(x == y for y in it) for x in sub)
