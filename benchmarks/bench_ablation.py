"""Ablation benches — the design choices DESIGN.md calls out, plus the
paper's qualitative baseline comparisons (§7).

Each ablation evaluates on the multi-section subset (where the design
choices matter) and prints a comparison row; shape assertions encode the
paper's claims (full MSE >= each ablated variant; MDR worse on dynamic
sections; single-section ViNTs caps at one section per page).
"""

import dataclasses

from repro.baselines.mdr import mdr_extract
from repro.baselines.vints_single import SingleSectionMSE
from repro.core.mse import MSE, MSEConfig
from repro.evalkit.harness import (
    EvaluationRun,
    evaluate_engine,
    evaluate_extractor,
    run_evaluation,
)
from repro.evalkit.metrics import EvalRows
from repro.features.config import FeatureConfig
from repro.testbed import iter_corpus


def _run_config(config, limit):
    run = run_evaluation("multi", limit=limit, config=config)
    return run.rows.total_sections


def _run_extractor(extract_fn, limit):
    rows = EvalRows()
    for engine_pages in iter_corpus("multi", limit=limit):
        rows.merge(evaluate_extractor(engine_pages, extract_fn).rows)
    return rows.total_sections


def _row(name, counts):
    return (
        f"{name:24s} recall {100 * counts.recall_perfect:5.1f}/"
        f"{100 * counts.recall_total:5.1f}  precision "
        f"{100 * counts.precision_perfect:5.1f}/{100 * counts.precision_total:5.1f}"
    )


def test_pipeline_ablations(benchmark, eval_limits):
    _, limit = eval_limits
    full = _run_config(MSEConfig(), limit)
    no_refine = _run_config(MSEConfig(use_refinement=False), limit)
    no_granularity = _run_config(MSEConfig(use_granularity=False), limit)
    no_families = _run_config(MSEConfig(use_families=False), limit)
    per_child = _run_config(MSEConfig(mining_strategy="per-child"), limit)

    print()
    print("Ablation (multi-section engines):")
    for name, counts in (
        ("full MSE", full),
        ("no refinement (5.3)", no_refine),
        ("no granularity (5.5)", no_granularity),
        ("no families (5.8)", no_families),
        ("per-child mining (5.4)", per_child),
    ):
        print(" ", _row(name, counts))

    # The full pipeline is the best configuration (small tolerance: the
    # ablations interact and a component can mask another's error).
    assert full.recall_total >= no_refine.recall_total - 0.02
    assert full.recall_total >= no_families.recall_total - 0.02
    assert full.recall_total >= per_child.recall_total - 0.02

    from repro.testbed import SINGLE_SECTION_ENGINES, load_engine_pages

    benchmark(evaluate_engine, load_engine_pages(SINGLE_SECTION_ENGINES + 4))


def test_baseline_comparison(benchmark, eval_limits):
    _, limit = eval_limits
    full = _run_config(MSEConfig(), limit)
    mdr = _run_extractor(lambda markup, query: mdr_extract(markup), limit)

    def vints_rows():
        rows = EvalRows()
        for engine_pages in iter_corpus("multi", limit=limit):
            wrapper = SingleSectionMSE().build_wrapper(engine_pages.sample_set)
            rows.merge(evaluate_extractor(engine_pages, wrapper.extract).rows)
        return rows.total_sections

    vints = vints_rows()

    print()
    print("Baselines (multi-section engines):")
    for name, counts in (
        ("MSE (this paper)", full),
        ("MDR (Liu et al. 03)", mdr),
        ("ViNTs single-section", vints),
    ):
        print(" ", _row(name, counts))

    # Paper's claims: MDR's lack of a dynamic/static distinction costs
    # precision; the single-section assumption caps recall.
    assert full.precision_total > mdr.precision_total
    assert full.recall_total > vints.recall_total

    from repro.testbed import SINGLE_SECTION_ENGINES, load_engine_pages

    engine_pages = load_engine_pages(SINGLE_SECTION_ENGINES)
    benchmark(mdr_extract, engine_pages.pages[0])


def test_w_parameter_sweep(eval_limits):
    """The refinement threshold W (paper: 1.8)."""
    _, limit = eval_limits
    print()
    print("W sweep (multi-section engines):")
    results = {}
    for w in (1.2, 1.8, 2.4):
        config = MSEConfig(features=FeatureConfig(refine_w=w))
        counts = _run_config(config, limit)
        results[w] = counts
        print(" ", _row(f"W = {w}", counts))
    # The paper's W=1.8 should be at least competitive.
    assert results[1.8].recall_total >= max(
        r.recall_total for r in results.values()
    ) - 0.05


def test_sample_page_count(eval_limits):
    """Wrapper quality vs number of sample pages (2-5)."""
    _, limit = eval_limits
    from repro.evalkit.harness import SAMPLE_PAGES
    from repro.evalkit.matching import grade_page
    from repro.core.mse import build_wrapper

    print()
    print("Sample-page count (multi-section engines, test pages only):")
    for n_samples in (2, 3, 5):
        rows = EvalRows()
        for engine_pages in iter_corpus("multi", limit=limit):
            try:
                wrapper = build_wrapper(engine_pages.sample_set[:n_samples])
            except ValueError:
                continue
            for index in range(SAMPLE_PAGES, len(engine_pages.pages)):
                grade = grade_page(
                    wrapper.extract(
                        engine_pages.pages[index], engine_pages.queries[index]
                    ),
                    engine_pages.truths[index],
                )
                rows.test_sections.add_grade(
                    grade, len(engine_pages.truths[index].sections)
                )
        print(" ", _row(f"{n_samples} sample pages", rows.test_sections))
