"""Shared benchmark configuration.

By default the benches run on a corpus subset so ``pytest benchmarks/
--benchmark-only`` finishes quickly; set ``REPRO_FULL_EVAL=1`` to
regenerate the tables over the full 119-engine corpus (as EXPERIMENTS.md
does).
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL_EVAL", "") == "1"

#: engines per subset in quick mode
QUICK_ALL = 16
QUICK_MULTI = 8


@pytest.fixture(scope="session")
def eval_limits():
    """(all-engines limit, multi-engines limit); None = full corpus."""
    if FULL:
        return None, None
    return QUICK_ALL, QUICK_MULTI
