"""Micro-benchmarks for the hot distance kernels (repro.perf).

Times each optimised kernel against its naive reference on block
features taken from real corpus pages, checks the scores agree exactly,
and writes per-kernel wall time, speedup and cache hit rates to
``BENCH_kernels.json``.  Comparing these files across commits shows
whether a change moved the kernels themselves, independently of the
stage-level trajectory in ``BENCH_stages.json``.

Set ``REPRO_BENCH_KERNELS`` to override the output path.  Runnable as a
pytest target (``pytest benchmarks/bench_kernels.py``) or directly
(``python benchmarks/bench_kernels.py``).
"""

import json
import os
import time
from itertools import combinations

from repro.algorithms.string_edit import edit_distance, edit_distance_reference
from repro.algorithms.tree_edit import forest_distance
from repro.algorithms.string_edit import normalized_edit_distance
from repro.features.blocks import Block
from repro.features.config import DEFAULT_CONFIG
from repro.features.line_distance import text_attr_distance
from repro.features.record_distance import RecordDistanceCache
from repro.features.cohesion import record_diversity
from repro.htmlmod.parser import parse_html
from repro.perf import (
    block_fingerprint,
    clear_kernel_caches,
    fast_forest_distance,
    kernel_cache_stats,
    masked_attr_distance,
)
from repro.render.layout import render_page
from repro.render.linetypes import type_distance
from repro.testbed.corpus import load_engine_pages

OUTPUT = os.environ.get("REPRO_BENCH_KERNELS", "BENCH_kernels.json")

#: corpus slice the kernel inputs are drawn from
ENGINES = 4
PAGES_PER_ENGINE = 2
BLOCK_SPAN = 3
#: pairwise workload size (blocks -> blocks*(blocks-1)/2 pairs)
MAX_BLOCKS = 36
#: repetitions of the diversity workload (models best_partition re-asking)
DIVERSITY_ROUNDS = 8


def _corpus_blocks():
    """Fixed-span blocks over real rendered corpus pages."""
    blocks = []
    for engine_id in range(ENGINES):
        pages = load_engine_pages(engine_id, pages_per_engine=PAGES_PER_ENGINE)
        for markup in pages.pages:
            page = render_page(parse_html(markup))
            for start in range(0, len(page.lines) - BLOCK_SPAN, BLOCK_SPAN):
                blocks.append(Block(page, start, start + BLOCK_SPAN - 1))
    return blocks[:MAX_BLOCKS]


def _timed(fn, pairs):
    start = time.perf_counter()
    scores = [fn(a, b) for a, b in pairs]
    return time.perf_counter() - start, scores


def _bench_edit_distance(pairs):
    seqs = [(a.type_codes, b.type_codes) for a, b in pairs]
    ref_seconds, ref = _timed(
        lambda s1, s2: edit_distance_reference(s1, s2, substitution_cost=type_distance),
        seqs,
    )
    fast_seconds, fast = _timed(
        lambda s1, s2: edit_distance(s1, s2, substitution_cost=type_distance),
        seqs,
    )
    assert ref == fast, "trimmed edit_distance diverged from reference"
    return ref_seconds, fast_seconds


def _bench_forest(pairs):
    forests = [(a.tag_forest(), b.tag_forest()) for a, b in pairs]
    ref_seconds, ref = _timed(forest_distance, forests)
    clear_kernel_caches()
    fast_seconds, fast = _timed(fast_forest_distance, forests)
    assert ref == fast, "memoized forest distance diverged from reference"
    return ref_seconds, fast_seconds


def _bench_attr_masks(pairs):
    attrs = [(a.text_attrs, b.text_attrs) for a, b in pairs]
    masks = [
        (block_fingerprint(a).attr_masks, block_fingerprint(b).attr_masks)
        for a, b in pairs
    ]
    ref_seconds, ref = _timed(
        lambda t1, t2: normalized_edit_distance(
            t1, t2, substitution_cost=text_attr_distance
        ),
        attrs,
    )
    fast_seconds, fast = _timed(
        lambda m1, m2: normalized_edit_distance(
            m1, m2, substitution_cost=masked_attr_distance
        ),
        masks,
    )
    assert ref == fast, "bitmask Dtal diverged from the frozenset reference"
    return ref_seconds, fast_seconds


def _bench_diversity(blocks):
    workload = [b for b in blocks for _ in range(DIVERSITY_ROUNDS)]
    start = time.perf_counter()
    ref = [record_diversity(b, DEFAULT_CONFIG) for b in workload]
    ref_seconds = time.perf_counter() - start
    cache = RecordDistanceCache(DEFAULT_CONFIG)
    start = time.perf_counter()
    fast = [cache.diversity(b) for b in workload]
    fast_seconds = time.perf_counter() - start
    assert ref == fast, "cached diversity diverged from Formula 6"
    return ref_seconds, fast_seconds


def test_kernel_bench_emitted():
    blocks = _corpus_blocks()
    assert len(blocks) >= 8, "corpus slice produced too few blocks"
    pairs = list(combinations(blocks, 2))

    kernels = {}
    for name, (ref_seconds, fast_seconds) in (
        ("edit_distance", _bench_edit_distance(pairs)),
        ("forest_distance", _bench_forest(pairs)),
        ("attr_distance", _bench_attr_masks(pairs)),
        ("diversity", _bench_diversity(blocks)),
    ):
        kernels[name] = {
            "reference_seconds": ref_seconds,
            "fast_seconds": fast_seconds,
            "speedup": ref_seconds / fast_seconds if fast_seconds else 0.0,
        }

    # The memoized tree kernel is where the ISSUE's >=2x target lives; the
    # other kernels only have to not regress (their wins are workload
    # dependent and too small to gate CI on without flakes).
    assert kernels["forest_distance"]["speedup"] >= 2.0, kernels["forest_distance"]

    doc = {
        "format": "repro-bench-kernels",
        "version": 1,
        "workload": {
            "engines": ENGINES,
            "pages_per_engine": PAGES_PER_ENGINE,
            "blocks": len(blocks),
            "pairs": len(pairs),
            "diversity_rounds": DIVERSITY_ROUNDS,
        },
        "kernels": kernels,
        "caches": kernel_cache_stats(),
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
    print(f"\nkernel bench written to {OUTPUT}")
    for name, row in kernels.items():
        print(
            f"  {name:<16s} ref {row['reference_seconds'] * 1000:>8.1f}ms  "
            f"fast {row['fast_seconds'] * 1000:>8.1f}ms  "
            f"{row['speedup']:>6.1f}x"
        )


if __name__ == "__main__":
    test_kernel_bench_emitted()
