"""§6 timing claims.

"On a laptop with a Pentium M 1.3G processor, the system can construct
section wrappers for a search engine with 5 sample pages in 20 to 50
seconds.  Once the wrappers are built, the section and record extraction
from a new result page can be done in a small fraction of a second."

Absolute numbers are hardware-bound; the reproducible shape is the ratio:
wrapper construction is orders of magnitude slower than applying the
wrapper to one page.
"""

import statistics
import time

from repro.core.mse import build_wrapper
from repro.testbed import load_engine_pages

ENGINE_ID = 85  # a multi-section engine (harder induction)


def test_wrapper_construction_time(benchmark):
    engine_pages = load_engine_pages(ENGINE_ID)
    wrapper = benchmark(build_wrapper, engine_pages.sample_set)
    assert wrapper.wrappers


def test_extraction_time(benchmark):
    engine_pages = load_engine_pages(ENGINE_ID)
    wrapper = build_wrapper(engine_pages.sample_set)
    markup, query = engine_pages.test_set[0]
    extraction = benchmark(wrapper.extract, markup, query)
    assert len(extraction) >= 1


def test_construction_vs_extraction_ratio():
    engine_pages = load_engine_pages(ENGINE_ID)

    start = time.perf_counter()
    wrapper = build_wrapper(engine_pages.sample_set)
    build_seconds = time.perf_counter() - start

    samples = []
    for markup, query in engine_pages.test_set:
        start = time.perf_counter()
        wrapper.extract(markup, query)
        samples.append(time.perf_counter() - start)
    extract_seconds = statistics.mean(samples)

    print()
    print(
        f"wrapper construction: {build_seconds * 1000:.1f} ms; "
        f"extraction per page: {extract_seconds * 1000:.2f} ms; "
        f"ratio {build_seconds / extract_seconds:.1f}x"
    )
    # The paper's shape: induction dominates per-page extraction.
    assert build_seconds > extract_seconds
