"""Figure regeneration benches.

The paper's Figures 1-11 are stage illustrations, not result plots:

- Fig. 1  a multi-section result page (healthcentral.com),
- Fig. 2  its DOM tree,
- Fig. 3  the sections/records/template line view,
- Fig. 4  the system overview,
- Fig. 5  the DSE algorithm,
- Figs. 6-8  MR/DS refinement cases,
- Fig. 9  the section-instance match graph,
- Figs. 10-11  Type 1 / Type 2 family tag structures.

``examples/paper_walkthrough.py`` renders each of them as text for a
Figure-1-shaped page; this bench drives the same stages programmatically,
times them, and asserts each stage produces the artifact the figure
depicts.
"""

from repro.core.dse import run_dse
from repro.core.family import Type1Family, Type2Family
from repro.core.grouping import group_section_instances
from repro.core.mre import extract_mrs
from repro.core.mse import MSE, build_wrapper
from repro.core.refine import refine_page
from repro.htmlmod.parser import parse_html
from repro.render.layout import render_page

import importlib.util
import pathlib

_spec = importlib.util.spec_from_file_location(
    "paper_walkthrough",
    pathlib.Path(__file__).resolve().parent.parent / "examples" / "paper_walkthrough.py",
)
walkthrough = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(walkthrough)


def _samples():
    queries = ["knee pain", "pregnancy diet", "cholesterol"]
    plans = [
        {"Encyclopedia": 5, "Dr. Dean Edell": 1, "News": 5, "Peoples Pharmacy": 2},
        {"Encyclopedia": 4, "Dr. Dean Edell": 0, "News": 5, "Peoples Pharmacy": 3},
        {"Encyclopedia": 5, "Dr. Dean Edell": 2, "News": 3, "Peoples Pharmacy": 0},
    ]
    return [
        (walkthrough.healthcentral_page(q, plan), q)
        for q, plan in zip(queries, plans)
    ]


def test_figure_1_to_3_rendering(benchmark):
    """Fig. 1-3: the page renders into typed, positioned content lines."""
    markup, _ = _samples()[0]
    page = benchmark(lambda: render_page(parse_html(markup)))
    assert len(page.lines) > 20
    headers = [l for l in page.lines if l.text in walkthrough.TOPICS]
    assert len(headers) >= 3  # the section headers of Figure 1


def test_figure_5_dse(benchmark):
    """Fig. 5: CSBMs partition the page into dynamic sections."""
    samples = _samples()
    pages = [render_page(parse_html(m)) for m, _ in samples]
    queries = [q for _, q in samples]
    mrs = [extract_mrs(p) for p in pages]

    def run():
        return run_dse(pages, queries, mrs)

    csbms, dss = benchmark(run)
    assert all(dss[i] for i in range(len(pages)))
    # Most headers must be boundary markers.  (Sections present on too few
    # sample pages can miss the vote threshold — the walkthrough's small
    # article pools make this page deliberately hard.)
    header_lines = [
        l.number for l in pages[0].lines if l.text in walkthrough.TOPICS
    ]
    marked = sum(1 for n in header_lines if n in csbms[0])
    assert marked >= len(header_lines) / 2


def test_figures_6_to_8_refinement(benchmark):
    """Figs. 6-8: refinement yields disjoint sections inside the DSs."""
    samples = _samples()
    pages = [render_page(parse_html(m)) for m, _ in samples]
    queries = [q for _, q in samples]
    mrs = [extract_mrs(p) for p in pages]
    csbms, dss = run_dse(pages, queries, mrs)

    result = benchmark(refine_page, pages[0], mrs[0], dss[0], csbms[0])
    spans = sorted((s.start, s.end) for s in result.sections)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 < s2  # disjoint


def test_figure_9_instance_graph(benchmark):
    """Fig. 9: cliques of matching instances across sample pages."""
    mse = MSE()
    prepared = mse._prepare(_samples())
    sections_per_page = mse.analyze_pages(prepared)
    groups = benchmark(group_section_instances, sections_per_page)
    assert groups
    for group in groups:
        page_ids = [page_index for page_index, _ in group.members]
        assert len(page_ids) == len(set(page_ids))  # one instance per page


def test_figures_10_11_families(benchmark):
    """Figs. 10/11: structurally related wrappers fold into families."""
    engine = benchmark(build_wrapper, _samples())
    assert engine.wrappers
    assert any(
        isinstance(f, (Type1Family, Type2Family)) for f in engine.families
    )
