"""Table 1 — section extraction over the whole test bed.

Paper numbers (1190 pages, 119 engines)::

            #Actual  #Extr  #Perf  #Part  RecPerf  RecTot  PrecPerf  PrecTot
    S pgs      1057   1106    899    136     85.0    97.9      81.3     93.6
    T pgs       981   1028    820    134     83.6    97.2      79.8     92.8
    Total      2038   2134   1719    270     84.3    97.6      80.6     93.2

The benchmark times one full engine evaluation (wrapper induction from 5
sample pages + extraction/grading of all 10 pages); the printed table is
the regenerated Table 1 over the selected corpus subset.
"""

from repro.evalkit.harness import evaluate_engine, run_evaluation
from repro.evalkit.report import render_section_table
from repro.testbed import load_engine_pages


def test_table1_section_extraction(benchmark, eval_limits):
    limit_all, _ = eval_limits
    run = run_evaluation("all", limit=limit_all)
    print()
    print(render_section_table(run.rows, "Table 1. Section extraction (all engines)"))

    engine_pages = load_engine_pages(0)
    result = benchmark(evaluate_engine, engine_pages)
    assert result.rows.total_sections.actual > 0
    total = run.rows.total_sections
    # Shape assertions against the paper: high total recall, precision
    # below recall, perfect below total.
    assert total.recall_total >= 0.85
    assert total.recall_perfect <= total.recall_total
    assert total.precision_perfect <= total.precision_total
