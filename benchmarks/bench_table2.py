"""Table 2 — section extraction on the 38 multi-section engines.

Paper numbers (380 pages)::

            #Actual  #Extr  #Perf  #Part  RecPerf  RecTot  PrecPerf  PrecTot
    S pgs       652    670    538     92     82.5    96.6      80.2     94.0
    T pgs       590    611    468     95     79.3    95.4      76.6     92.1
    Total      1242   1281   1006    187     81.0    96.1      78.5     93.1

Multi-section extraction is strictly harder than the overall corpus
(Table 1) — the shape assertion checks exactly that ordering.
"""

from repro.evalkit.harness import evaluate_engine, run_evaluation
from repro.evalkit.report import render_section_table
from repro.testbed import SINGLE_SECTION_ENGINES, load_engine_pages


def test_table2_multi_section_extraction(benchmark, eval_limits):
    _, limit_multi = eval_limits
    run_multi = run_evaluation("multi", limit=limit_multi)
    print()
    print(
        render_section_table(
            run_multi.rows, "Table 2. Section extraction (multi-section engines)"
        )
    )

    engine_pages = load_engine_pages(SINGLE_SECTION_ENGINES)  # first multi engine
    result = benchmark(evaluate_engine, engine_pages)
    assert result.rows.total_sections.actual > 0

    # Shape: multi-section recall does not exceed the single-section regime.
    run_single = run_evaluation("single", limit=limit_multi)
    assert (
        run_multi.rows.total_sections.recall_perfect
        <= run_single.rows.total_sections.recall_perfect + 0.02
    )
