"""Table 3 — record extraction within correctly extracted sections.

Paper numbers::

            #Actual  #Extracted  #Correct  Recall%   Precision%
    S pgs      9615        9597      9490     98.7         98.9
    T pgs      8248        8245      8139     98.7         98.7
    Total     17863       17842     17628     98.7         98.8

The benchmark times pure extraction (wrapper application) on a fresh
page — the operation the paper says takes "a small fraction of a second".
"""

from repro.core.mse import build_wrapper
from repro.evalkit.harness import run_evaluation
from repro.evalkit.report import render_record_table
from repro.testbed import load_engine_pages


def test_table3_record_extraction(benchmark, eval_limits):
    limit_all, _ = eval_limits
    run = run_evaluation("all", limit=limit_all)
    print()
    print(
        render_record_table(
            run.rows, "Table 3. Record extraction (perfect + partial sections)"
        )
    )

    engine_pages = load_engine_pages(1)
    wrapper = build_wrapper(engine_pages.sample_set)
    markup, query = engine_pages.test_set[0]
    extraction = benchmark(wrapper.extract, markup, query)
    assert extraction.record_count > 0

    total = run.rows.total_records
    # Shape: record-level metrics in the high-90s as in the paper.
    assert total.recall >= 0.95
    assert total.precision >= 0.95
