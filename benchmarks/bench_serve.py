"""Serving-path benchmark: interpreted vs compiled vs pooled serving.

Models the production serving loop: one wrapper per engine, induced once
from that engine's sample pages, then applied to a stream of result
pages *with health monitoring* (what :class:`repro.monitor
.WrapperMonitor` does per served page).  The timed modes, over the same
corpus:

- **interpreted serve** — ``EngineWrapper.extract`` followed by
  ``check_wrapper`` per page: the pre-compile monitoring cost (two
  parses, two renders, two application sweeps);
- **compiled serve** — ``CompiledWrapper.serve``: one shared
  render+index, one application sweep, extraction and health assembled
  from the same per-schema results (:mod:`repro.perf.serve`);
- **cold pool** — the ``extract_many`` compatibility shim at
  ``jobs=N``: a *temporary* :class:`repro.perf.server.Server` per call,
  so every call pays worker spawn + per-worker wrapper compilation with
  cold kernel memos (the pre-PR-10 regime);
- **warm pool** — a long-lived ``Server`` spawned and primed *before*
  the clock starts: workers are resident, their memos warmed by a
  priming pass (one sample page per engine), chunked batches amortize
  IPC.  Timed for both ``Server.serve`` (the headline: extraction +
  health) and ``Server.extract``.

An honest extract-only comparison (``EngineWrapper.extract`` vs
``CompiledWrapper.extract``) is also recorded: rendering dominates
single extraction, so the compiled win there is real but modest — the
headline is the serving workload, where the shared render halves the
per-page cost outright before the automaton/index savings kick in.

Every timed page is also a parity check: the compiled extraction must
serialize byte-identically to the interpreted one, the compiled health
document byte-identically to ``check_wrapper``'s — and every pooled
result byte-identically to the serial references.

The process-wide kernel caches are cleared right before the pool modes
run, so pool workers genuinely fork cold and the per-worker
``after_priming`` → ``final`` hit-rate delta in ``memo_warmth`` shows
what the priming pass actually bought.

Pool throughput gates are hardware-aware: the full-strength targets
(warm pool at jobs=4 beating single-thread compiled serve by >= 1.5x
and interpreted serve by >= 3x) apply when >= 4 cores back the
requested workers; scaled floors apply below that, and the measured
environment (cpu count, effective workers) is recorded in the output
so a gate never silently means less than it claims.  The warm-vs-cold
gate is hardware-independent — resident primed workers must beat
per-call pool spin-up even on one core.

Environment overrides:

- ``REPRO_BENCH_SERVE`` — output path (default ``BENCH_serve.json``);
- ``REPRO_BENCH_SERVE_ENGINES`` — engine-count cap (0 = full corpus);
- ``REPRO_BENCH_SERVE_MIN_SPEEDUP`` — serve speedup gate (default 2.0;
  CI uses a softer gate on shared runners);
- ``REPRO_BENCH_SERVE_JOBS`` — worker count for the pool modes;
- ``REPRO_BENCH_SERVE_CHUNKSIZE`` — pages per pool IPC message
  (0 = the auto heuristic);
- ``REPRO_BENCH_SERVE_MIN_POOL_VS_COMPILED`` — warm-pool serve vs
  single-thread compiled serve gate (default hardware-aware);
- ``REPRO_BENCH_SERVE_MIN_POOL_VS_INTERPRETED`` — warm-pool serve vs
  interpreted serve gate (default hardware-aware);
- ``REPRO_BENCH_SERVE_MIN_WARM_VS_COLD`` — warm-pool extract vs
  cold-pool extract gate (default hardware-aware);
- ``REPRO_BENCH_SERVE_REPEATS`` — timing repetitions (default 3; the
  minimum is kept, the ``timeit`` methodology — scheduler jitter only
  ever adds time, so min-of-K is the estimator of true cost).

Runnable as a pytest target (``pytest benchmarks/bench_serve.py``) or
directly (``python benchmarks/bench_serve.py``).
"""

import json
import multiprocessing
import os
import time
from dataclasses import asdict

from repro.core.mse import build_wrapper
from repro.core.verify import check_wrapper
from repro.perf.kernels import clear_kernel_caches
from repro.perf.serve import compile_wrapper, extract_many
from repro.perf.server import Server, auto_chunksize
from repro.testbed import engine_ids, load_engine_pages

OUTPUT = os.environ.get("REPRO_BENCH_SERVE", "BENCH_serve.json")
ENGINE_LIMIT = int(os.environ.get("REPRO_BENCH_SERVE_ENGINES", "0"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVE_MIN_SPEEDUP", "2.0"))
JOBS = int(os.environ.get("REPRO_BENCH_SERVE_JOBS", "4"))
CHUNKSIZE = int(os.environ.get("REPRO_BENCH_SERVE_CHUNKSIZE", "0"))
REPEATS = int(os.environ.get("REPRO_BENCH_SERVE_REPEATS", "3"))

CPU_COUNT = multiprocessing.cpu_count()
EFFECTIVE_WORKERS = min(JOBS, CPU_COUNT)


def _hardware_gate(full, dual, single):
    """Gate default by how many cores actually back the workers."""
    if EFFECTIVE_WORKERS >= 4:
        return full
    if EFFECTIVE_WORKERS >= 2:
        return dual
    return single


#: warm-pool serve vs single-thread compiled serve: the paper target is
#: 1.5x at 4 real cores; on fewer cores a pool cannot beat one warm
#: thread by parallelism, so the floor only rules out pathological IPC
MIN_POOL_VS_COMPILED = float(
    os.environ.get(
        "REPRO_BENCH_SERVE_MIN_POOL_VS_COMPILED",
        str(_hardware_gate(1.5, 0.9, 0.3)),
    )
)
#: warm-pool serve vs interpreted serve: 3x at 4 real cores
MIN_POOL_VS_INTERPRETED = float(
    os.environ.get(
        "REPRO_BENCH_SERVE_MIN_POOL_VS_INTERPRETED",
        str(_hardware_gate(3.0, 1.8, 0.6)),
    )
)
#: resident primed workers vs per-call pool spin-up: the amortized
#: fork+compile cost only buys a clear win when workers run in
#: parallel; on a single core the saved spin-up is small relative to
#: the serialized page work, so the floor there just rules out the
#: resident pool being materially *slower* than respawning
MIN_WARM_VS_COLD = float(
    os.environ.get(
        "REPRO_BENCH_SERVE_MIN_WARM_VS_COLD",
        str(_hardware_gate(1.15, 1.05, 0.9)),
    )
)

#: kernel memos whose warmth the pool telemetry reports
_WARMTH_CACHES = ("tree_memo", "forest_memo", "record_memo", "dinr_memo")


def _best_of(fn):
    """(min elapsed over REPEATS runs, last result) for a thunk.

    Noise from the scheduler and allocator is strictly additive, so the
    minimum over repetitions estimates the true per-page cost; every
    repetition does the full work, so the result is the same each time.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, REPEATS)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def _extraction_bytes(extraction):
    return json.dumps(asdict(extraction), sort_keys=True)


def _health_bytes(health):
    return json.dumps(health.to_obj(), sort_keys=True)


def _percentile(sorted_values, q):
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _mode_stats(latencies):
    total = sum(latencies)
    ordered = sorted(latencies)
    return {
        "seconds": total,
        "pages_per_sec": len(latencies) / total if total else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
    }


def _pool_stats(seconds, page_count):
    return {
        "jobs": JOBS,
        "seconds": seconds,
        "pages_per_sec": page_count / seconds if seconds else 0.0,
    }


def _mean_hit_rates(worker_stats, snapshot_key):
    """Per-cache hit rates of one snapshot, averaged across workers."""
    rates = {}
    for cache in _WARMTH_CACHES:
        values = [
            stats[snapshot_key][cache]["hit_rate"]
            for stats in worker_stats.values()
            if snapshot_key in stats
        ]
        rates[cache] = sum(values) / len(values) if values else 0.0
    return rates


def _serve_workload():
    """(engine wrappers, per-page (wrapper index, markup, query) tasks,
    one representative priming page per engine)."""
    ids = list(engine_ids())
    if ENGINE_LIMIT:
        ids = ids[:ENGINE_LIMIT]
    engines = []
    tasks = []
    prime_pages = []
    for position, engine_id in enumerate(ids):
        pages = load_engine_pages(engine_id)
        engines.append(build_wrapper(list(pages.sample_set)))
        prime_pages.append(pages.sample_set[0])
        for markup, query in list(pages.sample_set) + list(pages.test_set):
            tasks.append((position, markup, query))
    return engines, tasks, prime_pages


def test_serve_bench_emitted():
    engines, tasks, prime_pages = _serve_workload()
    assert tasks, "empty serve workload"
    compiled = [compile_wrapper(engine) for engine in engines]

    # Steady state: a serving loop runs for months, not once.  One
    # untimed pass warms the process-wide memos and interners for *both*
    # modes (they share the kernel caches), so the timed pass below
    # measures the regime the monitor actually operates in; per-page
    # work (parse, render, index, application) is rebuilt every serve
    # either way.
    for position, markup, query in tasks:
        engines[position].extract(markup, query)
        check_wrapper(engines[position], markup, query)
        compiled[position].serve(markup, query)

    interpreted_serve = []
    compiled_serve = []
    interpreted_extract = []
    compiled_extract = []
    ref_extractions = []
    ref_healths = []
    for position, markup, query in tasks:
        engine = engines[position]
        fast = compiled[position]

        elapsed, (ref_extraction, ref_health) = _best_of(
            lambda: (
                engine.extract(markup, query),
                check_wrapper(engine, markup, query),
            )
        )
        interpreted_serve.append(elapsed)
        ref_extractions.append(_extraction_bytes(ref_extraction))
        ref_healths.append(_health_bytes(ref_health))

        elapsed, served = _best_of(lambda: fast.serve(markup, query))
        compiled_serve.append(elapsed)

        elapsed, ref_only = _best_of(lambda: engine.extract(markup, query))
        interpreted_extract.append(elapsed)

        elapsed, fast_only = _best_of(lambda: fast.extract(markup, query))
        compiled_extract.append(elapsed)

        # Parity: the measured results, not a separate run.
        assert _extraction_bytes(served.extraction) == ref_extractions[-1], (
            "compiled serve extraction diverged from EngineWrapper.extract"
        )
        assert _extraction_bytes(fast_only) == _extraction_bytes(
            ref_only
        ), "compiled extract diverged from EngineWrapper.extract"
        assert _health_bytes(served.health) == ref_healths[-1], (
            "compiled health diverged from check_wrapper"
        )

    pages = [(markup, query) for _, markup, query in tasks]
    wrapper_of = [position for position, _, _ in tasks]
    chunksize = CHUNKSIZE or None
    effective_chunksize = chunksize or auto_chunksize(len(pages), JOBS)

    # From here on the pool workers must genuinely fork cold: clear the
    # parent's kernel caches so inherited state cannot masquerade as
    # priming (the serial numbers above are already recorded).
    clear_kernel_caches()

    # Cold pool: the extract_many shim builds and tears down a Server
    # per call — every repetition pays spawn + compile + cold memos.
    cold_seconds, cold_batch = _best_of(
        lambda: extract_many(
            pages, compiled, jobs=JOBS, wrapper_of=wrapper_of,
            chunksize=chunksize,
        )
    )
    pooled_mismatches = 0
    for row, ref in zip(cold_batch, ref_extractions):
        assert len(row) == 1
        if _extraction_bytes(row[0]) != ref:
            pooled_mismatches += 1
    assert pooled_mismatches == 0, (
        "cold-pool extract_many diverged from the serial references"
    )

    # Warm pool: spawn + prime once, outside the clock; then the same
    # batches run against resident workers with warm memos.
    with Server(
        compiled,
        jobs=JOBS,
        chunksize=chunksize,
        prime_pages=prime_pages,
        prime_of=list(range(len(engines))),
    ) as server:
        warm_serve_seconds, warm_served = _best_of(
            lambda: server.serve(pages, wrapper_of=wrapper_of)
        )
        warm_extract_seconds, warm_batch = _best_of(
            lambda: server.extract(pages, wrapper_of=wrapper_of)
        )
        pool_restarts = server.restarts
    for row, ref_e, ref_h in zip(warm_served, ref_extractions, ref_healths):
        assert len(row) == 1
        if (
            _extraction_bytes(row[0].extraction) != ref_e
            or _health_bytes(row[0].health) != ref_h
        ):
            pooled_mismatches += 1
    for row, ref in zip(warm_batch, ref_extractions):
        if _extraction_bytes(row[0]) != ref:
            pooled_mismatches += 1
    assert pooled_mismatches == 0, (
        "warm-pool results diverged from the serial references"
    )
    memo_warmth = {
        "after_priming": _mean_hit_rates(server.worker_stats, "primed"),
        "final": _mean_hit_rates(server.worker_stats, "final"),
    }

    modes = {
        "interpreted_serve": _mode_stats(interpreted_serve),
        "compiled_serve": _mode_stats(compiled_serve),
        "interpreted_extract": _mode_stats(interpreted_extract),
        "compiled_extract": _mode_stats(compiled_extract),
        "cold_pool_extract": _pool_stats(cold_seconds, len(pages)),
        "warm_pool_extract": _pool_stats(warm_extract_seconds, len(pages)),
        "warm_pool_serve": _pool_stats(warm_serve_seconds, len(pages)),
    }
    speedups = {
        # The headline: serving with monitoring, single thread.
        "serve": (
            modes["interpreted_serve"]["seconds"]
            / modes["compiled_serve"]["seconds"]
        ),
        # Extract-only (render-bound; kept honest, not gated).
        "extract": (
            modes["interpreted_extract"]["seconds"]
            / modes["compiled_extract"]["seconds"]
        ),
        # The pool headline: warm resident workers vs everything else.
        "pool_serve_vs_compiled_serve": (
            modes["warm_pool_serve"]["pages_per_sec"]
            / modes["compiled_serve"]["pages_per_sec"]
        ),
        "pool_serve_vs_interpreted_serve": (
            modes["warm_pool_serve"]["pages_per_sec"]
            / modes["interpreted_serve"]["pages_per_sec"]
        ),
        "warm_vs_cold_pool": (
            modes["warm_pool_extract"]["pages_per_sec"]
            / modes["cold_pool_extract"]["pages_per_sec"]
        ),
    }
    doc = {
        "format": "repro-serve-bench",
        "version": 2,
        "workload": {
            "engines": len(engines),
            "pages": len(pages),
            "pages_per_engine": len(pages) // max(1, len(engines)),
            "min_speedup_gate": MIN_SPEEDUP,
            "warmup_passes": 1,
            "timing_repeats": REPEATS,
        },
        "environment": {
            "cpu_count": CPU_COUNT,
            "jobs": JOBS,
            "effective_workers": EFFECTIVE_WORKERS,
            "chunksize": effective_chunksize,
            "prime_pages": len(prime_pages),
            "pool_restarts": pool_restarts,
        },
        "gates": {
            "min_speedup": MIN_SPEEDUP,
            "min_pool_vs_compiled": MIN_POOL_VS_COMPILED,
            "min_pool_vs_interpreted": MIN_POOL_VS_INTERPRETED,
            "min_warm_vs_cold": MIN_WARM_VS_COLD,
        },
        "modes": modes,
        "speedups": speedups,
        "memo_warmth": memo_warmth,
        "parity": {
            "pages_checked": len(pages),
            # serial pass + warm serve + warm extract + cold extract
            "pooled_results_checked": 3 * len(pages),
            "mismatches": 0,
        },
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nserve bench written to {OUTPUT}")
    for name, row in modes.items():
        line = (f"  {name:<20s} {row['seconds'] * 1e3:>9.1f}ms  "
                f"{row['pages_per_sec']:>7.1f} pages/sec")
        if "p50_ms" in row:
            line += (f"  p50 {row['p50_ms']:>6.2f}ms  "
                     f"p99 {row['p99_ms']:>6.2f}ms")
        print(line)
    print(f"  serve speedup {speedups['serve']:.2f}x  "
          f"extract-only {speedups['extract']:.2f}x")
    print(f"  warm pool({JOBS} jobs, {EFFECTIVE_WORKERS} effective) "
          f"vs compiled serve {speedups['pool_serve_vs_compiled_serve']:.2f}x  "
          f"vs interpreted {speedups['pool_serve_vs_interpreted_serve']:.2f}x  "
          f"warm-vs-cold {speedups['warm_vs_cold_pool']:.2f}x")

    # Gates run after the JSON is written: a failed floor still leaves
    # the measured numbers on disk for diagnosis.
    assert speedups["serve"] >= MIN_SPEEDUP, (speedups, MIN_SPEEDUP)
    assert speedups["pool_serve_vs_compiled_serve"] >= MIN_POOL_VS_COMPILED, (
        speedups, MIN_POOL_VS_COMPILED
    )
    assert (
        speedups["pool_serve_vs_interpreted_serve"] >= MIN_POOL_VS_INTERPRETED
    ), (speedups, MIN_POOL_VS_INTERPRETED)
    assert speedups["warm_vs_cold_pool"] >= MIN_WARM_VS_COLD, (
        speedups, MIN_WARM_VS_COLD
    )


if __name__ == "__main__":
    test_serve_bench_emitted()
