"""Serving-path benchmark: interpreted vs compiled vs compiled+jobs.

Models the production serving loop: one wrapper per engine, induced once
from that engine's sample pages, then applied to a stream of result
pages *with health monitoring* (what :class:`repro.monitor
.WrapperMonitor` does per served page).  Three modes are timed over the
same corpus:

- **interpreted serve** — ``EngineWrapper.extract`` followed by
  ``check_wrapper`` per page: the pre-compile monitoring cost (two
  parses, two renders, two application sweeps);
- **compiled serve** — ``CompiledWrapper.serve``: one shared
  render+index, one application sweep, extraction and health assembled
  from the same per-schema results (:mod:`repro.perf.serve`);
- **compiled + jobs** — ``extract_many`` fanning pages over worker
  processes (throughput only; per-page latency is meaningless across
  pool workers).

An honest extract-only comparison (``EngineWrapper.extract`` vs
``CompiledWrapper.extract``) is also recorded: rendering dominates
single extraction, so the compiled win there is real but modest — the
headline is the serving workload, where the shared render halves the
per-page cost outright before the automaton/index savings kick in.

Every timed page is also a parity check: the compiled extraction must
serialize byte-identically to the interpreted one, and the compiled
health document byte-identically to ``check_wrapper``'s.

Environment overrides:

- ``REPRO_BENCH_SERVE`` — output path (default ``BENCH_serve.json``);
- ``REPRO_BENCH_SERVE_ENGINES`` — engine-count cap (0 = full corpus);
- ``REPRO_BENCH_SERVE_MIN_SPEEDUP`` — serve speedup gate (default 2.0;
  CI uses a softer gate on shared runners);
- ``REPRO_BENCH_SERVE_JOBS`` — worker count for the jobs mode;
- ``REPRO_BENCH_SERVE_REPEATS`` — timing repetitions per page (default
  3; the minimum is kept, the ``timeit`` methodology — scheduler jitter
  only ever adds time, so min-of-K is the estimator of true cost).

Runnable as a pytest target (``pytest benchmarks/bench_serve.py``) or
directly (``python benchmarks/bench_serve.py``).
"""

import json
import os
import time
from dataclasses import asdict

from repro.core.mse import build_wrapper
from repro.core.verify import check_wrapper
from repro.perf.serve import compile_wrapper, extract_many
from repro.testbed import engine_ids, load_engine_pages

OUTPUT = os.environ.get("REPRO_BENCH_SERVE", "BENCH_serve.json")
ENGINE_LIMIT = int(os.environ.get("REPRO_BENCH_SERVE_ENGINES", "0"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVE_MIN_SPEEDUP", "2.0"))
JOBS = int(os.environ.get("REPRO_BENCH_SERVE_JOBS", "4"))
REPEATS = int(os.environ.get("REPRO_BENCH_SERVE_REPEATS", "3"))


def _best_of(fn):
    """(min elapsed over REPEATS runs, last result) for a thunk.

    Noise from the scheduler and allocator is strictly additive, so the
    minimum over repetitions estimates the true per-page cost; every
    repetition does the full work, so the result is the same each time.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, REPEATS)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def _extraction_bytes(extraction):
    return json.dumps(asdict(extraction), sort_keys=True)


def _health_bytes(health):
    return json.dumps(health.to_obj(), sort_keys=True)


def _percentile(sorted_values, q):
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _mode_stats(latencies):
    total = sum(latencies)
    ordered = sorted(latencies)
    return {
        "seconds": total,
        "pages_per_sec": len(latencies) / total if total else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
    }


def _serve_workload():
    """(engine wrappers, per-page (wrapper index, markup, query) tasks)."""
    ids = list(engine_ids())
    if ENGINE_LIMIT:
        ids = ids[:ENGINE_LIMIT]
    engines = []
    tasks = []
    for position, engine_id in enumerate(ids):
        pages = load_engine_pages(engine_id)
        engines.append(build_wrapper(list(pages.sample_set)))
        for markup, query in list(pages.sample_set) + list(pages.test_set):
            tasks.append((position, markup, query))
    return engines, tasks


def test_serve_bench_emitted():
    engines, tasks = _serve_workload()
    assert tasks, "empty serve workload"
    compiled = [compile_wrapper(engine) for engine in engines]

    # Steady state: a serving loop runs for months, not once.  One
    # untimed pass warms the process-wide memos and interners for *both*
    # modes (they share the kernel caches), so the timed pass below
    # measures the regime the monitor actually operates in; per-page
    # work (parse, render, index, application) is rebuilt every serve
    # either way.
    for position, markup, query in tasks:
        engines[position].extract(markup, query)
        check_wrapper(engines[position], markup, query)
        compiled[position].serve(markup, query)

    interpreted_serve = []
    compiled_serve = []
    interpreted_extract = []
    compiled_extract = []
    for position, markup, query in tasks:
        engine = engines[position]
        fast = compiled[position]

        elapsed, (ref_extraction, ref_health) = _best_of(
            lambda: (
                engine.extract(markup, query),
                check_wrapper(engine, markup, query),
            )
        )
        interpreted_serve.append(elapsed)

        elapsed, served = _best_of(lambda: fast.serve(markup, query))
        compiled_serve.append(elapsed)

        elapsed, ref_only = _best_of(lambda: engine.extract(markup, query))
        interpreted_extract.append(elapsed)

        elapsed, fast_only = _best_of(lambda: fast.extract(markup, query))
        compiled_extract.append(elapsed)

        # Parity: the measured results, not a separate run.
        assert _extraction_bytes(served.extraction) == _extraction_bytes(
            ref_extraction
        ), "compiled serve extraction diverged from EngineWrapper.extract"
        assert _extraction_bytes(fast_only) == _extraction_bytes(
            ref_only
        ), "compiled extract diverged from EngineWrapper.extract"
        assert _health_bytes(served.health) == _health_bytes(
            ref_health
        ), "compiled health diverged from check_wrapper"

    pages = [(markup, query) for _, markup, query in tasks]
    wrapper_of = [position for position, _, _ in tasks]
    start = time.perf_counter()
    batch = extract_many(pages, compiled, jobs=JOBS, wrapper_of=wrapper_of)
    jobs_seconds = time.perf_counter() - start
    for (position, markup, query), row in zip(tasks, batch):
        assert len(row) == 1
        assert _extraction_bytes(row[0]) == _extraction_bytes(
            engines[position].extract(markup, query)
        ), "extract_many(jobs) diverged from EngineWrapper.extract"

    modes = {
        "interpreted_serve": _mode_stats(interpreted_serve),
        "compiled_serve": _mode_stats(compiled_serve),
        "interpreted_extract": _mode_stats(interpreted_extract),
        "compiled_extract": _mode_stats(compiled_extract),
        "compiled_jobs": {
            "jobs": JOBS,
            "seconds": jobs_seconds,
            "pages_per_sec": (
                len(pages) / jobs_seconds if jobs_seconds else 0.0
            ),
        },
    }
    speedups = {
        # The headline: serving with monitoring, single thread.
        "serve": (
            modes["interpreted_serve"]["seconds"]
            / modes["compiled_serve"]["seconds"]
        ),
        # Extract-only (render-bound; kept honest, not gated).
        "extract": (
            modes["interpreted_extract"]["seconds"]
            / modes["compiled_extract"]["seconds"]
        ),
        # Batch throughput vs the single-thread interpreted serving loop.
        "jobs_vs_interpreted_serve": (
            modes["compiled_jobs"]["pages_per_sec"]
            / modes["interpreted_serve"]["pages_per_sec"]
        ),
    }
    assert speedups["serve"] >= MIN_SPEEDUP, (speedups, MIN_SPEEDUP)

    doc = {
        "format": "repro-serve-bench",
        "version": 1,
        "workload": {
            "engines": len(engines),
            "pages": len(pages),
            "pages_per_engine": len(pages) // max(1, len(engines)),
            "min_speedup_gate": MIN_SPEEDUP,
            "warmup_passes": 1,
            "timing_repeats": REPEATS,
        },
        "modes": modes,
        "speedups": speedups,
        "parity": {"pages_checked": len(pages), "mismatches": 0},
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nserve bench written to {OUTPUT}")
    for name, row in modes.items():
        line = (f"  {name:<20s} {row['seconds'] * 1e3:>9.1f}ms  "
                f"{row['pages_per_sec']:>7.1f} pages/sec")
        if "p50_ms" in row:
            line += (f"  p50 {row['p50_ms']:>6.2f}ms  "
                     f"p99 {row['p99_ms']:>6.2f}ms")
        print(line)
    print(f"  serve speedup {speedups['serve']:.2f}x  "
          f"extract-only {speedups['extract']:.2f}x  "
          f"jobs({JOBS}) {speedups['jobs_vs_interpreted_serve']:.2f}x")


if __name__ == "__main__":
    test_serve_bench_emitted()
