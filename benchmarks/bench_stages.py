"""Per-stage pipeline stats for benchmark trajectories.

Runs wrapper induction and extraction over a corpus slice under an
:class:`repro.obs.Observer` and writes the aggregate per-stage wall time
and counters to ``BENCH_stages.json`` (same document schema as
``Observer.stats`` / the CLI's ``--trace``).  Comparing these files
across commits attributes a timing or behaviour regression to the stage
that moved — render, mre, dse, refine, mine, granularity, grouping,
wrapper or families.

Set ``REPRO_BENCH_STATS`` to override the output path.
"""

import json
import os

from repro.evalkit.harness import run_evaluation
from repro.obs import Observer

#: engines included in the stage profile (small but multi-section heavy)
STAGE_LIMIT = 8

OUTPUT = os.environ.get("REPRO_BENCH_STATS", "BENCH_stages.json")


def test_stage_stats_emitted():
    obs = Observer()
    run = run_evaluation("all", limit=STAGE_LIMIT, obs=obs)
    assert run.engines

    stats = obs.stats()
    stages = {span["name"] for span in stats["spans"]}
    # Every induction stage must be attributable.
    for stage in (
        "render", "mre", "dse", "refine", "mine",
        "granularity", "grouping", "wrapper", "families",
    ):
        assert stage in stages, f"stage {stage} missing from trace"
    # The cache hit-rate gauge is the headline perf metric.
    assert "record_distance_cache.hit_rate" in stats["metrics"]["gauges"]

    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
    print(f"\nper-stage stats written to {OUTPUT}")
    for span in stats["spans"]:
        print(
            f"  {span['path']:<24s} {span['calls']:>4d}x "
            f"{span['seconds'] * 1000:>9.1f}ms"
        )
