"""Per-stage pipeline stats for benchmark trajectories.

Runs wrapper induction and extraction over a corpus slice under an
:class:`repro.obs.Observer` and writes the aggregate per-stage wall time
and counters to ``BENCH_stages.json`` (same document schema as
``Observer.stats`` / the CLI's ``--trace``).  Comparing these files
across commits attributes a timing or behaviour regression to the stage
that moved — render, mre, dse, refine, mine, granularity, grouping,
wrapper or families.

The second bench covers the ``repro.pipeline`` execution layer itself:
checkpoint write/read overhead and ``jobs=N`` fan-out scaling, written
to ``BENCH_pipeline.json`` (and every variant's wrapper is asserted
byte-identical to the serial one — the layer's load-bearing invariant).

Set ``REPRO_BENCH_STATS`` / ``REPRO_BENCH_PIPELINE`` to override the
output paths.
"""

import json
import os
import time

from repro.core.mse import build_wrapper
from repro.core.serialize import wrapper_to_json
from repro.evalkit.harness import run_evaluation
from repro.obs import Observer
from repro.testbed import load_engine_pages

#: engines included in the stage profile (small but multi-section heavy)
STAGE_LIMIT = 8

#: engines for the pipeline-layer bench: one single-, one multi-section
PIPELINE_ENGINES = (3, 85)

OUTPUT = os.environ.get("REPRO_BENCH_STATS", "BENCH_stages.json")
OUTPUT_PIPELINE = os.environ.get("REPRO_BENCH_PIPELINE", "BENCH_pipeline.json")


def test_stage_stats_emitted():
    obs = Observer()
    run = run_evaluation("all", limit=STAGE_LIMIT, obs=obs)
    assert run.engines

    stats = obs.stats()
    stages = {span["name"] for span in stats["spans"]}
    # Every induction stage must be attributable.
    for stage in (
        "render", "mre", "dse", "refine", "mine",
        "granularity", "grouping", "wrapper", "families",
    ):
        assert stage in stages, f"stage {stage} missing from trace"
    # The cache hit-rate gauge is the headline perf metric.
    assert "record_distance_cache.hit_rate" in stats["metrics"]["gauges"]

    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
    print(f"\nper-stage stats written to {OUTPUT}")
    for span in stats["spans"]:
        print(
            f"  {span['path']:<24s} {span['calls']:>4d}x "
            f"{span['seconds'] * 1000:>9.1f}ms"
        )


def _timed_induction(samples, **kwargs):
    start = time.perf_counter()
    engine = build_wrapper(samples, **kwargs)
    return wrapper_to_json(engine), time.perf_counter() - start


def test_pipeline_bench_emitted(tmp_path):
    """Checkpoint write/read overhead and jobs=N scaling → BENCH_pipeline.json."""
    report = {"format": "repro-bench-pipeline", "version": 1, "engines": {}}
    for engine_id in PIPELINE_ENGINES:
        samples = load_engine_pages(engine_id).sample_set
        ck = tmp_path / f"ck-{engine_id}"

        serial, serial_s = _timed_induction(samples)
        jobs2, jobs2_s = _timed_induction(samples, jobs=2)
        cold, cold_s = _timed_induction(samples, checkpoint_dir=str(ck))
        warm, warm_s = _timed_induction(
            samples, checkpoint_dir=str(ck), resume=True
        )

        # The layer's invariant: every variant is byte-identical.
        assert jobs2 == serial, f"jobs=2 wrapper differs (engine {engine_id})"
        assert cold == serial, f"checkpointed wrapper differs (engine {engine_id})"
        assert warm == serial, f"resumed wrapper differs (engine {engine_id})"

        store_bytes = sum(
            entry.stat().st_size for entry in ck.iterdir() if entry.is_file()
        )
        report["engines"][str(engine_id)] = {
            "pages": len(samples),
            "serial_seconds": serial_s,
            "jobs2_seconds": jobs2_s,
            "checkpoint_cold_seconds": cold_s,
            "checkpoint_write_overhead_seconds": cold_s - serial_s,
            "resume_seconds": warm_s,
            "resume_speedup": serial_s / warm_s if warm_s else None,
            "checkpoint_bytes": store_bytes,
        }

    with open(OUTPUT_PIPELINE, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\npipeline bench written to {OUTPUT_PIPELINE}")
    for engine_id, row in report["engines"].items():
        print(
            f"  engine {engine_id}: serial {row['serial_seconds'] * 1000:.0f}ms"
            f"  jobs2 {row['jobs2_seconds'] * 1000:.0f}ms"
            f"  ckpt-cold {row['checkpoint_cold_seconds'] * 1000:.0f}ms"
            f"  resume {row['resume_seconds'] * 1000:.0f}ms"
            f"  store {row['checkpoint_bytes']}B"
        )
