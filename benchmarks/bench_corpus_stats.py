"""§2 corpus statistic — explicit section boundary markers.

"Our investigation based on the result pages of 200 search engines shows
that 96.9% of the sections have explicit boundary markers."

The synthetic corpus models the same rate; this bench regenerates the
statistic and times corpus page generation (the substrate every other
experiment pays for).
"""

from repro.testbed import boundary_marker_rate, load_engine_pages, make_engine


def test_boundary_marker_rate(benchmark):
    rate = benchmark(boundary_marker_rate)
    print()
    print(f"sections with explicit boundary markers: {rate * 100:.1f}% (paper: 96.9%)")
    assert 0.93 <= rate <= 1.0


def test_page_generation_speed(benchmark):
    engine = make_engine(100)
    markup = benchmark(engine.result_page, "lunar eclipse")
    assert "<html>" in markup


def test_engine_workload_generation(benchmark):
    pages = benchmark(load_engine_pages, 42, 4)
    assert len(pages.pages) == 4
