"""Monitor overhead and drift-detection latency for benchmark trajectories.

Two questions a deployment asks of the health monitor:

- **Overhead** — how much does routing every served page through
  :meth:`WrapperMonitor.observe_page` cost on top of the bare
  ``check_wrapper`` call it wraps (window/EWMA/Page–Hinkley updates plus
  event logging)?
- **Latency** — how many pages after a template mutation does the
  monitor confirm drift, per mutation family, and does healing recover?

Both are written to ``BENCH_health.json`` (override the path with
``REPRO_BENCH_HEALTH``) so the trajectory across commits shows when a
detector change trades latency for false-positive robustness, or when
monitor bookkeeping starts to eat into the serving path.
"""

import json
import os
import time

from repro.core.mse import build_wrapper
from repro.core.verify import check_wrapper
from repro.monitor import MonitorConfig, WrapperMonitor
from repro.testbed import SAMPLE_PAGES, load_engine_pages, load_evolving_pages

OUTPUT = os.environ.get("REPRO_BENCH_HEALTH", "BENCH_health.json")

#: engine for the overhead profile (single-section, cheap check)
OVERHEAD_ENGINE = 3
#: pages routed through the monitor per overhead measurement
OVERHEAD_PAGES = 60

#: (engine, mutation, expect_recovery) for the latency profile: the
#: textbook single-section engine across every breaking family, plus
#: the noisy multi-section engine whose first heal legitimately fails.
#: ``section_drop`` on a single-section engine is unhealable by design:
#: the engine retired its only schema, so no re-induced wrapper can
#: score healthy — the monitor must detect, attempt, and keep retrying.
LATENCY_CASES = (
    (3, "marker_rewrite", True),
    (3, "style_swap", True),
    (3, "section_drop", False),
    (90, "marker_rewrite", True),
)


def _monitor_overhead():
    pages = load_engine_pages(OVERHEAD_ENGINE)
    wrapper = build_wrapper(pages.sample_set)
    stream = [
        pages.sample_set[index % len(pages.sample_set)]
        for index in range(OVERHEAD_PAGES)
    ]

    start = time.perf_counter()
    for markup, query in stream:
        check_wrapper(wrapper, markup, query)
    bare_s = time.perf_counter() - start

    monitor = WrapperMonitor(wrapper)
    start = time.perf_counter()
    for markup, query in stream:
        monitor.observe_page(markup, query)
    monitored_s = time.perf_counter() - start

    return {
        "pages": OVERHEAD_PAGES,
        "bare_check_seconds_per_page": bare_s / OVERHEAD_PAGES,
        "monitored_seconds_per_page": monitored_s / OVERHEAD_PAGES,
        "overhead_seconds_per_page": (monitored_s - bare_s) / OVERHEAD_PAGES,
        "overhead_ratio": monitored_s / bare_s if bare_s else None,
    }


def _detection_case(engine_id, mutation):
    evolving = load_evolving_pages(engine_id, mutation)
    wrapper = build_wrapper(evolving.sample_set)
    monitor = WrapperMonitor(wrapper, MonitorConfig(heal=True))
    for markup, query in evolving.stream(SAMPLE_PAGES):
        monitor.observe_page(markup, query)
    summary = monitor.summary()
    detected = [SAMPLE_PAGES + page for page in summary.drift_pages]
    return {
        "engine": engine_id,
        "mutation": mutation,
        "mutate_at": evolving.truth.mutate_at,
        "pages_monitored": summary.pages,
        "drifts": summary.drifts,
        "detected_at": detected,
        "detection_latency_pages": (
            evolving.truth.detection_latency(detected[0]) if detected else None
        ),
        "reinductions": summary.reinductions,
        "heals": summary.heals,
        "recovered": summary.state == "healthy",
        "mean_score": summary.mean_score,
    }


def test_health_bench_emitted():
    overhead = _monitor_overhead()
    # The monitor must stay a thin layer over the health check itself.
    assert overhead["overhead_ratio"] < 2.0

    cases = []
    for engine_id, mutation, expect_recovery in LATENCY_CASES:
        row = _detection_case(engine_id, mutation)
        assert row["drifts"] >= 1, f"{engine_id}/{mutation}: no drift detected"
        assert row["detected_at"][0] >= row["mutate_at"], (
            f"{engine_id}/{mutation}: false positive before the mutation"
        )
        if expect_recovery:
            assert row["recovered"], (
                f"{engine_id}/{mutation}: heal did not recover"
            )
        else:
            # Unhealable by construction — but the monitor must have tried.
            assert row["reinductions"] >= 1, (
                f"{engine_id}/{mutation}: no re-induction attempted"
            )
        cases.append(row)

    report = {
        "format": "repro-bench-health",
        "version": 1,
        "overhead": overhead,
        "detection": cases,
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(f"\nhealth bench written to {OUTPUT}")
    print(
        f"  overhead: {overhead['overhead_seconds_per_page'] * 1000:.2f}ms/page"
        f" ({overhead['overhead_ratio']:.2f}x bare check)"
    )
    for row in cases:
        print(
            f"  engine {row['engine']:>3d} {row['mutation']:<15s}"
            f" latency {row['detection_latency_pages']} page(s)"
            f"  heals {row['heals']}/{row['reinductions']}"
            f"  recovered {row['recovered']}"
        )
