"""MSE — Multiple Section Extraction from search engine result pages.

A full reproduction of "Automatic Extraction of Dynamic Record Sections
From Search Engine Result Pages" (Zhao, Meng, Yu — VLDB 2006).

The top-level package lazily re-exports the primary public API:

- :func:`repro.core.mse.build_wrapper` / :class:`repro.core.mse.MSE` —
  wrapper induction from sample result pages.
- :class:`repro.core.wrapper.EngineWrapper` — the induced wrapper; applies
  to new result pages and returns sections with their records.
- :mod:`repro.testbed` — the synthetic search-engine corpus used by the
  evaluation harness.
"""

_EXPORTS = {
    "MSE": "repro.core.mse",
    "MSEConfig": "repro.core.mse",
    "build_wrapper": "repro.core.mse",
    "EngineWrapper": "repro.core.wrapper",
    "ExtractedSection": "repro.core.model",
    "ExtractedRecord": "repro.core.model",
    "PageExtraction": "repro.core.model",
}

__all__ = sorted(_EXPORTS)

__version__ = "1.0.0"


def __getattr__(name):
    """Lazily resolve the public API (PEP 562).

    Keeps ``import repro.htmlmod`` & friends cheap and free of circular
    imports while still offering ``from repro import build_wrapper``.
    """
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
