"""Tunable weights and constants for the feature measures.

The paper fixes ``K = 0.127`` for position distances and ``W = 1.8`` for
the refinement threshold, but leaves the line-distance weights ``u1..u3``
(Formula 3) and record-distance weights ``v1..v5`` (Formula 4) as
parameters tuned on sample pages.  The defaults below were tuned on the
test bed's training pages; benches sweep them for the ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class FeatureConfig:
    """Weights/constants for Formulas 1-7."""

    #: K in Dpl = K * log(1 + |pc1 - pc2|) (paper §4.3)
    position_k: float = 0.127

    #: (u1, u2, u3) — weights of type, position, text-attribute distances
    #: in the line distance Dline (Formula 3); must sum to 1.
    line_weights: Tuple[float, float, float] = (0.4, 0.3, 0.3)

    #: (v1..v5) — weights of tag-forest, block-type, block-shape,
    #: block-position, block-text-attribute distances in the record
    #: distance Drec (Formula 4); must sum to 1.
    record_weights: Tuple[float, float, float, float, float] = (
        0.30,
        0.25,
        0.15,
        0.10,
        0.20,
    )

    #: W — the refinement threshold multiplier (§5.3, §5.5)
    refine_w: float = 1.8

    #: use the fingerprint/memo fast kernels of :mod:`repro.perf` for the
    #: record distance (Formula 4).  The fast paths are score-identical to
    #: the reference implementations (property-tested in
    #: ``tests/test_perf_kernels.py``); the switch exists so benchmarks
    #: and tests can run the naive kernels side by side.
    fast_kernels: bool = True

    #: floor applied to Dinr(OL) when used as a scale in W * Dinr —
    #: identical records have Dinr 0, which would make the refinement
    #: threshold vacuous; the paper does not discuss this corner, so a
    #: small floor keeps the comparisons meaningful.
    dinr_floor: float = 0.05

    def __post_init__(self) -> None:
        if abs(sum(self.line_weights) - 1.0) > 1e-9:
            raise ValueError("line_weights must sum to 1")
        if abs(sum(self.record_weights) - 1.0) > 1e-9:
            raise ValueError("record_weights must sum to 1")


DEFAULT_CONFIG = FeatureConfig()
