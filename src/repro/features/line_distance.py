"""Line-level distances: Dtl, Dpl, Dtal and Dline (Formulas 2-3)."""

from __future__ import annotations

import math
from typing import FrozenSet

from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.render.lines import ContentLine
from repro.render.linetypes import type_distance
from repro.render.styles import TextAttr


def position_distance(
    pc1: int, pc2: int, config: FeatureConfig = DEFAULT_CONFIG
) -> float:
    """Dpl = K * log(1 + |pc1 - pc2|), clamped to [0, 1] (paper §4.3).

    With K = 0.127 the value stays below 1 for position gaps up to
    ~2600 px; the paper notes K "will restrict Dpl to be between 0 to 1 in
    most cases" — we clamp the rest.
    """
    value = config.position_k * math.log1p(abs(pc1 - pc2))
    return min(1.0, value)


def text_attr_distance(la1: FrozenSet[TextAttr], la2: FrozenSet[TextAttr]) -> float:
    """Dtal (Formula 2): 1 - |la1 ∩ la2| / max(|la1|, |la2|).

    Two empty attribute sets are identical (distance 0).
    """
    larger = max(len(la1), len(la2))
    if larger == 0:
        return 0.0
    return 1.0 - len(la1 & la2) / larger


def line_distance(
    line1: ContentLine,
    line2: ContentLine,
    config: FeatureConfig = DEFAULT_CONFIG,
) -> float:
    """Dline (Formula 3): weighted sum of type, position and attr distances."""
    if line1 is line2 or (
        line1.line_type == line2.line_type
        and line1.position == line2.position
        and line1.attrs == line2.attrs
    ):
        # All three component distances are exactly 0 for identical
        # features (Dtl(t,t) = 0, Dpl = K*log1p(0) = 0, Dtal = 0), so the
        # weighted sum is exactly 0.0.
        return 0.0
    u1, u2, u3 = config.line_weights
    return (
        u1 * type_distance(line1.line_type, line2.line_type)
        + u2 * position_distance(line1.position, line2.position, config)
        + u3 * text_attr_distance(line1.attrs, line2.attrs)
    )
