"""Record diversity, inter-record distance and section cohesion (F5-F7).

The paper's key observation (§4.4): records within a section tend to be
similar to *each other*, while the lines within one record tend to be
dissimilar to each other.  A good partition of a section's content lines
into records therefore has high average record diversity and low
inter-record distance; :func:`section_cohesion` (Formula 7) scores a
candidate partition accordingly, and record mining picks the partition
with the highest cohesion.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence

from repro.features.blocks import Block
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.line_distance import line_distance
from repro.features.record_distance import RecordDistanceCache


def record_diversity(
    record: Block,
    config: FeatureConfig = DEFAULT_CONFIG,
    cache: Optional[RecordDistanceCache] = None,
) -> float:
    """Div(r) (Formula 6): mean pairwise line distance within a record.

    A single-line record has diversity 0.  With a cache the value is
    memoized by the record's line span, so candidate partitions sharing
    sub-blocks (as ``best_partition``'s inputs always do) pay for each
    span once.
    """
    if cache is not None:
        return cache.diversity(record)
    lines = record.lines
    if len(lines) < 2:
        return 0.0
    total = sum(line_distance(l1, l2, config) for l1, l2 in combinations(lines, 2))
    pairs = len(lines) * (len(lines) - 1) // 2
    return total / pairs


def inter_record_distance(
    records: Sequence[Block],
    config: FeatureConfig = DEFAULT_CONFIG,
    cache: Optional[RecordDistanceCache] = None,
) -> float:
    """Dinr(S) (Formula 5): mean pairwise record distance in a section.

    A section with fewer than two records has inter-record distance 0.
    """
    if len(records) < 2:
        return 0.0
    if cache is None:
        cache = RecordDistanceCache(config)
    total = sum(cache.distance(r1, r2) for r1, r2 in combinations(records, 2))
    pairs = len(records) * (len(records) - 1) // 2
    return total / pairs


def section_cohesion(
    records: Sequence[Block],
    config: FeatureConfig = DEFAULT_CONFIG,
    cache: Optional[RecordDistanceCache] = None,
) -> float:
    """Cohs(S) (Formula 7): (mean Div) / (1 + Dinr).

    Higher is better: internally heterogeneous records that resemble each
    other score highest.
    """
    if not records:
        return 0.0
    mean_diversity = sum(record_diversity(r, config, cache) for r in records) / len(records)
    return mean_diversity / (1.0 + inter_record_distance(records, config, cache))


def best_partition(
    partitions: Sequence[List[Block]],
    config: FeatureConfig = DEFAULT_CONFIG,
    cache: Optional[RecordDistanceCache] = None,
) -> List[Block]:
    """The candidate partition with the highest section cohesion.

    Ties are broken toward the partition with *more* records (finer), then
    toward the earlier candidate — Formula 7 ties occur when every line is
    visually identical (e.g. a section of bare link lines), where the finer
    reading "one record per repeating unit" is the correct one.
    """
    if not partitions:
        raise ValueError("no candidate partitions")
    if cache is None:
        cache = RecordDistanceCache(config)
    scored = [
        (section_cohesion(p, config, cache), len(p), -index, p)
        for index, p in enumerate(partitions)
    ]
    scored.sort(key=lambda item: (item[0], item[1], item[2]))
    return scored[-1][3]
