"""Blocks: consecutive content-line spans (paper §4.2).

"One or more consecutive content lines form a block"; any search result
record on a rendered page is a block.  A :class:`Block` is a view over a
``RenderedPage`` line span carrying the derived visual features (block
type code, block shape, block text attributes) and, lazily, the tag
forest underneath it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, List, Optional, Sequence, Tuple

from repro.algorithms.tree_edit import OrderedTree
from repro.render.lines import ContentLine, RenderedPage
from repro.render.linetypes import LineType
from repro.render.styles import TextAttr

if TYPE_CHECKING:
    from repro.htmlmod.dom import Element
    from repro.perf.fingerprints import BlockFingerprint


class Block:
    """A consecutive span of content lines ``start..end`` (inclusive)."""

    __slots__ = ("page", "start", "end", "_elements", "_forest", "_fp")

    def __init__(self, page: RenderedPage, start: int, end: int) -> None:
        if start > end:
            raise ValueError(f"empty block: start={start} > end={end}")
        if start < 0 or end >= len(page.lines):
            raise ValueError(f"block [{start}, {end}] outside page of {len(page.lines)} lines")
        self.page = page
        self.start = start
        self.end = end
        self._elements: Optional[List["Element"]] = None
        self._forest: Optional[List[OrderedTree]] = None
        #: lazily filled by repro.perf.fingerprints.block_fingerprint
        self._fp: Optional["BlockFingerprint"] = None

    # -- identity -----------------------------------------------------------
    def __len__(self) -> int:
        return self.end - self.start + 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Block)
            and other.page is self.page
            and other.start == self.start
            and other.end == self.end
        )

    def __hash__(self) -> int:
        return hash((id(self.page), self.start, self.end))

    def __repr__(self) -> str:
        return f"Block[{self.start}..{self.end}]"

    # -- features --------------------------------------------------------------
    @property
    def lines(self) -> List[ContentLine]:
        """The member content lines."""
        return self.page.lines[self.start : self.end + 1]

    @property
    def type_codes(self) -> Tuple[LineType, ...]:
        """Block type code: the sequence of member line types."""
        return tuple(line.line_type for line in self.lines)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Block shape: the left contour, relative to the first line.

        Relative offsets make the shape translation-invariant so that two
        records at different absolute x (e.g. in different sections)
        compare by their internal silhouette.
        """
        lines = self.lines
        base = lines[0].position
        return tuple(line.position - base for line in lines)

    @property
    def position(self) -> int:
        """The block's own position code: the left x of its first line."""
        return self.page.lines[self.start].position

    @property
    def text_attrs(self) -> Tuple[FrozenSet[TextAttr], ...]:
        """Block text attribute: the list of member line attribute sets."""
        return tuple(line.attrs for line in self.lines)

    @property
    def text(self) -> str:
        """Concatenated member text (debug/reporting)."""
        return " / ".join(line.text for line in self.lines if line.text)

    def span_elements(self) -> List["Element"]:
        """The forest's root elements (``page.span_forest``, cached)."""
        if self._elements is None:
            self._elements = self.page.span_forest(self.start, self.end)
        return self._elements

    def tag_forest(self) -> List[OrderedTree]:
        """The tag forest underneath this block (cached).

        Fingerprinting reads the forest *signatures* straight off
        :meth:`span_elements`; the :class:`OrderedTree` forms built here
        are only needed when a tree-edit dynamic program actually runs
        (a miss in every distance memo), so they stay lazy.
        """
        if self._forest is None:
            self._forest = [
                OrderedTree.from_tuple(element.tag_signature())
                for element in self.span_elements()
            ]
        return self._forest

    def overlaps(self, other: "Block") -> bool:
        """Whether two blocks on the same page share any line."""
        return self.start <= other.end and other.start <= self.end

    def contains(self, other: "Block") -> bool:
        """Whether this block fully contains ``other``."""
        return self.start <= other.start and other.end <= self.end

    def overlap_size(self, other: "Block") -> int:
        """Number of shared lines."""
        return max(0, min(self.end, other.end) - max(self.start, other.start) + 1)


def partition_block(block: Block, boundaries: Sequence[int]) -> List[Block]:
    """Split ``block`` at the given first-line numbers.

    ``boundaries`` are absolute line numbers that start new sub-blocks;
    the block's own start is implied.  Returns the sub-blocks in order.
    """
    starts = sorted({block.start, *boundaries})
    if starts[0] < block.start or starts[-1] > block.end:
        raise ValueError("boundaries outside the block")
    out: List[Block] = []
    for i, begin in enumerate(starts):
        finish = starts[i + 1] - 1 if i + 1 < len(starts) else block.end
        out.append(Block(block.page, begin, finish))
    return out
