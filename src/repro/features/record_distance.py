"""Block/record-level distances: Dtf, Dbt, Dbs, Dbp, Dbta and Drec (F4).

The module-level distance functions are the *reference* kernels — the
paper's formulas computed directly over the block features.
:func:`record_distance` additionally owns the production fast path:
with ``config.fast_kernels`` (the default) it compares the compact
interned fingerprints of :mod:`repro.perf` — bitmask Dtal, memoized
tag-forest distance, identity-checked feature tuples — which are
score-identical to the reference kernels (property-tested in
``tests/test_perf_kernels.py``, benchmarked in
``benchmarks/bench_kernels.py``).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.algorithms.string_edit import normalized_edit_distance
from repro.algorithms.tree_edit import forest_distance as _tree_forest_distance
from repro.features.blocks import Block
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.line_distance import position_distance, text_attr_distance
from repro.perf.fingerprints import block_fingerprint, masked_attr_distance
from repro.perf.kernels import RECORD_MEMO, lazy_forest_distance
from repro.render.linetypes import type_distance


def block_type_distance(block1: Block, block2: Block) -> float:
    """Dbt: normalized edit distance between the blocks' type-code strings.

    Substitution cost is the line type distance, so e.g. LINK vs LINK_TEXT
    lines count as near-matches.  Normalized to [0, 1] by the longer block.
    """
    return normalized_edit_distance(
        block1.type_codes, block2.type_codes, substitution_cost=type_distance
    )


def block_shape_distance(
    block1: Block, block2: Block, config: FeatureConfig = DEFAULT_CONFIG
) -> float:
    """Dbs: normalized edit distance between the blocks' left contours.

    Shapes are relative offsets from each block's own first line, and the
    substitution cost of two offsets is their (bounded) position distance,
    giving a value in [0, 1].
    """

    def offset_cost(a: int, b: int) -> float:
        return position_distance(a, b, config)

    return normalized_edit_distance(block1.shape, block2.shape, substitution_cost=offset_cost)


def block_position_distance(
    block1: Block, block2: Block, config: FeatureConfig = DEFAULT_CONFIG
) -> float:
    """Dbp: position distance between the blocks' own position codes."""
    return position_distance(block1.position, block2.position, config)


def block_text_attr_distance(block1: Block, block2: Block) -> float:
    """Dbta: normalized edit distance between the blocks' attribute lists.

    Substitution cost is Dtal (Formula 2), per §4.2.
    """
    return normalized_edit_distance(
        block1.text_attrs, block2.text_attrs, substitution_cost=text_attr_distance
    )


def tag_forest_distance(block1: Block, block2: Block) -> float:
    """Dtf: normalized edit distance between the blocks' tag forests."""
    return _tree_forest_distance(block1.tag_forest(), block2.tag_forest())


def record_distance(
    block1: Block,
    block2: Block,
    config: FeatureConfig = DEFAULT_CONFIG,
) -> float:
    """Drec (Formula 4): weighted sum of the five block distances."""
    if block1 is block2 or (
        block1.page is block2.page
        and block1.start == block2.start
        and block1.end == block2.end
    ):
        # The same line span: every component distance is exactly 0.
        return 0.0
    if not config.fast_kernels:
        return _record_distance_reference(block1, block2, config)

    fp1 = block_fingerprint(block1)
    fp2 = block_fingerprint(block2)
    if fp1 == fp2:
        # Identical features (including position): all five terms are 0.
        return 0.0
    # Drec is a pure function of the two fingerprints and the config, so
    # the weighted sum is memoized process-wide: the serving loop's
    # health checks meet the same record-style pairs on page after page.
    # The pair is canonicalized by the fingerprints' value hashes, which
    # is deterministic for equal fingerprints wherever they were built.
    if hash(fp1) <= hash(fp2):
        memo_key = (config, fp1, fp2)
    else:
        memo_key = (config, fp2, fp1)
    memoized = RECORD_MEMO.get(memo_key)
    if memoized is not None:
        return memoized
    v1, v2, v3, v4, v5 = config.record_weights

    if fp1.forest_sig is fp2.forest_sig:
        dtf = 0.0
    else:
        # Thunked: the OrderedTree forests are only materialized when the
        # forest memo misses — in the warm serving loop, almost never.
        dtf = lazy_forest_distance(
            block1.tag_forest, block2.tag_forest, fp1.forest_sig, fp2.forest_sig
        )

    if fp1.type_codes is fp2.type_codes:
        dbt = 0.0
    else:
        dbt = normalized_edit_distance(
            fp1.type_codes, fp2.type_codes, substitution_cost=type_distance
        )

    if fp1.shape is fp2.shape:
        dbs = 0.0
    else:

        def offset_cost(a: int, b: int) -> float:
            return position_distance(a, b, config)

        dbs = normalized_edit_distance(
            fp1.shape, fp2.shape, substitution_cost=offset_cost
        )

    dbp = position_distance(fp1.position, fp2.position, config)

    if fp1.attr_masks is fp2.attr_masks:
        dbta = 0.0
    else:
        dbta = normalized_edit_distance(
            fp1.attr_masks, fp2.attr_masks, substitution_cost=masked_attr_distance
        )

    result = v1 * dtf + v2 * dbt + v3 * dbs + v4 * dbp + v5 * dbta
    RECORD_MEMO.store(memo_key, result)
    return result


def _record_distance_reference(
    block1: Block,
    block2: Block,
    config: FeatureConfig = DEFAULT_CONFIG,
) -> float:
    """Formula 4 over the naive kernels (the fast path's oracle)."""
    v1, v2, v3, v4, v5 = config.record_weights
    return (
        v1 * tag_forest_distance(block1, block2)
        + v2 * block_type_distance(block1, block2)
        + v3 * block_shape_distance(block1, block2, config)
        + v4 * block_position_distance(block1, block2, config)
        + v5 * block_text_attr_distance(block1, block2)
    )


class RecordDistanceCache:
    """Memoizes pairwise record distances within one extraction run.

    Refinement and granularity analysis recompute Drec for the same block
    pairs many times; blocks hash by (page, start, end) so a small dict
    cache removes the duplicate tree-edit work.  A second memo serves
    record diversity (Formula 6), which ``best_partition`` would
    otherwise recompute for every sub-block shared between candidate
    partitions.

    The cache keeps hit/miss counters so the observability layer can
    report how much duplicate work memoization actually removed (the
    ``cache.hits`` / ``cache.misses`` stage counters and the
    ``record_distance_cache.hit_rate`` / ``diversity_cache.hit_rate``
    gauges).
    """

    def __init__(self, config: FeatureConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        self._cache: Dict[Tuple[Tuple[int, int, int], Tuple[int, int, int]], float] = {}
        self.hits = 0
        self.misses = 0
        self._diversity: Dict[Tuple[int, int, int], float] = {}
        self.diversity_hits = 0
        self.diversity_misses = 0

    def distance(self, block1: Block, block2: Block) -> float:
        """Drec with memoization (symmetric)."""
        key1 = (id(block1.page), block1.start, block1.end)
        key2 = (id(block2.page), block2.start, block2.end)
        key = (key1, key2) if key1 <= key2 else (key2, key1)
        found = self._cache.get(key)
        if found is None:
            self.misses += 1
            found = record_distance(block1, block2, self.config)
            self._cache[key] = found
        else:
            self.hits += 1
        return found

    def diversity(self, block: Block) -> float:
        """Div(r) (Formula 6) with memoization by the block's line span."""
        key = (id(block.page), block.start, block.end)
        found = self._diversity.get(key)
        if found is None:
            self.diversity_misses += 1
            from repro.features.cohesion import record_diversity

            found = record_diversity(block, self.config)
            self._diversity[key] = found
        else:
            self.diversity_hits += 1
        return found

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def diversity_hit_rate(self) -> float:
        """Fraction of diversity lookups served from the cache."""
        total = self.diversity_hits + self.diversity_misses
        return self.diversity_hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters plus derived rate and current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._cache),
            "diversity_hits": self.diversity_hits,
            "diversity_misses": self.diversity_misses,
            "diversity_hit_rate": self.diversity_hit_rate,
            "diversity_entries": len(self._diversity),
        }

    def average_to_group(self, block: Block, group: Sequence[Block]) -> float:
        """Davgrs(block, group): mean Drec from ``block`` to each member."""
        if not group:
            return 0.0
        return sum(self.distance(block, member) for member in group) / len(group)
