"""Feature measures of the paper (Formulas 2-7) over content lines and blocks."""

from repro.features.blocks import Block, partition_block
from repro.features.cohesion import (
    best_partition,
    inter_record_distance,
    record_diversity,
    section_cohesion,
)
from repro.features.config import DEFAULT_CONFIG, FeatureConfig
from repro.features.line_distance import line_distance, position_distance, text_attr_distance
from repro.features.record_distance import (
    RecordDistanceCache,
    block_position_distance,
    block_shape_distance,
    block_text_attr_distance,
    block_type_distance,
    record_distance,
    tag_forest_distance,
)

__all__ = [
    "Block",
    "DEFAULT_CONFIG",
    "FeatureConfig",
    "RecordDistanceCache",
    "best_partition",
    "block_position_distance",
    "block_shape_distance",
    "block_text_attr_distance",
    "block_type_distance",
    "inter_record_distance",
    "line_distance",
    "partition_block",
    "position_distance",
    "record_distance",
    "record_diversity",
    "section_cohesion",
    "tag_forest_distance",
    "text_attr_distance",
]
