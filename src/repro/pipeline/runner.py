"""The pipeline runner: executes stages with checkpoints and fan-out.

The runner walks an ordered stage list (:func:`repro.pipeline.stages
.induction_stages`) over one :class:`InductionContext`:

- consecutive *page* stages form a group; with ``jobs > 1`` the group
  fans its pages out over a process pool (each worker deterministically
  re-renders its page, runs the group's stage chain and ships encoded
  artifacts plus its observer stats back);
- *barrier* stages always run serially in the parent.

With an :class:`~repro.pipeline.artifacts.ArtifactStore` attached, every
checkpointed stage's outputs are persisted and a resumed run loads them
instead of recomputing — per page for page stages, per page *set* for
barriers.  Cached results do not count as *fresh*; a stage actually
re-executed marks its outputs fresh, and any stage whose inputs are
fresh ignores its own cache.  That is what makes "delete one stage file,
resume" re-run exactly that stage and its dependents, and what keeps a
grown sample set sound (the DSE barrier re-runs, so everything past it
recomputes while per-page MRE artifacts are reused).

Stages are pure over rendering (no wall-clock, no randomness, no
iteration-order dependence — enforced by ``repro.analysis``), so serial,
parallel and resumed runs produce bit-identical wrappers.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from contextlib import contextmanager

from repro.core.dse import clean_page_lines
from repro.core.mse_config import MSEConfig
from repro.features.record_distance import RecordDistanceCache
from repro.htmlmod.parser import parse_html
from repro.obs import NULL_OBSERVER, Observer
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.context import InductionContext
from repro.pipeline.stages import (
    PAGE_STAGES,
    BarrierStage,
    PageStage,
    Stage,
    decode_artifact,
    encode_artifact,
)
from repro.render.layout import render_page

#: freshness mark meaning "every page" (barrier-scope artifacts)
_ALL = -1

#: one fan-out task: (page index, markup, query, stage names, encoded
#: inputs, config, parent-observer-enabled)
_WorkerTask = Tuple[int, str, str, Tuple[str, ...], Dict[str, Any], MSEConfig, bool]
#: one fan-out result: (page index, encoded outputs, observer stats)
_WorkerResult = Tuple[int, Dict[str, Any], Optional[Dict[str, Any]]]


def _page_worker(task: _WorkerTask) -> _WorkerResult:
    """Run a chain of page stages for one page inside a pool worker.

    Top-level (multiprocessing pickles it).  The worker re-renders the
    page from its HTML — rendering is deterministic, so the decoded
    input artifacts attach to the same lines as in the parent — runs the
    requested stages and returns their encoded outputs together with the
    worker observer's stats document (merged into the parent observer).
    """
    index, markup, query, stage_names, encoded_inputs, config, observed = task
    obs = Observer() if observed else NULL_OBSERVER
    ctx = InductionContext(samples=[(markup, query)], config=config, obs=obs)
    page = render_page(parse_html(markup))
    ctx.artifacts["page"] = [page]
    ctx.caches = [RecordDistanceCache(config.features)]
    if "dss" in encoded_inputs or "csbms" in encoded_inputs:
        # Post-DSE stages read the cleaned line texts DSE fills in.
        clean_page_lines(page, query.split())
    for name, encoded in encoded_inputs.items():
        ctx.artifacts[name] = [decode_artifact(name, encoded, page)]

    outputs: Dict[str, Any] = {}
    for stage_name in stage_names:
        stage = PAGE_STAGES[stage_name]()
        with _booked_span(ctx, stage):
            produced = stage.run_page(ctx, 0)
        for name, value in produced.items():
            ctx.set_page_value(name, 0, value)
            outputs[name] = encode_artifact(name, value)
    return index, outputs, (obs.stats() if observed else None)


@contextmanager
def _booked_span(ctx: InductionContext, stage: Stage) -> Iterator[None]:
    """A stage span that books the stage's share of record-distance
    cache traffic as ``cache.hits`` / ``cache.misses`` counters (the
    trace shape the monolithic orchestrator established)."""
    if not stage.spanned:
        yield
        return
    with ctx.obs.span(stage.name):
        hits_before, misses_before = _cache_totals(ctx.caches)
        try:
            yield
        finally:
            hits_after, misses_after = _cache_totals(ctx.caches)
            if hits_after > hits_before:
                ctx.obs.count("cache.hits", hits_after - hits_before)
            if misses_after > misses_before:
                ctx.obs.count("cache.misses", misses_after - misses_before)


def _cache_totals(caches: Sequence[RecordDistanceCache]) -> Tuple[int, int]:
    return (
        sum(cache.hits for cache in caches),
        sum(cache.misses for cache in caches),
    )


class PipelineRunner:
    """Executes a stage list over a context; see the module docstring."""

    def __init__(
        self, jobs: int = 1, store: Optional[ArtifactStore] = None
    ) -> None:
        self.jobs = max(1, jobs)
        self.store = store
        #: artifact name -> page indices recomputed this run (_ALL = all)
        self._fresh: Dict[str, Set[int]] = {}

    # -- public ---------------------------------------------------------
    def run(self, ctx: InductionContext, stages: Sequence[Stage]) -> InductionContext:
        """Execute the stages in order; artifacts land in ``ctx``."""
        self._fresh = {}
        for group in _grouped(stages):
            self._ensure_caches(ctx)
            if isinstance(group[0], BarrierStage):
                assert len(group) == 1
                self._run_barrier(ctx, group[0])
            else:
                self._run_page_group(ctx, [s for s in group if isinstance(s, PageStage)])
        return ctx

    # -- freshness ------------------------------------------------------
    def _mark_fresh(self, name: str, index: int) -> None:
        self._fresh.setdefault(name, set()).add(index)

    def _inputs_fresh(self, requires: Sequence[str], index: Optional[int]) -> bool:
        """Whether any required artifact was recomputed this run.

        ``index`` scopes the check to one page; None means "any page"
        (barrier stages).  Rendered pages never count as fresh: rendering
        always re-runs but is deterministic, so it cannot invalidate.
        """
        for name in requires:
            if name == "page":
                continue
            marks = self._fresh.get(name)
            if not marks:
                continue
            if index is None or _ALL in marks or index in marks:
                return True
        return False

    # -- barrier stages -------------------------------------------------
    def _run_barrier(self, ctx: InductionContext, stage: BarrierStage) -> None:
        store = self.store if stage.checkpointed else None
        if store is not None and not self._inputs_fresh(stage.requires, None):
            payload = store.load_barrier(stage.name)
            if payload is not None:
                for name, value in stage.decode(ctx, payload).items():
                    ctx.artifacts[name] = value
                return

        previous = {name: ctx.artifacts.get(name) for name in stage.provides}
        with _booked_span(ctx, stage):
            produced = stage.run(ctx)
        for name, value in produced.items():
            ctx.artifacts[name] = value
            # An identity-returning hook (SelectStage's default) leaves
            # downstream caches valid; only a changed value is fresh.
            if stage.checkpointed or value is not previous.get(name):
                self._mark_fresh(name, _ALL)
        if store is not None:
            store.save_barrier(stage.name, stage.encode(ctx))

    # -- page-stage groups ----------------------------------------------
    def _run_page_group(
        self, ctx: InductionContext, group: List[PageStage]
    ) -> None:
        store = self.store
        cached: Dict[str, List[Optional[Any]]] = {}
        for stage in group:
            if store is not None and stage.checkpointed:
                cached[stage.name] = store.load_pages(stage.name)

        # Per page: index of the first stage in the chain that must run
        # (missing checkpoint or fresh inputs); everything after it runs
        # too, since its inputs become fresh.
        starts: List[int] = []
        for index in range(ctx.page_count):
            start = len(group)
            for position, stage in enumerate(group):
                values = cached.get(stage.name)
                if (
                    values is None
                    or values[index] is None
                    or self._inputs_fresh(stage.requires, index)
                ):
                    start = position
                    break
            starts.append(start)

        # Decode the cached prefix of every page's chain.
        for position, stage in enumerate(group):
            values = cached.get(stage.name)
            for index in range(ctx.page_count):
                if position < starts[index] and values is not None:
                    encoded = values[index]
                    assert encoded is not None
                    for name in stage.provides:
                        ctx.set_page_value(
                            name,
                            index,
                            decode_artifact(name, encoded[name], ctx.pages[index]),
                        )

        pending = [index for index in range(ctx.page_count) if starts[index] < len(group)]
        fanout = (
            self.jobs > 1
            and len(pending) > 1
            and all(stage.fanout for stage in group)
            and all(markup for markup, _ in ctx.samples)
        )
        computed: Dict[str, Dict[int, Dict[str, Any]]] = {
            stage.name: {} for stage in group
        }
        if fanout:
            self._run_group_parallel(ctx, group, starts, pending, computed)
        else:
            self._run_group_serial(ctx, group, starts, computed)

        for index in pending:
            for stage in group[starts[index]:]:
                for name in stage.provides:
                    if name != "page":
                        self._mark_fresh(name, index)

        if store is not None:
            for stage in group:
                if not stage.checkpointed:
                    continue
                encoded_pages = {
                    store.page_ids[index]: encoded
                    for index, encoded in sorted(computed[stage.name].items())
                }
                if encoded_pages:
                    store.save_pages(stage.name, encoded_pages)

    def _run_group_serial(
        self,
        ctx: InductionContext,
        group: List[PageStage],
        starts: List[int],
        computed: Dict[str, Dict[int, Dict[str, Any]]],
    ) -> None:
        """One span per stage, pages inside — the monolith's trace shape."""
        want_encoding = self.store is not None
        for position, stage in enumerate(group):
            indices = [i for i in range(ctx.page_count) if starts[i] <= position]
            if not indices:
                continue
            with _booked_span(ctx, stage):
                for index in indices:
                    produced = stage.run_page(ctx, index)
                    for name, value in produced.items():
                        ctx.set_page_value(name, index, value)
                    if want_encoding and stage.checkpointed:
                        computed[stage.name][index] = {
                            name: encode_artifact(name, value)
                            for name, value in produced.items()
                        }

    def _run_group_parallel(
        self,
        ctx: InductionContext,
        group: List[PageStage],
        starts: List[int],
        pending: List[int],
        computed: Dict[str, Dict[int, Dict[str, Any]]],
    ) -> None:
        """Fan pending pages out over a process pool.

        Workers return *encoded* artifacts; the parent decodes them
        against its own rendered pages, so downstream barrier stages see
        exactly what a serial run would have produced (the codecs are
        lossless over line spans).  Worker observer stats merge into the
        parent observer by span path, keeping one aggregate trace.
        """
        provides_at: Dict[int, Tuple[str, ...]] = {}
        tasks: List[_WorkerTask] = []
        for index in pending:
            chain = group[starts[index]:]
            names = tuple(stage.name for stage in chain)
            produced_names = {name for stage in chain for name in stage.provides}
            required = [
                name
                for stage in chain
                for name in stage.requires
                if name != "page" and name not in produced_names
            ]
            inputs = {
                name: encode_artifact(name, ctx.artifacts[name][index])
                for name in dict.fromkeys(required)
            }
            markup, query = ctx.samples[index]
            tasks.append(
                (index, markup, query, names, inputs, ctx.config, ctx.obs.enabled)
            )
            provides_at[index] = tuple(sorted(produced_names))

        collected: List[_WorkerResult] = []
        with multiprocessing.Pool(processes=min(self.jobs, len(tasks))) as pool:
            for result in pool.imap_unordered(_page_worker, tasks):
                collected.append(result)
        collected.sort(key=lambda item: item[0])

        stage_of: Dict[str, str] = {
            name: stage.name for stage in group for name in stage.provides
        }
        checkpointed = {stage.name for stage in group if stage.checkpointed}
        for index, outputs, stats in collected:
            page = ctx.pages[index]
            for name in provides_at[index]:
                encoded = outputs[name]
                ctx.set_page_value(name, index, decode_artifact(name, encoded, page))
                owner = stage_of[name]
                if owner in checkpointed:
                    computed[owner].setdefault(index, {})[name] = encoded
            if stats is not None:
                merge = getattr(ctx.obs, "merge_stats", None)
                if merge is not None:
                    merge(stats)

    # -- helpers --------------------------------------------------------
    def _ensure_caches(self, ctx: InductionContext) -> None:
        """Per-page record-distance caches, once pages exist."""
        if ctx.pages and len(ctx.caches) != len(ctx.pages):
            ctx.caches = [
                RecordDistanceCache(ctx.config.features) for _ in ctx.pages
            ]


def _grouped(stages: Sequence[Stage]) -> Iterator[List[Stage]]:
    """Split the stage list into fan-out units.

    Consecutive page stages with the same ``fanout`` flag form one
    group (their chains ship to a worker together, saving one re-render
    per stage); every barrier stage is its own group.
    """
    group: List[Stage] = []
    for stage in stages:
        if isinstance(stage, PageStage) and (
            not group
            or (
                isinstance(group[-1], PageStage)
                and group[-1].fanout == stage.fanout
            )
        ):
            group.append(stage)
            continue
        if group:
            yield group
        group = [stage] if isinstance(stage, PageStage) else []
        if not isinstance(stage, PageStage):
            yield [stage]
    if group:
        yield group
