"""The pipeline stages: typed inputs/outputs over the induction context.

Each paper step (§3, steps 1-9) is a :class:`Stage` with declared
``requires``/``provides`` artifact names.  *Page* stages run
independently per sample page — the runner may fan them out over worker
processes and checkpoint their per-page outputs.  *Barrier* stages need
every page's artifacts at once (DSE's cross-page voting, instance
grouping, wrapper construction, families) and always run serially in
the parent process.

Stage graph::

    render ─ mre ─┐
                  ├─ dse ═ refine ─ mine ─ granularity ─┐
    (per page)    │  (barrier)       (per page)         │
                  │                                     ├─ grouping ═ wrapper ═ families
                  └─────────────────────────────────────┘       (barriers)

Per-page artifacts are encoded/decoded with the span codecs of
:mod:`repro.core.serialize`; rendering is deterministic, so spans
re-attach to a re-rendered page bit-identically — the invariant behind
both process fan-out and checkpoint resume.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

from repro.core.dse import DynamicSection, clean_page_lines, run_dse
from repro.core.family import SectionFamily, build_families
from repro.core.granularity import resolve_granularity
from repro.core.grouping import InstanceGroup, group_section_instances
from repro.core.mining import mine_block
from repro.core.model import SectionInstance
from repro.core.mre import TentativeMR, extract_mrs
from repro.core.refine import refine_page
from repro.core.serialize import (
    ds_from_obj,
    ds_to_obj,
    engine_from_obj,
    engine_to_obj,
    mr_from_obj,
    mr_to_obj,
    section_instance_from_obj,
    section_instance_to_obj,
    section_wrapper_from_obj,
    section_wrapper_to_obj,
)
from repro.core.wrapper import EngineWrapper, SectionWrapper, build_section_wrapper
from repro.features.blocks import Block
from repro.pipeline.context import InductionContext
from repro.render.lines import RenderedPage

#: stage scopes
PAGE = "page"
BARRIER = "barrier"


class Stage:
    """Base of all pipeline stages: a named, typed pipeline step."""

    #: stage name; also the span name and the checkpoint file stem
    name: ClassVar[str]
    #: ``PAGE`` (independent per page, fan-out-able) or ``BARRIER``
    scope: ClassVar[str]
    #: artifact names this stage reads
    requires: ClassVar[Tuple[str, ...]] = ()
    #: artifact names this stage writes
    provides: ClassVar[Tuple[str, ...]] = ()
    #: whether the runner persists this stage's outputs to the store
    checkpointed: ClassVar[bool] = True
    #: whether the runner opens an observer span for this stage
    spanned: ClassVar[bool] = True


class PageStage(Stage):
    """A stage that runs once per sample page, independently."""

    scope = PAGE
    #: page stages may be fanned out unless their output is process-bound
    fanout: ClassVar[bool] = True

    def run_page(self, ctx: InductionContext, index: int) -> Dict[str, Any]:
        """Produce this stage's artifacts for page ``index``."""
        raise NotImplementedError


class BarrierStage(Stage):
    """A stage that needs all pages' artifacts at once (runs serially)."""

    scope = BARRIER

    def run(self, ctx: InductionContext) -> Dict[str, Any]:
        """Produce this stage's artifacts from the whole context."""
        raise NotImplementedError

    def encode(self, ctx: InductionContext) -> Any:
        """JSON-serializable checkpoint payload of this stage's outputs."""
        raise NotImplementedError

    def decode(self, ctx: InductionContext, obj: Any) -> Dict[str, Any]:
        """Rebuild this stage's artifacts from a checkpoint payload."""
        raise NotImplementedError


# -- per-page artifact codecs ----------------------------------------------
#
# Page-scope artifacts are encoded per value; the runner and the store
# never need stage-specific logic to persist or ship them.

_Encoder = Callable[[Any], Any]
_Decoder = Callable[[Any, RenderedPage], Any]


def _encode_csbms(value: Any) -> List[int]:
    return sorted(cast(Set[int], value))


def _decode_csbms(obj: Any, page: RenderedPage) -> Set[int]:
    return {int(n) for n in obj}


ARTIFACT_CODECS: Dict[str, Tuple[_Encoder, _Decoder]] = {
    "mrs": (
        lambda mrs: [mr_to_obj(mr) for mr in mrs],
        lambda obj, page: [mr_from_obj(o, page) for o in obj],
    ),
    "csbms": (_encode_csbms, _decode_csbms),
    "dss": (
        lambda dss: [ds_to_obj(ds) for ds in dss],
        lambda obj, page: [ds_from_obj(o, page) for o in obj],
    ),
    "pending": (
        lambda dss: [ds_to_obj(ds) for ds in dss],
        lambda obj, page: [ds_from_obj(o, page) for o in obj],
    ),
    "refined": (
        lambda sections: [section_instance_to_obj(s) for s in sections],
        lambda obj, page: [section_instance_from_obj(o, page) for o in obj],
    ),
    "mined": (
        lambda sections: [section_instance_to_obj(s) for s in sections],
        lambda obj, page: [section_instance_from_obj(o, page) for o in obj],
    ),
    "sections": (
        lambda sections: [section_instance_to_obj(s) for s in sections],
        lambda obj, page: [section_instance_from_obj(o, page) for o in obj],
    ),
}


def encode_artifact(name: str, value: Any) -> Any:
    """Encode one page's value of a page-scope artifact."""
    return ARTIFACT_CODECS[name][0](value)


def decode_artifact(name: str, obj: Any, page: RenderedPage) -> Any:
    """Decode one page's value of a page-scope artifact."""
    return ARTIFACT_CODECS[name][1](obj, page)


# -- concrete stages --------------------------------------------------------


class RenderStage(PageStage):
    """Step 1: parse + render every sample page (always re-runs).

    Rendered pages hold live DOM references and are therefore never
    checkpointed: rendering is deterministic and cheap relative to the
    distance-based stages, so resume re-renders and re-attaches spans.
    """

    name = "render"
    provides = ("page",)
    checkpointed = False
    fanout = False  # output is process-bound (live DOM)

    def run_page(self, ctx: InductionContext, index: int) -> Dict[str, Any]:
        from repro.htmlmod.parser import parse_html
        from repro.render.layout import render_page

        markup, _query = ctx.samples[index]
        page = render_page(parse_html(markup))
        ctx.obs.count("render.pages", 1)
        ctx.obs.count("render.lines", len(page.lines))
        return {"page": page}


class MreStage(PageStage):
    """Step 2 (§5.1): visual-pattern mining of multi-record sections."""

    name = "mre"
    requires = ("page",)
    provides = ("mrs",)

    def run_page(self, ctx: InductionContext, index: int) -> Dict[str, Any]:
        mrs = extract_mrs(
            ctx.pages[index], ctx.config.features, ctx.caches[index]
        )
        ctx.obs.count("mre.sections", len(mrs))
        ctx.obs.count("mre.records", sum(len(mr.records) for mr in mrs))
        return {"mrs": mrs}


class DseStage(BarrierStage):
    """Step 3 (§5.2): boundary-marker voting across all page pairs."""

    name = "dse"
    requires = ("page", "mrs")
    provides = ("csbms", "dss")

    def run(self, ctx: InductionContext) -> Dict[str, Any]:
        mrs_per_page = cast(List[List[TentativeMR]], ctx.artifacts["mrs"])
        csbms, dss = run_dse(ctx.pages, ctx.queries, mrs_per_page, obs=ctx.obs)
        return {"csbms": csbms, "dss": dss}

    def encode(self, ctx: InductionContext) -> Any:
        return {
            "csbms": [encode_artifact("csbms", v) for v in ctx.artifacts["csbms"]],
            "dss": [encode_artifact("dss", v) for v in ctx.artifacts["dss"]],
        }

    def decode(self, ctx: InductionContext, obj: Any) -> Dict[str, Any]:
        # Downstream stages (grouping, wrapper construction) compare the
        # cleaned line texts DSE fills in; cleaning is deterministic and
        # page-local, so it re-runs even when the marks are cached.
        for page, query in zip(ctx.pages, ctx.queries):
            clean_page_lines(page, query.split())
        return {
            "csbms": [
                decode_artifact("csbms", v, page)
                for v, page in zip(obj["csbms"], ctx.pages)
            ],
            "dss": [
                decode_artifact("dss", v, page)
                for v, page in zip(obj["dss"], ctx.pages)
            ],
        }


class RefineStage(PageStage):
    """Step 4 (§5.3): repair MRs against DSs (or the ablation bypass)."""

    name = "refine"
    requires = ("page", "mrs", "dss", "csbms")
    provides = ("refined", "pending")

    def run_page(self, ctx: InductionContext, index: int) -> Dict[str, Any]:
        page = ctx.pages[index]
        mrs = cast(List[TentativeMR], ctx.artifacts["mrs"][index])
        dss = cast(List[DynamicSection], ctx.artifacts["dss"][index])
        csbms = cast(Set[int], ctx.artifacts["csbms"][index])
        if ctx.config.use_refinement:
            result = refine_page(
                page,
                mrs,
                dss,
                csbms,
                ctx.config.features,
                ctx.caches[index],
                obs=ctx.obs,
            )
            sections = list(result.sections)
            pending = result.pending
        else:
            # Ablation: trust raw MRs, mine every DS that has no MR.
            sections = [
                SectionInstance(
                    page=page,
                    block=mr.block(),
                    records=list(mr.records),
                    origin="mre-raw",
                )
                for mr in mrs
            ]
            pending = [
                ds
                for ds in dss
                if not any(mr.start <= ds.end and ds.start <= mr.end for mr in mrs)
            ]
        ctx.obs.count("refine.sections", len(sections))
        ctx.obs.count("refine.pending", len(pending))
        return {"refined": sections, "pending": pending}


class MineStage(PageStage):
    """Step 5 (§5.4): record mining of every pending DS."""

    name = "mine"
    requires = ("page", "refined", "pending")
    provides = ("mined",)

    def run_page(self, ctx: InductionContext, index: int) -> Dict[str, Any]:
        page = ctx.pages[index]
        sections = list(cast(List[SectionInstance], ctx.artifacts["refined"][index]))
        pending = cast(List[DynamicSection], ctx.artifacts["pending"][index])
        mined_records = 0
        for ds in pending:
            block = ds.block()
            records = mine_block(
                block,
                ctx.config.mining_strategy,
                ctx.config.features,
                ctx.caches[index],
                obs=ctx.obs,
            )
            mined_records += len(records)
            sections.append(
                SectionInstance(
                    page=page,
                    block=block,
                    records=records,
                    lbm=ds.lbm,
                    rbm=ds.rbm,
                    origin="mined",
                )
            )
        sections.sort(key=lambda s: s.start)
        ctx.obs.count("mine.records", mined_records)
        return {"mined": sections}


class GranularityStage(PageStage):
    """Step 6 (§5.5): section/record granularity resolution."""

    name = "granularity"
    requires = ("page", "mined")
    provides = ("sections",)

    def run_page(self, ctx: InductionContext, index: int) -> Dict[str, Any]:
        sections = cast(List[SectionInstance], ctx.artifacts["mined"][index])
        if ctx.config.use_granularity:
            sections = resolve_granularity(
                sections, ctx.config.features, ctx.caches[index], obs=ctx.obs
            )
        ctx.obs.count("granularity.sections", len(sections))
        return {"sections": sections}


class SelectStage(BarrierStage):
    """Subclass hook between per-page analysis and cross-page grouping.

    ``MSE.select_sections`` is the identity; baselines (the
    single-section ViNTs restriction) override it to filter the per-page
    sections.  The stage is never checkpointed; when the hook returns
    its input unchanged the runner leaves downstream caches valid.
    """

    name = "select"
    requires = ("sections",)
    provides = ("sections",)
    checkpointed = False
    spanned = False

    def __init__(
        self,
        hook: Callable[[List[List[SectionInstance]]], List[List[SectionInstance]]],
    ) -> None:
        self._hook = hook

    def run(self, ctx: InductionContext) -> Dict[str, Any]:
        return {"sections": self._hook(ctx.sections_per_page)}


class GroupingStage(BarrierStage):
    """Step 7 (§5.6): cluster section instances into schema groups."""

    name = "grouping"
    requires = ("sections",)
    provides = ("groups",)

    def run(self, ctx: InductionContext) -> Dict[str, Any]:
        groups = group_section_instances(
            ctx.sections_per_page,
            threshold=ctx.config.match_threshold,
            obs=ctx.obs,
        )
        return {"groups": groups}

    def encode(self, ctx: InductionContext) -> Any:
        # A group member is identified by (page index, section index)
        # into the final per-page section lists.
        indexed: Dict[int, Tuple[int, int]] = {}
        for page_index, sections in enumerate(ctx.sections_per_page):
            for section_index, section in enumerate(sections):
                indexed[id(section)] = (page_index, section_index)
        groups = cast(List[InstanceGroup], ctx.artifacts["groups"])
        return [
            [list(indexed[id(instance)]) for _, instance in group.members]
            for group in groups
        ]

    def decode(self, ctx: InductionContext, obj: Any) -> Dict[str, Any]:
        sections = ctx.sections_per_page
        groups = [
            InstanceGroup(
                members=[
                    (int(page_index), sections[int(page_index)][int(section_index)])
                    for page_index, section_index in members
                ]
            )
            for members in obj
        ]
        return {"groups": groups}


class WrapperStage(BarrierStage):
    """Step 8 (§5.7): build one section wrapper per instance group."""

    name = "wrapper"
    requires = ("groups",)
    provides = ("wrappers",)

    def run(self, ctx: InductionContext) -> Dict[str, Any]:
        groups = cast(List[InstanceGroup], ctx.artifacts["groups"])
        wrappers: List[SectionWrapper] = []
        for index, group in enumerate(groups):
            wrapper = build_section_wrapper(
                group,
                schema_id=f"S{index}",
                config=ctx.config.features,
                obs=ctx.obs,
            )
            if wrapper is not None:
                wrappers.append(wrapper)
        ctx.obs.count("wrapper.schemas", len(wrappers))
        return {"wrappers": wrappers}

    def encode(self, ctx: InductionContext) -> Any:
        wrappers = cast(List[SectionWrapper], ctx.artifacts["wrappers"])
        return [section_wrapper_to_obj(w) for w in wrappers]

    def decode(self, ctx: InductionContext, obj: Any) -> Dict[str, Any]:
        return {"wrappers": [section_wrapper_from_obj(o) for o in obj]}


class FamiliesStage(BarrierStage):
    """Step 9 (§5.8): fold wrappers into families, emit the engine."""

    name = "families"
    requires = ("wrappers",)
    provides = ("engine",)

    def run(self, ctx: InductionContext) -> Dict[str, Any]:
        wrappers = cast(List[SectionWrapper], ctx.artifacts["wrappers"])
        families: List[SectionFamily] = []
        if ctx.config.use_families:
            families, _leftover = build_families(wrappers, obs=ctx.obs)
            # All wrappers stay available: at extraction time a member
            # wrapper runs only when its family did not locate it.
        ctx.obs.count("families.built", len(families))
        engine = EngineWrapper(wrappers, families, ctx.config.features)
        return {"engine": engine}

    def encode(self, ctx: InductionContext) -> Any:
        return engine_to_obj(cast(EngineWrapper, ctx.artifacts["engine"]))

    def decode(self, ctx: InductionContext, obj: Any) -> Dict[str, Any]:
        return {"engine": engine_from_obj(obj, config=ctx.config.features)}


#: page stages by name, for fan-out workers to reconstruct
PAGE_STAGES: Dict[str, Callable[[], PageStage]] = {
    "render": RenderStage,
    "mre": MreStage,
    "refine": RefineStage,
    "mine": MineStage,
    "granularity": GranularityStage,
}


def analysis_stages() -> List[Stage]:
    """Steps 2-6: the per-page analysis chain (plus the DSE barrier)."""
    return [MreStage(), DseStage(), RefineStage(), MineStage(), GranularityStage()]


def induction_stages(
    select: Optional[
        Callable[[List[List[SectionInstance]]], List[List[SectionInstance]]]
    ] = None,
) -> List[Stage]:
    """The full §3 pipeline, render through families.

    ``select`` is the optional between-analysis-and-grouping hook (see
    :class:`SelectStage`); ``None`` omits the stage entirely.
    """
    stages: List[Stage] = [RenderStage()]
    stages.extend(analysis_stages())
    if select is not None:
        stages.append(SelectStage(select))
    stages.extend([GroupingStage(), WrapperStage(), FamiliesStage()])
    return stages
