"""The artifact store: JSON checkpoints of stage outputs on disk.

Layout of a checkpoint directory::

    manifest.json        format/version, config key, page ids of last run
    stage-mre.json       per-page artifacts, keyed by page id
    stage-dse.json       barrier artifacts, keyed by the ordered-pages key
    ...

Per-page artifacts are keyed by the page's content hash
(:func:`repro.pipeline.context.page_id`), so a resumed run with *added*
sample pages still reuses every unchanged page's artifacts.  Barrier
artifacts depend on the whole page set at once and are keyed by the hash
of the ordered page-id list — adding or reordering pages invalidates
them.  Everything is additionally keyed by a canonical hash of the
:class:`~repro.core.mse_config.MSEConfig`; a config change wipes the
store rather than mixing artifacts from different configurations.

Deleting a single ``stage-<name>.json`` is supported and makes a resumed
run re-execute exactly that stage and its dependents (the runner's
freshness propagation).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, List, Optional

from repro.core.mse_config import MSEConfig

FORMAT = "repro-pipeline-checkpoint"
VERSION = 1

_MANIFEST = "manifest.json"


def config_key(config: MSEConfig) -> str:
    """Canonical content hash of an MSE configuration."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def pages_key(page_ids: List[str]) -> str:
    """Content hash of an *ordered* page-id list (barrier artifact key)."""
    payload = "\n".join(page_ids)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ArtifactStore:
    """Reads and writes stage checkpoints for one induction run."""

    def __init__(self, root: str, config: MSEConfig, page_ids: List[str]) -> None:
        self.root = root
        self.config_key = config_key(config)
        self.page_ids = list(page_ids)
        self.pages_key = pages_key(self.page_ids)

    @classmethod
    def open(
        cls,
        root: str,
        config: MSEConfig,
        page_ids: List[str],
        resume: bool = False,
    ) -> "ArtifactStore":
        """Open (and initialize) a checkpoint directory.

        Without ``resume`` any existing stage files are discarded; with
        it they are kept — unless the manifest's format or config key
        does not match, in which case the stale store is wiped (mixing
        artifacts across configs would silently corrupt results).
        """
        store = cls(root, config, page_ids)
        os.makedirs(root, exist_ok=True)
        if not resume or not store._manifest_matches():
            store._wipe()
        store._write_manifest()
        return store

    # -- manifest -------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST)

    def _manifest_matches(self) -> bool:
        manifest = _read_json(self._manifest_path())
        return (
            isinstance(manifest, dict)
            and manifest.get("format") == FORMAT
            and manifest.get("version") == VERSION
            and manifest.get("config_key") == self.config_key
        )

    def _write_manifest(self) -> None:
        _write_json(
            self._manifest_path(),
            {
                "format": FORMAT,
                "version": VERSION,
                "config_key": self.config_key,
                "page_ids": self.page_ids,
                "pages_key": self.pages_key,
            },
        )

    def _wipe(self) -> None:
        for name in sorted(os.listdir(self.root)):
            if name == _MANIFEST or (
                name.startswith("stage-") and name.endswith(".json")
            ):
                os.unlink(os.path.join(self.root, name))

    # -- stage files ----------------------------------------------------

    def _stage_path(self, stage: str) -> str:
        return os.path.join(self.root, f"stage-{stage}.json")

    def load_pages(self, stage: str) -> List[Optional[Any]]:
        """Encoded per-page values of a page stage, aligned to page order.

        Pages with no checkpointed value (new pages, missing or foreign
        file) yield ``None`` — the runner computes exactly those.
        """
        doc = _read_json(self._stage_path(stage))
        if (
            not isinstance(doc, dict)
            or doc.get("format") != FORMAT
            or doc.get("version") != VERSION
            or doc.get("scope") != "page"
        ):
            return [None] * len(self.page_ids)
        pages = doc.get("pages")
        if not isinstance(pages, dict):
            return [None] * len(self.page_ids)
        return [pages.get(pid) for pid in self.page_ids]

    def save_pages(self, stage: str, encoded: Dict[str, Any]) -> None:
        """Merge-write per-page values (``page_id -> encoded value``).

        Existing entries for other page ids are kept, so growing the
        sample set extends the checkpoint instead of replacing it.
        """
        path = self._stage_path(stage)
        doc = _read_json(path)
        pages: Dict[str, Any] = {}
        if (
            isinstance(doc, dict)
            and doc.get("format") == FORMAT
            and doc.get("version") == VERSION
            and doc.get("scope") == "page"
            and isinstance(doc.get("pages"), dict)
        ):
            pages = dict(doc["pages"])
        pages.update(encoded)
        _write_json(
            path,
            {
                "format": FORMAT,
                "version": VERSION,
                "scope": "page",
                "stage": stage,
                "pages": pages,
            },
        )

    def load_barrier(self, stage: str) -> Optional[Any]:
        """A barrier stage's payload, or None when absent or for a
        different page set."""
        doc = _read_json(self._stage_path(stage))
        if (
            not isinstance(doc, dict)
            or doc.get("format") != FORMAT
            or doc.get("version") != VERSION
            or doc.get("scope") != "barrier"
            or doc.get("pages_key") != self.pages_key
        ):
            return None
        return doc.get("payload")

    def save_barrier(self, stage: str, payload: Any) -> None:
        _write_json(
            self._stage_path(stage),
            {
                "format": FORMAT,
                "version": VERSION,
                "scope": "barrier",
                "stage": stage,
                "pages_key": self.pages_key,
                "payload": payload,
            },
        )


def _read_json(path: str) -> Any:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _write_json(path: str, payload: Any) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    os.replace(tmp, path)
