"""The induction context: one object owning everything the stages share.

Before the staged architecture, ``MSE.analyze_pages`` threaded five
parallel lists (pages, MRs, DSs, CSBMs, caches) through private
methods.  :class:`InductionContext` replaces that: it owns the sample
inputs, the rendered pages, the per-page distance caches, the config and
the observer, plus a named artifact map that the stages read and write.

Artifact names (see :mod:`repro.pipeline.stages` for producers):

========== ======= =====================================================
name        scope   value
========== ======= =====================================================
``page``     page   :class:`~repro.render.lines.RenderedPage` per page
``mrs``      page   ``List[TentativeMR]`` per page
``csbms``   barrier ``Set[int]`` per page (aligned list)
``dss``     barrier ``List[DynamicSection]`` per page (aligned list)
``refined``  page   ``List[SectionInstance]`` per page
``pending``  page   ``List[DynamicSection]`` per page
``mined``    page   ``List[SectionInstance]`` per page
``sections`` page   ``List[SectionInstance]`` per page (final per-page)
``groups``  barrier ``List[InstanceGroup]``
``wrappers`` barrier ``List[SectionWrapper]``
``engine``  barrier :class:`~repro.core.wrapper.EngineWrapper`
========== ======= =====================================================
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union, cast

from repro.core.mse_config import MSEConfig
from repro.features.record_distance import RecordDistanceCache
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.render.lines import RenderedPage

#: one sample input: an HTML string or an ``(html, query)`` pair
SampleInput = Union[str, Tuple[str, str]]


def normalize_samples(samples: Sequence[SampleInput]) -> List[Tuple[str, str]]:
    """Coerce sample inputs to ``(html, query)`` pairs (query may be '')."""
    normalized: List[Tuple[str, str]] = []
    for sample in samples:
        if isinstance(sample, tuple):
            normalized.append((sample[0], sample[1]))
        else:
            normalized.append((sample, ""))
    return normalized


def page_id(markup: str, query: str) -> str:
    """Content hash identifying one sample page (HTML + query).

    Checkpointed per-page artifacts are keyed by this id, so resuming
    with extra sample pages reuses the page-local artifacts of the pages
    that did not change.
    """
    digest = hashlib.sha256()
    digest.update(query.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(markup.encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass
class InductionContext:
    """Everything one wrapper-induction run shares across its stages."""

    #: normalized (html, query) sample inputs; empty when the context was
    #: built from pre-rendered pages (no checkpointing possible then)
    samples: List[Tuple[str, str]]
    config: MSEConfig
    obs: ObserverLike = NULL_OBSERVER
    #: per-page record-distance caches (created by the render stage)
    caches: List[RecordDistanceCache] = field(default_factory=list)
    #: stage artifacts by name; page-scope values are per-page lists
    artifacts: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[SampleInput],
        config: Optional[MSEConfig] = None,
        obs: ObserverLike = NULL_OBSERVER,
    ) -> "InductionContext":
        """A context over raw sample inputs (render stage still to run)."""
        return cls(
            samples=normalize_samples(samples),
            config=config or MSEConfig(),
            obs=obs,
        )

    @classmethod
    def from_pages(
        cls,
        pages: Sequence[RenderedPage],
        queries: Sequence[str],
        config: Optional[MSEConfig] = None,
        obs: ObserverLike = NULL_OBSERVER,
    ) -> "InductionContext":
        """A context over already-rendered pages (no sample HTML known).

        Used by the ``analyze_pages`` compatibility API and by tests;
        such a context cannot be checkpointed (it has no page ids).
        """
        if len(pages) != len(queries):
            raise ValueError("pages and queries must align")
        cfg = config or MSEConfig()
        ctx = cls(samples=[("", query) for query in queries], config=cfg, obs=obs)
        ctx.artifacts["page"] = list(pages)
        ctx.caches = [RecordDistanceCache(cfg.features) for _ in pages]
        return ctx

    # -- identity -------------------------------------------------------
    @property
    def page_count(self) -> int:
        return len(self.samples)

    @property
    def queries(self) -> List[str]:
        return [query for _, query in self.samples]

    def page_ids(self) -> Optional[List[str]]:
        """Per-page content hashes, or None when sample HTML is unknown."""
        if any(not markup for markup, _ in self.samples):
            return None
        return [page_id(markup, query) for markup, query in self.samples]

    # -- artifacts ------------------------------------------------------
    @property
    def pages(self) -> List[RenderedPage]:
        """The rendered pages (render stage output)."""
        return cast(List[RenderedPage], self.artifacts.get("page", []))

    def page_values(self, name: str) -> List[Any]:
        """The per-page value list of a page-scope artifact, creating it."""
        values = self.artifacts.get(name)
        if values is None:
            values = self.artifacts[name] = [None] * self.page_count
        return cast(List[Any], values)

    def set_page_value(self, name: str, index: int, value: Any) -> None:
        self.page_values(name)[index] = value

    @property
    def sections_per_page(self) -> List[List[Any]]:
        """The final per-page section instances (granularity output)."""
        return cast(List[List[Any]], self.artifacts["sections"])

    @property
    def engine(self) -> Any:
        """The induced engine wrapper (families stage output)."""
        return self.artifacts["engine"]
