"""The staged induction pipeline (checkpoint/resume + parallel pages).

This package turns wrapper induction into explicit, typed stages over
one shared :class:`InductionContext`:

- :mod:`repro.pipeline.context` — the context object and page identity;
- :mod:`repro.pipeline.stages` — the Stage protocol, the nine concrete
  stages and the per-page artifact codecs;
- :mod:`repro.pipeline.artifacts` — the on-disk checkpoint store;
- :mod:`repro.pipeline.runner` — serial/parallel execution with
  checkpoint resume and freshness propagation.

:class:`repro.core.mse.MSE` is a thin façade over this package; the CLI
exposes the knobs as ``induce --jobs N --checkpoint-dir DIR --resume``.
"""

from repro.pipeline.artifacts import ArtifactStore, config_key, pages_key
from repro.pipeline.context import InductionContext, SampleInput, page_id
from repro.pipeline.runner import PipelineRunner
from repro.pipeline.stages import (
    BarrierStage,
    DseStage,
    FamiliesStage,
    GranularityStage,
    GroupingStage,
    MineStage,
    MreStage,
    PageStage,
    RefineStage,
    RenderStage,
    SelectStage,
    Stage,
    WrapperStage,
    analysis_stages,
    decode_artifact,
    encode_artifact,
    induction_stages,
)

__all__ = [
    "ArtifactStore",
    "BarrierStage",
    "DseStage",
    "FamiliesStage",
    "GranularityStage",
    "GroupingStage",
    "InductionContext",
    "MineStage",
    "MreStage",
    "PageStage",
    "PipelineRunner",
    "RefineStage",
    "RenderStage",
    "SampleInput",
    "SelectStage",
    "Stage",
    "WrapperStage",
    "analysis_stages",
    "config_key",
    "decode_artifact",
    "encode_artifact",
    "induction_stages",
    "page_id",
    "pages_key",
]
