"""Command-line interface.

    python -m repro induce  -o wrapper.json page1.html:query1 page2.html:query2 ...
                    [--jobs N] [--checkpoint-dir DIR] [--resume]
    python -m repro extract -w wrapper.json page1.html[:q1] [page2.html[:q2] ...]
                    [--query "..."] [--json]
    python -m repro serve   -w wrapper.json [-w more.json ...] --pages page1.html[:q1] ...
                    [--jobs N] [--json FILE]
    python -m repro check   -w wrapper.json page.html [--query "..."] [--json FILE]
    python -m repro monitor -w wrapper.json page1.html:q1 page2.html:q2 ...
                    [--window N] [--threshold X] [--heal] [--events FILE]
    python -m repro monitor --testbed ID --evolve MUTATION [--mutate-at N] [--pages N]
    python -m repro eval    [--table 1|2|3|all] [--limit N] [--jobs N]
    python -m repro demo    [--engine-id N]

``induce`` builds a wrapper from sample pages (each argument is an HTML
file path, optionally suffixed ``:query terms``); ``extract`` applies a
saved wrapper to one or more pages and prints sections/records — with
``--json`` it emits one array with a per-page timing entry; ``serve``
runs the compiled batch path (:mod:`repro.perf.serve`): wrappers are
compiled once, each page is parsed/rendered/indexed once and every
wrapper is applied to the shared index, reporting pages/sec and p50/p99
per-page latency (``--jobs N`` fans pages out over worker processes);
``check`` reports wrapper health on one page (``--json FILE`` writes the
machine-readable breakdown); ``monitor`` feeds a stream of pages through
the sliding-window drift monitor — with ``--heal`` it re-induces and
hot-swaps the wrapper once drift is confirmed, and ``--events FILE``
persists the health-event JSONL log.  In ``--testbed`` mode the stream
comes from a template-evolution engine (see
``repro.testbed.evolution``): the wrapper is induced from pre-mutation
sample pages and detection latency is reported against ground truth.
``eval`` regenerates the paper's tables on the synthetic corpus;
``demo`` runs a full induce-and-extract round trip against one
synthetic engine.

``induce --jobs N`` fans the per-page pipeline stages out over worker
processes; ``--checkpoint-dir DIR`` persists every stage's artifacts as
JSON, and ``--resume`` reuses them on a later run, recomputing only
missing stages and their dependents (see ``repro.pipeline``).  All
variants produce byte-identical wrapper JSON.

``induce``, ``extract``, ``check`` and ``eval`` accept ``--trace FILE``
(write a JSONL pipeline trace: one span per stage with wall time and
stage counters, plus a final metrics record) and ``--stats`` (print the
human-readable span tree and metrics to stderr after the run).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence, Tuple

from repro.core.annotate import annotate_record
from repro.core.mse import build_wrapper
from repro.core.serialize import load_wrapper, save_wrapper
from repro.core.verify import check_wrapper
from repro.obs import NULL_OBSERVER, Observer, render_report

#: page-argument suffixes that may carry an inline query
_PAGE_EXTENSIONS = (".html:", ".htm:")


def _split_page_arg(arg: str) -> Tuple[str, str]:
    """``path.html:query terms`` -> (path, query); query optional.

    Only the suffix after the *last* ``.html:`` (or ``.htm:``) counts as
    the query, so paths that contain colons themselves (Windows drive
    letters, ``dir:name`` conventions) parse as plain paths.
    """
    lower = arg.lower()
    for ext in _PAGE_EXTENSIONS:
        index = lower.rfind(ext)
        if index != -1:
            colon = index + len(ext) - 1
            return arg[:colon], arg[colon + 1 :]
    return arg, ""


class _PageReadError(Exception):
    """A page file could not be read (missing, unreadable, not text)."""


def _read(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        raise _PageReadError(f"cannot read page file {path!r}: {exc}") from exc


def _observer_for(args):
    """An enabled observer when the command asked for tracing/stats."""
    if getattr(args, "trace", None) or getattr(args, "stats", False):
        return Observer()
    return NULL_OBSERVER


def _finish_obs(args, obs, title: str) -> None:
    """Persist/print the observer's results per the command's flags."""
    if not obs.enabled:
        return
    if getattr(args, "trace", None):
        obs.write_jsonl(args.trace)
    if getattr(args, "stats", False):
        print(render_report(obs, title), file=sys.stderr)


def cmd_induce(args) -> int:
    samples = []
    for arg in args.pages:
        path, query = _split_page_arg(arg)
        samples.append((_read(path), query))
    if len(samples) < 2:
        print("induce: need at least two sample pages", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("induce: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    obs = _observer_for(args)
    wrapper = build_wrapper(
        samples,
        obs=obs,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    save_wrapper(wrapper, args.output)
    print(
        f"wrote {args.output}: {len(wrapper.wrappers)} section schema(s), "
        f"{len(wrapper.families)} famil{'y' if len(wrapper.families) == 1 else 'ies'}"
    )
    _finish_obs(args, obs, "induce trace")
    return 0


def _section_payload(section) -> dict:
    return {
        "schema": section.schema_id,
        "lbm": section.lbm_text,
        "lines": list(section.line_span),
        "records": [
            {"lines": list(r.lines), "span": list(r.line_span),
             "fields": annotate_record(r).fields}
            for r in section.records
        ],
    }


def cmd_extract(args) -> int:
    wrapper = load_wrapper(args.wrapper)
    obs = _observer_for(args)
    # Read every page up front so a bad path fails before any output.
    pages: List[Tuple[str, str, str]] = []
    for arg in args.pages:
        path, query = _split_page_arg(arg)
        pages.append((path, _read(path), query or args.query))

    # --jobs > 1 routes the batch through the compiled serving pool
    # (bit-identical extractions, no per-page timing).
    batch: Optional[List] = None
    if args.jobs > 1 and len(pages) > 1:
        from repro.perf.serve import extract_many

        rows = extract_many(
            [(markup, query) for _, markup, query in pages],
            [wrapper],
            jobs=args.jobs,
            chunksize=args.chunksize,
            obs=obs,
        )
        batch = [row[0] for row in rows]

    payload = []
    for position, (path, markup, query) in enumerate(pages):
        seconds: Optional[float] = None
        if batch is not None:
            extraction = batch[position]
        else:
            start = time.perf_counter()
            extraction = wrapper.extract(markup, query, obs=obs)
            seconds = time.perf_counter() - start
        if args.json:
            entry = {
                "page": path,
                "query": query,
                "sections": [
                    _section_payload(section)
                    for section in extraction.sections
                ],
            }
            if seconds is not None:
                entry["seconds"] = seconds
            payload.append(entry)
            continue
        if len(pages) > 1:
            print(f"== {path} ==")
        print(f"{len(extraction)} section(s), "
              f"{extraction.record_count} record(s)")
        for section in extraction.sections:
            print(f"\n[{section.lbm_text or section.schema_id}]")
            for record in section.records:
                print(f"  - {record.text}")
        if len(pages) > 1:
            print()
    _finish_obs(args, obs, "extract trace")
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def cmd_serve(args) -> int:
    from repro.perf.serve import build_page_index, compile_wrapper
    from repro.perf.server import Server, auto_chunksize

    page_args = list(args.pages) + list(args.pages_flag or [])
    if not page_args:
        print("serve: need at least one page (positional or --pages)",
              file=sys.stderr)
        return 2
    engines = [load_wrapper(path) for path in args.wrapper]
    pages: List[Tuple[str, str]] = []
    paths: List[str] = []
    for arg in page_args:
        path, query = _split_page_arg(arg)
        pages.append((_read(path), query or args.query))
        paths.append(path)

    obs = _observer_for(args)
    compiled = [compile_wrapper(engine) for engine in engines]
    latencies: Optional[List[float]] = None
    pool_doc: Optional[dict] = None
    if args.jobs <= 1:
        results = []
        latencies = []
        start = time.perf_counter()
        for markup, query in pages:
            page_start = time.perf_counter()
            index = build_page_index(markup, query, obs=obs)
            results.append(
                [one.extract_index(index, obs=obs) for one in compiled]
            )
            latencies.append(time.perf_counter() - page_start)
        elapsed = time.perf_counter() - start
    else:
        # The warm persistent pool: workers compile the wrappers once
        # and prime their kernel memos on the first page before the
        # timed batch runs.
        jobs = min(args.jobs, len(pages))
        with Server(
            compiled,
            jobs=jobs,
            chunksize=args.chunksize,
            prime_pages=pages[:1],
            obs=obs,
        ) as server:
            start = time.perf_counter()
            results = server.extract(pages)
            elapsed = time.perf_counter() - start
            pool_doc = {
                "workers": jobs,
                "chunksize": args.chunksize
                or auto_chunksize(len(pages), jobs),
                "prime_pages": 1,
                "restarts": server.restarts,
                "worker_prime_pages": {
                    str(worker_id): stats.get("prime_pages", 0)
                    for worker_id, stats in sorted(
                        server.worker_stats.items()
                    )
                },
            }

    doc = {
        "format": "repro-serve-report",
        "jobs": args.jobs,
        "wrappers": list(args.wrapper),
        "pages": [],
        "wall_seconds": elapsed,
        "pages_per_sec": len(pages) / elapsed if elapsed > 0 else 0.0,
    }
    if pool_doc is not None:
        doc["pool"] = pool_doc
    for position, (path, row) in enumerate(zip(paths, results)):
        entry = {
            "page": path,
            "sections": sum(len(extraction) for extraction in row),
            "records": sum(
                extraction.record_count for extraction in row
            ),
        }
        if latencies is not None:
            entry["seconds"] = latencies[position]
        doc["pages"].append(entry)
        print(f"  {path}: {entry['sections']} section(s), "
              f"{entry['records']} record(s)")
    if latencies:
        ordered = sorted(latencies)
        doc["latency"] = {
            "p50_ms": _percentile(ordered, 0.50) * 1e3,
            "p99_ms": _percentile(ordered, 0.99) * 1e3,
        }
        print(f"served {len(pages)} page(s) with {len(compiled)} compiled "
              f"wrapper(s) in {elapsed:.3f}s "
              f"({doc['pages_per_sec']:.1f} pages/sec, "
              f"p50 {doc['latency']['p50_ms']:.2f}ms, "
              f"p99 {doc['latency']['p99_ms']:.2f}ms)")
    else:
        print(f"served {len(pages)} page(s) with {len(compiled)} compiled "
              f"wrapper(s) in {elapsed:.3f}s "
              f"({doc['pages_per_sec']:.1f} pages/sec, jobs={args.jobs})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    _finish_obs(args, obs, "serve trace")
    return 0


def cmd_check(args) -> int:
    wrapper = load_wrapper(args.wrapper)
    obs = _observer_for(args)
    health = check_wrapper(wrapper, _read(args.page), args.query, obs=obs)
    print(f"health score: {health.score:.2f} "
          f"({'DRIFTED - re-induce' if health.drifted else 'ok'})")
    for section in health.sections:
        status = "ok" if section.healthy else ("absent" if not section.found else "suspect")
        print(f"  {section.schema_id}: {status} "
              f"(records={section.record_count}, typical={section.typical_records})")
        checks = " ".join(
            f"{name}={'pass' if passed else 'FAIL'}"
            for name, passed in section.checks.items()
        )
        print(f"    checks: {checks} (homogeneity={section.homogeneity:.3f})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(health.to_obj(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if getattr(args, "stats", False):
        print("metrics: " + json.dumps(health.metrics, sort_keys=True),
              file=sys.stderr)
    _finish_obs(args, obs, "check trace")
    return 1 if health.drifted else 0


def cmd_monitor(args) -> int:
    from repro.monitor import MonitorConfig, WrapperMonitor

    config = MonitorConfig(
        window=args.window,
        threshold=args.threshold,
        ph_delta=args.ph_delta,
        ph_lambda=args.ph_lambda,
        heal=args.heal,
        checkpoint_dir=args.checkpoint_dir,
        jobs=args.jobs,
    )

    truth = None
    if args.testbed is not None:
        from repro.testbed.evolution import MUTATIONS, load_evolving_pages
        from repro.testbed.corpus import SAMPLE_PAGES

        if args.pages:
            print("monitor: --testbed and page arguments are exclusive",
                  file=sys.stderr)
            return 2
        if args.evolve not in MUTATIONS:
            print(f"monitor: unknown mutation {args.evolve!r} "
                  f"(choose from {', '.join(sorted(MUTATIONS))})",
                  file=sys.stderr)
            return 2
        evolving = load_evolving_pages(
            args.testbed, args.evolve,
            mutate_at=args.mutate_at, total_pages=args.total_pages,
        )
        truth = evolving.truth
        if args.wrapper:
            wrapper = load_wrapper(args.wrapper)
        else:
            wrapper = build_wrapper(evolving.sample_set)
        stream = evolving.stream(SAMPLE_PAGES)
        offset = SAMPLE_PAGES
        print(f"testbed engine {args.testbed} / {args.evolve}: monitoring "
              f"{len(stream)} pages (template mutates at page "
              f"{truth.mutate_at}, drift expected: {truth.drift_expected})")
    else:
        if not args.wrapper:
            print("monitor: -w/--wrapper is required outside --testbed mode",
                  file=sys.stderr)
            return 2
        if len(args.pages) < 1:
            print("monitor: need at least one page to monitor", file=sys.stderr)
            return 2
        wrapper = load_wrapper(args.wrapper)
        stream = []
        for arg in args.pages:
            path, query = _split_page_arg(arg)
            stream.append((_read(path), query))
        offset = 0

    obs = _observer_for(args)
    monitor = WrapperMonitor(wrapper, config, obs=obs)
    for markup, query in stream:
        page = offset + monitor.pages_seen
        health = monitor.observe_page(markup, query)
        print(f"  page {page:3d}: score {health.score:.2f} "
              f"state={monitor.state}")
        for event in monitor.log.events[-3:]:
            if event["event"] == "drift" and event["page"] == page - offset:
                print(f"    DRIFT confirmed on stream {event['stream']!r} "
                      f"(ph={event['ph']:.2f}, ewma={event['ewma']:.2f})")
            elif event["event"] == "heal" and event["page"] == page - offset:
                verdict = "recovered" if event["recovered"] else "NOT recovered"
                print(f"    heal attempt: {verdict} "
                      f"(post-heal score {event['score']:.2f})")

    summary = monitor.summary()
    doc = summary.to_obj()
    if truth is not None:
        doc["truth"] = {
            "engine_id": truth.engine_id,
            "mutation": truth.mutation,
            "mutate_at": truth.mutate_at,
            "drift_expected": truth.drift_expected,
        }
        detected = [offset + page for page in summary.drift_pages]
        doc["detected_at"] = detected
        doc["detection_latency"] = (
            truth.detection_latency(detected[0]) if detected else None
        )
    print(f"monitored {summary.pages} pages: {summary.drifts} drift(s), "
          f"{summary.reinductions} re-induction(s), {summary.heals} heal(s); "
          f"final state {summary.state}")
    if truth is not None and doc["detection_latency"] is not None:
        print(f"detection latency: {doc['detection_latency']} page(s) "
              f"after the mutation")
    if args.events:
        monitor.log.write_jsonl(args.events)
        print(f"wrote {len(monitor.log.events)} health events to {args.events}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    _finish_obs(args, obs, "monitor trace")
    return 0 if summary.state == "healthy" else 1


def cmd_eval(args) -> int:
    from repro.evalkit.harness import main as harness_main

    argv = ["--table", args.table]
    if args.limit is not None:
        argv += ["--limit", str(args.limit)]
    if args.progress:
        argv.append("--progress")
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.trace:
        argv += ["--trace", args.trace]
    if args.stats:
        argv.append("--stats")
    return harness_main(argv)


def cmd_demo(args) -> int:
    from repro.testbed import load_engine_pages

    engine_pages = load_engine_pages(args.engine_id)
    engine = engine_pages.engine
    print(f"engine {engine.name}: {len(engine.sections)} section schema(s), "
          f"template {engine.template.name}")
    wrapper = build_wrapper(engine_pages.sample_set)
    print(f"induced {len(wrapper.wrappers)} schema(s), "
          f"{len(wrapper.families)} family(ies) from "
          f"{len(engine_pages.sample_set)} sample pages")
    markup, query = engine_pages.test_set[0]
    extraction = wrapper.extract(markup, query)
    print(f"\nextraction for held-out query {query!r}:")
    for section in extraction.sections:
        print(f"  [{section.lbm_text or section.schema_id}] {len(section)} records")
        for record in section.records[:3]:
            print(f"     - {record.lines[0][:70]}")
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL pipeline trace (spans + metrics) to FILE",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the span tree and metrics to stderr after the run",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_induce = sub.add_parser("induce", help="build a wrapper from sample pages")
    p_induce.add_argument("pages", nargs="+", help="page.html[:query terms]")
    p_induce.add_argument("-o", "--output", required=True, help="wrapper JSON path")
    p_induce.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for per-page pipeline stages (1 = serial)",
    )
    p_induce.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="persist per-stage artifacts to DIR (JSON checkpoints)",
    )
    p_induce.add_argument(
        "--resume", action="store_true",
        help="reuse artifacts in --checkpoint-dir; recompute only missing "
        "stages (and their dependents, e.g. after adding sample pages)",
    )
    _add_obs_flags(p_induce)
    p_induce.set_defaults(func=cmd_induce)

    p_extract = sub.add_parser("extract", help="apply a wrapper to page(s)")
    p_extract.add_argument(
        "pages", nargs="+", help="result page HTML file(s), page.html[:query]"
    )
    p_extract.add_argument("-w", "--wrapper", required=True)
    p_extract.add_argument(
        "--query", default="",
        help="query for pages without an inline :query suffix",
    )
    p_extract.add_argument(
        "--json", action="store_true",
        help="emit one JSON array with per-page sections and timing",
    )
    p_extract.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for batch extraction over the compiled "
        "serving pool (1 = serial interpreted loop with per-page timing)",
    )
    p_extract.add_argument(
        "--chunksize", type=int, default=None,
        help="pages per worker IPC message when --jobs > 1 "
        "(default: auto heuristic from page and worker count)",
    )
    _add_obs_flags(p_extract)
    p_extract.set_defaults(func=cmd_extract)

    p_serve = sub.add_parser(
        "serve", help="batch-extract pages with compiled wrappers"
    )
    p_serve.add_argument(
        "pages", nargs="*", help="result page HTML file(s), page.html[:query]"
    )
    p_serve.add_argument(
        "--pages", dest="pages_flag", nargs="+", metavar="PAGE",
        help="additional page.html[:query] arguments",
    )
    p_serve.add_argument(
        "-w", "--wrapper", action="append", required=True,
        help="wrapper JSON path (repeat to serve several engines' wrappers)",
    )
    p_serve.add_argument(
        "--query", default="",
        help="query for pages without an inline :query suffix",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for page serving (1 = serial, with p50/p99; "
        ">1 routes through the warm persistent Server pool)",
    )
    p_serve.add_argument(
        "--chunksize", type=int, default=None,
        help="pages per worker IPC message when --jobs > 1 "
        "(default: auto heuristic from page and worker count)",
    )
    p_serve.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the serve report (per-page counts, throughput) to FILE",
    )
    _add_obs_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_check = sub.add_parser("check", help="wrapper health / drift detection")
    p_check.add_argument("page", help="result page HTML file")
    p_check.add_argument("-w", "--wrapper", required=True)
    p_check.add_argument("--query", default="")
    p_check.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the machine-readable health breakdown to FILE",
    )
    _add_obs_flags(p_check)
    p_check.set_defaults(func=cmd_check)

    p_monitor = sub.add_parser(
        "monitor", help="sliding-window drift monitor over a page stream"
    )
    p_monitor.add_argument(
        "pages", nargs="*", help="page.html[:query terms] stream, in served order"
    )
    p_monitor.add_argument(
        "-w", "--wrapper", default=None,
        help="wrapper JSON (required unless --testbed induces one)",
    )
    p_monitor.add_argument(
        "--window", type=int, default=8,
        help="sliding-window length in pages (default 8)",
    )
    p_monitor.add_argument(
        "--threshold", type=float, default=0.6,
        help="health threshold for drift confirmation and heal acceptance",
    )
    p_monitor.add_argument(
        "--ph-delta", type=float, default=0.05,
        help="Page-Hinkley tolerated deviation below the running mean",
    )
    p_monitor.add_argument(
        "--ph-lambda", type=float, default=1.0,
        help="Page-Hinkley alarm threshold on the cumulative statistic",
    )
    p_monitor.add_argument(
        "--heal", action="store_true",
        help="re-induce and hot-swap the wrapper once drift is confirmed",
    )
    p_monitor.add_argument(
        "--events", metavar="FILE", default=None,
        help="write the health-event JSONL log to FILE",
    )
    p_monitor.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the end-of-run summary JSON to FILE",
    )
    p_monitor.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="checkpoint directory for resumable re-induction",
    )
    p_monitor.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for re-induction (1 = serial)",
    )
    p_monitor.add_argument(
        "--testbed", type=int, metavar="ID", default=None,
        help="monitor a template-evolution workload of synthetic engine ID",
    )
    p_monitor.add_argument(
        "--evolve", metavar="MUTATION", default="marker_rewrite",
        help="template mutation for --testbed mode (marker_rewrite, "
        "style_swap, section_drop, header_retag)",
    )
    p_monitor.add_argument(
        "--mutate-at", type=int, default=12,
        help="page index where the --testbed template mutates (default 12)",
    )
    p_monitor.add_argument(
        "--total-pages", type=int, default=24,
        help="total pages in the --testbed workload (default 24)",
    )
    _add_obs_flags(p_monitor)
    p_monitor.set_defaults(func=cmd_monitor)

    p_eval = sub.add_parser("eval", help="regenerate the paper's tables")
    p_eval.add_argument("--table", choices=["1", "2", "3", "all"], default="all")
    p_eval.add_argument("--limit", type=int, default=None)
    p_eval.add_argument("--progress", action="store_true")
    p_eval.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the evaluation (1 = serial)",
    )
    _add_obs_flags(p_eval)
    p_eval.set_defaults(func=cmd_eval)

    p_demo = sub.add_parser("demo", help="induce+extract on a synthetic engine")
    p_demo.add_argument("--engine-id", type=int, default=85)
    p_demo.set_defaults(func=cmd_demo)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except _PageReadError as exc:
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
