"""Name resolution, the call graph, reachability and the purity lattice.

Resolution maps the raw dotted chains of :mod:`~repro.analysis.flow
.model` to project symbols through each module's import table: a chain
``RECORD_MEMO.store`` inside ``repro.features.record_distance`` resolves
through ``from repro.perf.kernels import RECORD_MEMO`` to the global
``repro.perf.kernels.RECORD_MEMO`` and — because that global is built by
the project class ``PairMemo`` — onward to the method
``repro.perf.kernels.PairMemo.store``.

The call graph is deliberately an *over*-approximation on dispatch and
an *under*-approximation on unknowns:

- resolved calls add edges; so do plain references to project functions
  (callbacks) and classes;
- referencing a class closes over **all** its methods (the pipeline
  dispatches stages through registry dicts — ``PAGE_STAGES[name]()`` —
  so dynamic dispatch must reach the concrete ``run_page`` bodies);
- reading a module global closes over the functions/classes referenced
  in its initializer (the registry-dict values);
- calls on unannotated locals resolve to nothing (no guessing).

On top of the graph: breadth-first reachability with parent pointers
(findings print the worker -> … -> sink chain) and a three-point purity
lattice ``PURE < READS < MUTATES`` computed as a fixpoint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.flow.model import (
    ClassInfo,
    FunctionInfo,
    GlobalInfo,
    MUTATING_CONTAINER_METHODS,
    ModuleInfo,
    MutationSite,
    ProjectModel,
    _chain_of,
)
from repro.analysis.registry import POOL_WORKER_ENTRYPOINTS

#: purity lattice values, ordered
PURE = "pure"
READS = "reads-globals"
MUTATES = "mutates-globals"

_LATTICE_ORDER = {PURE: 0, READS: 1, MUTATES: 2}


@dataclass(frozen=True)
class Resolved:
    """One resolved symbol: ``kind`` in {function, class, global}."""

    kind: str
    qualname: str
    #: attribute path left over after the symbol (method on a global)
    rest: Tuple[str, ...] = ()


@dataclass
class GlobalMutation:
    """One resolved mutation of a module global."""

    global_qualname: str
    function: FunctionInfo
    site: MutationSite
    #: how the mutation happens: the method name, ``store`` or ``rebind``
    how: str


@dataclass
class CallGraph:
    """The resolved whole-program graph and its derived facts."""

    project: ProjectModel
    #: function qualname -> sorted callee/reference qualnames
    edges: Dict[str, List[str]] = field(default_factory=dict)
    #: function qualname -> resolved global mutations in its body
    mutations: Dict[str, List[GlobalMutation]] = field(default_factory=dict)
    #: function qualname -> module globals it reads
    global_reads: Dict[str, List[str]] = field(default_factory=dict)
    #: worker-executed callables: qualname -> dispatch description
    worker_entries: Dict[str, str] = field(default_factory=dict)
    #: function qualname -> purity lattice value
    purity: Dict[str, str] = field(default_factory=dict)

    def reachable_from(
        self, entries: Iterable[str]
    ) -> Tuple[List[str], Dict[str, str]]:
        """Breadth-first closure with parent pointers, deterministic."""
        parents: Dict[str, str] = {}
        seen: List[str] = []
        queue: deque[str] = deque()
        for entry in sorted(set(entries)):
            if entry in self.project.functions and entry not in parents:
                parents[entry] = ""
                seen.append(entry)
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for callee in self.edges.get(current, []):
                if callee in parents:
                    continue
                parents[callee] = current
                seen.append(callee)
                queue.append(callee)
        return seen, parents

    def chain_to(self, qualname: str, parents: Dict[str, str]) -> List[str]:
        """The entry -> … -> qualname path recorded by reachability."""
        chain = [qualname]
        while parents.get(chain[-1]):
            chain.append(parents[chain[-1]])
        return list(reversed(chain))


def resolve_chain(
    project: ProjectModel,
    module: ModuleInfo,
    function: Optional[FunctionInfo],
    chain: str,
) -> Optional[Resolved]:
    """Resolve a raw dotted chain against function/module/import scope."""
    parts = chain.split(".")
    head = parts[0]

    if function is not None:
        if head == "self" and function.class_qualname is not None:
            if len(parts) >= 2:
                method = _lookup_method(
                    project, project.classes.get(function.class_qualname), parts[1]
                )
                if method is not None:
                    return Resolved("function", method.qualname, tuple(parts[2:]))
            return None
        if function.is_local(head):
            return None

    if head in module.imports:
        full = ".".join([module.imports[head]] + parts[1:])
    elif (
        head in module.functions
        or head in module.classes
        or head in module.globals
    ):
        full = f"{module.name}.{chain}"
    else:
        return None
    return _classify(project, full)


def _classify(project: ProjectModel, full: str) -> Optional[Resolved]:
    """Split a fully-qualified chain into (module, symbol, rest)."""
    parts = full.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        module_name = ".".join(parts[:cut])
        module = project.modules.get(module_name)
        if module is None:
            continue
        rest = parts[cut:]
        symbol = rest[0]
        tail = tuple(rest[1:])
        if symbol in module.functions:
            return Resolved("function", f"{module_name}.{symbol}", tail)
        if symbol in module.classes:
            class_info = module.classes[symbol]
            if tail:
                method = _lookup_method(project, class_info, tail[0])
                if method is not None:
                    return Resolved("function", method.qualname, tail[1:])
            return Resolved("class", class_info.qualname, tail)
        if symbol in module.globals:
            return Resolved("global", f"{module_name}.{symbol}", tail)
        return None
    return None


def _lookup_method(
    project: ProjectModel, class_info: Optional[ClassInfo], name: str
) -> Optional[FunctionInfo]:
    """Method lookup through project base classes (depth-first)."""
    seen: Set[str] = set()
    stack = [] if class_info is None else [class_info]
    while stack:
        current = stack.pop(0)
        if current.qualname in seen:
            continue
        seen.add(current.qualname)
        if name in current.methods:
            return current.methods[name]
        module = project.modules.get(current.module)
        if module is None:
            continue
        for base_chain in current.bases:
            base = resolve_chain(project, module, None, base_chain)
            if base is not None and base.kind == "class":
                base_info = project.classes.get(base.qualname)
                if base_info is not None:
                    stack.append(base_info)
    return None


def _global_class(project: ProjectModel, info: GlobalInfo) -> Optional[ClassInfo]:
    """The project class a global was constructed from, if resolvable."""
    if info.constructor is None:
        return None
    module = project.modules.get(info.module)
    if module is None:
        return None
    resolved = resolve_chain(project, module, None, info.constructor)
    if resolved is not None and resolved.kind == "class":
        return project.classes.get(resolved.qualname)
    return None


def _method_is_impure(
    project: ProjectModel, class_info: ClassInfo, method_name: str
) -> bool:
    """Whether a method (transitively, through self-calls) writes self."""
    start = _lookup_method(project, class_info, method_name)
    if start is None:
        # Unknown method on a known class: assume a builtin-container
        # style mutation only if the name says so.
        return method_name in MUTATING_CONTAINER_METHODS
    seen: Set[str] = set()
    stack: List[FunctionInfo] = [start]
    while stack:
        method = stack.pop()
        if method.qualname in seen:
            continue
        seen.add(method.qualname)
        for site in method.mutations:
            receiver_head = site.receiver.split(".")[0]
            if receiver_head != "self":
                continue
            if site.kind in ("store", "rebind"):
                return True
            if site.kind == "method":
                if "." in site.receiver:
                    # self.attr.method(): container mutation heuristics.
                    if site.method in MUTATING_CONTAINER_METHODS:
                        return True
                else:
                    # self.method(): recurse into the sibling method.
                    target = _lookup_method(project, class_info, site.method)
                    if target is not None:
                        stack.append(target)
                    elif site.method in MUTATING_CONTAINER_METHODS:
                        return True
    return False


def _class_methods(project: ProjectModel, qualname: str) -> List[str]:
    class_info = project.classes.get(qualname)
    if class_info is None:
        return []
    return [method.qualname for method in class_info.methods.values()]


def build_call_graph(project: ProjectModel) -> CallGraph:
    """Resolve every function's facts into the whole-program graph."""
    graph = CallGraph(project=project)

    for qualname in project.functions:
        function = project.functions[qualname]
        module = project.modules[function.module]
        edges: Set[str] = set()
        reads: Set[str] = set()
        resolved_mutations: List[GlobalMutation] = []

        def add_callable_edges(resolved: Resolved) -> None:
            if resolved.kind == "function":
                edges.add(resolved.qualname)
            elif resolved.kind == "class":
                # Constructing or referencing a class may dispatch to any
                # of its methods downstream (registry dicts, virtual
                # calls); close over all of them.
                edges.update(_class_methods(project, resolved.qualname))

        # Calls.
        for chain, _call in function.calls:
            resolved = resolve_chain(project, module, function, chain)
            if resolved is None:
                continue
            if resolved.kind == "global":
                reads.add(resolved.qualname)
                global_info = project.globals[resolved.qualname]
                owner = _global_class(project, global_info)
                if resolved.rest and owner is not None:
                    method = _lookup_method(project, owner, resolved.rest[0])
                    if method is not None:
                        edges.add(method.qualname)
            else:
                add_callable_edges(resolved)

        # References (callbacks, registry reads, global loads).
        for chain in sorted(function.chain_loads):
            resolved = resolve_chain(project, module, function, chain)
            if resolved is None:
                continue
            if resolved.kind == "global":
                reads.add(resolved.qualname)
                global_info = project.globals[resolved.qualname]
                for ref_chain in global_info.references:
                    ref = resolve_chain(
                        project, project.modules[global_info.module], None, ref_chain
                    )
                    if ref is not None and ref.kind in ("function", "class"):
                        add_callable_edges(ref)
            else:
                add_callable_edges(resolved)

        # Mutations.
        for site in function.mutations:
            receiver_head = site.receiver.split(".")[0]
            if receiver_head == "self" or function.is_local(receiver_head):
                continue
            if site.kind == "rebind":
                target = resolve_chain(project, module, None, site.receiver)
                if target is not None and target.kind == "global":
                    resolved_mutations.append(
                        GlobalMutation(target.qualname, function, site, "rebind")
                    )
                continue
            resolved = resolve_chain(project, module, function, site.receiver)
            if resolved is None or resolved.kind != "global":
                continue
            global_info = project.globals[resolved.qualname]
            if not global_info.mutable:
                continue
            if site.kind == "store":
                resolved_mutations.append(
                    GlobalMutation(resolved.qualname, function, site, "store")
                )
            elif site.kind == "method":
                owner = _global_class(project, global_info)
                if owner is not None:
                    impure = _method_is_impure(project, owner, site.method)
                else:
                    impure = site.method in MUTATING_CONTAINER_METHODS
                if impure:
                    resolved_mutations.append(
                        GlobalMutation(
                            resolved.qualname, function, site, site.method
                        )
                    )

        graph.edges[qualname] = sorted(edges)
        graph.global_reads[qualname] = sorted(reads)
        graph.mutations[qualname] = resolved_mutations

        # Worker entries shipped to pool processes.
        for dispatch in function.pool_dispatches:
            chain = _chain_of(dispatch.callable_expr)
            if chain is None:
                continue
            resolved = resolve_chain(project, module, function, chain)
            if resolved is not None and resolved.kind == "function":
                graph.worker_entries.setdefault(
                    resolved.qualname,
                    f"{function.qualname} via {dispatch.via}",
                )

    # Declared entry points ride on top of the structural discovery:
    # a Process target constructed behind a factory handle (a
    # ``get_context()`` object) resolves dynamically, so the registry
    # pins those workers explicitly — MP01 coverage survives refactors
    # of the construction site.
    for qualname, reason in POOL_WORKER_ENTRYPOINTS.items():
        if qualname in project.functions:
            graph.worker_entries.setdefault(qualname, f"registry: {reason}")

    _compute_purity(graph)
    return graph


def _compute_purity(graph: CallGraph) -> None:
    """Fixpoint of the PURE < READS < MUTATES lattice over the graph."""
    purity: Dict[str, str] = {}
    for qualname in graph.project.functions:
        if graph.mutations.get(qualname):
            purity[qualname] = MUTATES
        elif graph.global_reads.get(qualname):
            purity[qualname] = READS
        else:
            purity[qualname] = PURE
    changed = True
    while changed:
        changed = False
        for qualname in graph.project.functions:
            best = purity[qualname]
            for callee in graph.edges.get(qualname, []):
                callee_purity = purity.get(callee, PURE)
                if _LATTICE_ORDER[callee_purity] > _LATTICE_ORDER[best]:
                    best = callee_purity
            if best != purity[qualname]:
                purity[qualname] = best
                changed = True
    graph.purity = purity
