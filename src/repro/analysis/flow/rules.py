"""The interprocedural rules: MP01, MP02, PERF01, SER01.

Each rule is a :class:`~repro.analysis.engine.ProjectRule`: it runs
once per analysis with every parsed module in scope, shares one symbol
table + call graph per run through the project cache, and emits plain
:class:`~repro.analysis.findings.Finding` objects that the inline
``# lint: allow`` pragma and the baseline machinery treat exactly like
per-file findings.

- **MP01 fork safety** — a mutable module global mutated in any function
  reachable from a pool-worker callable must be registered in
  :data:`repro.analysis.registry.PROCESS_LOCAL_MEMOS`.
- **MP02 payload pickle safety** — callables and payloads shipped to a
  pool must survive pickling: no lambdas, no nested defs, no bound
  methods, no locks/open handles/observer objects in the payload.
- **PERF01 hot-path complexity** — functions reachable from ``serve()``
  or ``record_distance`` may not nest loops over page/line/block
  collections unless a memo sits on the path.
- **SER01 codec drift** — every dataclass field must be read by the
  ``*_to_obj`` codec that encodes it (page references excepted), so a
  new field fails lint instead of checkpoint-resume.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis import registry
from repro.analysis.engine import ProjectContext, ProjectRule
from repro.analysis.findings import Finding, finding_at
from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.model import (
    FunctionInfo,
    ProjectModel,
    build_project_model,
    _chain_of,
)

_MODEL_KEY = "flow:model"
_GRAPH_KEY = "flow:graph"


def project_graph(project: ProjectContext) -> CallGraph:
    """The per-run shared symbol table + call graph (built once)."""
    graph = project.cache.get(_GRAPH_KEY)
    if isinstance(graph, CallGraph):
        return graph
    model = build_project_model(project.modules)
    built = build_call_graph(model)
    project.cache[_MODEL_KEY] = model
    project.cache[_GRAPH_KEY] = built
    return built


def _finding(
    function: FunctionInfo, node: ast.AST, rule: str, message: str
) -> Finding:
    return finding_at(function.path, node, rule, message)


# ---------------------------------------------------------------------------
# MP01 fork safety
# ---------------------------------------------------------------------------


class ForkSafetyRule(ProjectRule):
    rule_id = "MP01"
    title = "fork safety"
    invariant = (
        "no function reachable from a pool-worker callable mutates a "
        "mutable module global unless the global is registered as a "
        "process-local memo in repro.analysis.registry"
    )

    def __init__(self, allowlist: Optional[Mapping[str, str]] = None) -> None:
        self.allowlist = (
            registry.PROCESS_LOCAL_MEMOS if allowlist is None else allowlist
        )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project_graph(project)
        if not graph.worker_entries:
            return
        reachable, parents = graph.reachable_from(graph.worker_entries)
        for qualname in reachable:
            for mutation in graph.mutations.get(qualname, []):
                if mutation.global_qualname in self.allowlist:
                    continue
                chain = graph.chain_to(qualname, parents)
                entry = chain[0]
                dispatch = graph.worker_entries.get(entry, entry)
                route = " -> ".join(chain)
                yield _finding(
                    mutation.function,
                    mutation.site.node,
                    self.rule_id,
                    (
                        f"mutable module global '{mutation.global_qualname}' "
                        f"mutated ({mutation.how}) on a worker path "
                        f"[{route}; dispatched by {dispatch}]; register it "
                        "in PROCESS_LOCAL_MEMOS with a purity argument or "
                        "move the state into the task payload"
                    ),
                )


# ---------------------------------------------------------------------------
# MP02 payload pickle safety
# ---------------------------------------------------------------------------

#: constructors whose results never survive a pickle boundary (or, for
#: observers, must never cross one: their stats merge by document)
_UNPICKLABLE_CALLS: Tuple[str, ...] = (
    "open",
    "Lock",
    "RLock",
    "Semaphore",
    "BoundedSemaphore",
    "Condition",
    "Event",
    "Observer",
    "NullObserver",
)


class PickleSafetyRule(ProjectRule):
    rule_id = "MP02"
    title = "payload pickle safety"
    invariant = (
        "callables shipped to a process pool are top-level functions and "
        "their payloads contain no closures, locks, observers or open "
        "handles"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project_graph(project)
        model = graph.project
        for qualname in model.functions:
            function = model.functions[qualname]
            module = model.modules[function.module]
            for dispatch in function.pool_dispatches:
                yield from self._check_callable(function, module, dispatch, graph)
                if dispatch.payload_expr is not None:
                    yield from self._check_payload(
                        function, dispatch.payload_expr
                    )

    def _check_callable(
        self,
        function: FunctionInfo,
        module: object,
        dispatch: object,
        graph: CallGraph,
    ) -> Iterator[Finding]:
        from repro.analysis.flow.callgraph import resolve_chain
        from repro.analysis.flow.model import ModuleInfo, PoolDispatch

        assert isinstance(dispatch, PoolDispatch)
        assert isinstance(module, ModuleInfo)
        expr = dispatch.callable_expr
        if isinstance(expr, ast.Lambda):
            yield _finding(
                function,
                expr,
                self.rule_id,
                f"lambda shipped to pool {dispatch.via}(); workers can only "
                "import top-level functions",
            )
            return
        chain = _chain_of(expr)
        if chain is None:
            yield _finding(
                function,
                expr,
                self.rule_id,
                f"pool {dispatch.via}() callable is not a plain name; "
                "workers can only import top-level functions",
            )
            return
        parts = chain.split(".")
        if parts[0] == "self" or (
            len(parts) > 1 and function.is_local(parts[0])
        ):
            yield _finding(
                function,
                expr,
                self.rule_id,
                f"bound method '{chain}' shipped to pool {dispatch.via}(); "
                "workers can only import top-level functions",
            )
            return
        if function.is_local(chain):
            yield _finding(
                function,
                expr,
                self.rule_id,
                f"local '{chain}' shipped to pool {dispatch.via}(); nested "
                "functions and locals do not pickle",
            )
            return
        resolved = resolve_chain(graph.project, module, function, chain)
        if resolved is not None and resolved.kind == "function":
            target = graph.project.functions[resolved.qualname]
            if target.class_qualname is not None:
                yield _finding(
                    function,
                    expr,
                    self.rule_id,
                    f"method '{resolved.qualname}' shipped to pool "
                    f"{dispatch.via}(); workers can only import top-level "
                    "functions",
                )

    def _check_payload(
        self, function: FunctionInfo, payload: ast.expr
    ) -> Iterator[Finding]:
        # The payload expression, plus — when it is a plain local name —
        # every value assigned to that name in this function.
        exprs: List[ast.expr] = [payload]
        name = payload.id if isinstance(payload, ast.Name) else None
        if name is not None:
            for node in ast.walk(function.node):
                if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in node.targets
                ):
                    exprs.append(node.value)
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                    and node.func.attr == "append"
                    and node.args
                ):
                    exprs.append(node.args[0])
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Lambda):
                    yield _finding(
                        function,
                        node,
                        self.rule_id,
                        "lambda inside a pool payload; closures do not "
                        "pickle",
                    )
                elif isinstance(node, ast.Call):
                    chain = _chain_of(node.func)
                    tail = None if chain is None else chain.rsplit(".", 1)[-1]
                    if tail in _UNPICKLABLE_CALLS:
                        yield _finding(
                            function,
                            node,
                            self.rule_id,
                            f"'{tail}(...)' result inside a pool payload; "
                            "locks, observers and open handles do not "
                            "cross process boundaries — ship plain data "
                            "and rebuild in the worker",
                        )


# ---------------------------------------------------------------------------
# PERF01 hot-path complexity
# ---------------------------------------------------------------------------

#: identifier substrings that mark a loop as iterating page-shaped data
_DATA_COLLECTION_HINTS: Tuple[str, ...] = (
    "block",
    "candidate",
    "instance",
    "line",
    "member",
    "page",
    "record",
    "section",
)

#: callee-chain substrings that count as a memo on the path
_MEMO_HINTS: Tuple[str, ...] = ("cache", "intern", "memo")

#: bare function names whose bodies anchor the serving hot path
_HOT_ENTRY_NAMES: Tuple[str, ...] = ("serve", "record_distance")


def _iterates_data(chains: Sequence[str]) -> bool:
    for chain in chains:
        tail = chain.rsplit(".", 1)[-1].lower()
        if any(hint in tail for hint in _DATA_COLLECTION_HINTS):
            return True
    return False


def _has_memo_access(function: FunctionInfo) -> bool:
    for chain, _node in function.calls:
        if any(hint in chain.lower() for hint in _MEMO_HINTS):
            return True
    for chain in function.chain_loads:
        head = chain.split(".")[0].lower()
        if any(hint in head for hint in _MEMO_HINTS):
            return True
    return False


class HotPathComplexityRule(ProjectRule):
    rule_id = "PERF01"
    title = "hot-path complexity"
    invariant = (
        "functions reachable from serve()/record_distance do not nest "
        "loops over page/line/block/record collections unless a memo "
        "lookup sits on the path"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project_graph(project)
        entries = sorted(
            qualname
            for qualname, function in graph.project.functions.items()
            if function.name in _HOT_ENTRY_NAMES
        )
        if not entries:
            return
        reachable, parents = graph.reachable_from(entries)
        for qualname in reachable:
            function = graph.project.functions[qualname]
            if _has_memo_access(function):
                continue
            for node, depth, chains in function.loop_nests:
                if depth < 2 or not _iterates_data(chains):
                    continue
                data_chains = sorted(
                    chain
                    for chain in chains
                    if _iterates_data([chain])
                )
                chain_to = graph.chain_to(qualname, parents)
                yield _finding(
                    function,
                    node,
                    self.rule_id,
                    (
                        f"depth-{depth} loop nest over "
                        f"{', '.join(data_chains)} in '{qualname}' "
                        f"(hot path: {' -> '.join(chain_to)}) without a "
                        "memo on the path; add a memo lookup or justify "
                        "with a pragma"
                    ),
                )


# ---------------------------------------------------------------------------
# SER01 codec drift
# ---------------------------------------------------------------------------


class CodecDriftRule(ProjectRule):
    rule_id = "SER01"
    title = "codec drift"
    invariant = (
        "every field of a dataclass with a *_to_obj codec is read by "
        "that codec (RenderedPage references excepted), so adding a "
        "field without updating the codec fails lint"
    )

    #: annotation heads exempt from encoding: runtime page references,
    #: never persisted (spans are; see core/serialize.py)
    exempt_annotations: Tuple[str, ...] = ("RenderedPage",)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        from repro.analysis.flow.callgraph import resolve_chain

        graph = project_graph(project)
        model = graph.project
        for qualname in model.functions:
            function = model.functions[qualname]
            if not function.name.endswith("_to_obj"):
                continue
            if not function.params:
                continue
            param = function.params[0]
            if param in ("self", "cls"):
                if len(function.params) < 2:
                    continue
                param = function.params[1]
            annotation = function.param_annotations.get(param)
            if annotation is None:
                continue
            module = model.modules[function.module]
            resolved = resolve_chain(model, module, None, annotation)
            if resolved is None or resolved.kind != "class":
                continue
            class_info = model.classes.get(resolved.qualname)
            if class_info is None or not class_info.is_dataclass:
                continue
            fields = self._all_fields(model, class_info)
            reads = self._reads_of(model, function, param, set())
            for field_name, field_annotation in fields:
                if field_name in reads:
                    continue
                head = field_annotation.rsplit(".", 1)[-1]
                if head in self.exempt_annotations:
                    continue
                yield _finding(
                    function,
                    function.node,
                    self.rule_id,
                    (
                        f"codec '{function.qualname}' does not read field "
                        f"'{field_name}' of {class_info.qualname}; the "
                        "serialized form has drifted from the dataclass"
                    ),
                )

    def _reads_of(
        self,
        model: ProjectModel,
        function: FunctionInfo,
        param: str,
        visited: Set[str],
    ) -> Set[str]:
        """Attributes read on ``param``, following delegation.

        A codec that forwards its whole argument to another project
        function (``section_wrapper_to_obj`` delegating to
        ``_wrapper_to_obj``) inherits the callee's reads on the
        forwarded parameter — the fields are covered, just one call
        away.
        """
        from repro.analysis.flow.callgraph import resolve_chain

        if function.qualname in visited:
            return set()
        visited.add(function.qualname)
        reads = set(function.param_attr_reads.get(param, set()))
        module = model.modules[function.module]
        for chain, call in function.calls:
            position = next(
                (
                    index
                    for index, arg in enumerate(call.args)
                    if isinstance(arg, ast.Name) and arg.id == param
                ),
                None,
            )
            if position is None:
                continue
            resolved = resolve_chain(model, module, function, chain)
            if resolved is None or resolved.kind != "function":
                continue
            callee = model.functions[resolved.qualname]
            if position >= len(callee.params):
                continue
            callee_param = callee.params[position]
            reads |= self._reads_of(model, callee, callee_param, visited)
        return reads

    def _all_fields(
        self, model: ProjectModel, class_info: object
    ) -> List[Tuple[str, str]]:
        """Own fields plus resolvable dataclass base fields, in order."""
        from repro.analysis.flow.callgraph import resolve_chain
        from repro.analysis.flow.model import ClassInfo

        assert isinstance(class_info, ClassInfo)
        fields: List[Tuple[str, str]] = []
        seen: Set[str] = set()
        stack: List[ClassInfo] = [class_info]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            for item in current.fields:
                if item[0] not in {f[0] for f in fields}:
                    fields.append(item)
            module = model.modules.get(current.module)
            if module is None:
                continue
            for base_chain in current.bases:
                base = resolve_chain(model, module, None, base_chain)
                if base is not None and base.kind == "class":
                    base_info = model.classes.get(base.qualname)
                    if base_info is not None and base_info.is_dataclass:
                        stack.append(base_info)
        return fields


def flow_rules() -> List[ProjectRule]:
    """Fresh instances of every flow rule, in registry order."""
    return [
        ForkSafetyRule(),
        PickleSafetyRule(),
        HotPathComplexityRule(),
        CodecDriftRule(),
    ]
