"""The project symbol table: modules, functions, classes, globals.

One :class:`ProjectModel` summarizes every parsed module of an analysis
run.  The unit of summary is the *top-level callable*: module functions
and class methods each get a :class:`FunctionInfo`; nested ``def``\\ s,
lambdas and comprehensions are folded into their enclosing top-level
callable (a closure handed to a caller executes with the enclosing
scope's facts, so attributing its reads, calls and mutations to the
enclosing function is the sound direction for reachability analysis).

The facts collected per function are exactly what the interprocedural
rules need and nothing more:

- raw call chains and name loads (resolved later by the call graph),
- mutation sites: attribute/subscript stores, ``del``, aug-assigns and
  method calls on a receiver chain, plus rebinds of ``global`` names,
- attribute reads grouped by parameter (the codec-drift rule checks a
  codec reads every dataclass field of its parameter),
- pool fan-out sites: ``multiprocessing.Pool`` construction and the
  dispatch calls (``map``/``imap``/``apply``/…) with their callable and
  payload expressions.

Everything is stored in insertion order derived from sorted module
paths, so downstream iteration is deterministic by construction.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import ModuleContext

#: method names whose call mutates a builtin container receiver
MUTATING_CONTAINER_METHODS: Tuple[str, ...] = (
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "intern",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "sort",
    "store",
    "update",
)

#: pool dispatch methods that execute their callable in a worker
POOL_DISPATCH_METHODS: Tuple[str, ...] = (
    "apply",
    "apply_async",
    "imap",
    "imap_unordered",
    "map",
    "map_async",
    "starmap",
    "starmap_async",
)

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass
class MutationSite:
    """One potential in-place mutation of a receiver chain."""

    #: dotted receiver chain (``TREE_MEMO``, ``self._table``); for a
    #: ``global``-declared rebind this is the bare global name
    receiver: str
    #: ``"store"`` (attr/subscript/del/augassign), ``"method"`` (a call
    #: whose mutating-ness depends on the resolved method) or
    #: ``"rebind"`` (assignment to a ``global``-declared name)
    kind: str
    #: method name for ``kind == "method"``; empty otherwise
    method: str
    node: ast.AST


@dataclass
class PoolDispatch:
    """One pool fan-out: a callable shipped to worker processes."""

    #: the expression of the worker callable (first positional arg, the
    #: ``initializer=`` keyword, or a ``Process(target=...)`` keyword)
    callable_expr: ast.expr
    #: the payload expression (the iterable / ``initargs`` / ``args``)
    payload_expr: Optional[ast.expr]
    #: dispatch method name (``imap_unordered``, …), ``initializer``,
    #: or ``Process`` for a long-lived worker construction
    via: str
    node: ast.AST


@dataclass
class FunctionInfo:
    """Summary of one top-level callable (module function or method)."""

    name: str
    qualname: str
    module: str
    path: str
    lineno: int
    node: ast.AST
    #: owning class qualname for methods; None for module functions
    class_qualname: Optional[str] = None
    params: List[str] = field(default_factory=list)
    #: every name bound anywhere in the subtree (params, assignments,
    #: loop/with/except targets, nested defs and their params, imports)
    local_names: Set[str] = field(default_factory=set)
    #: names declared ``global`` somewhere in the subtree
    declared_globals: Set[str] = field(default_factory=set)
    #: raw dotted callee chains with their call nodes
    calls: List[Tuple[str, ast.Call]] = field(default_factory=list)
    #: calls whose callee is not a name chain (lambda, subscript, call)
    opaque_calls: List[ast.Call] = field(default_factory=list)
    #: plain name loads (for reference edges / global reads)
    name_loads: Set[str] = field(default_factory=set)
    #: dotted chains read anywhere (covers ``module.GLOBAL`` reads)
    chain_loads: Set[str] = field(default_factory=set)
    mutations: List[MutationSite] = field(default_factory=list)
    #: attribute names read per parameter (``wrapper`` -> {"pref", ...})
    param_attr_reads: Dict[str, Set[str]] = field(default_factory=dict)
    pool_dispatches: List[PoolDispatch] = field(default_factory=list)
    #: whether the subtree constructs a multiprocessing.Pool
    creates_pool: bool = False
    #: nested function/lambda definitions exist (folded into this info)
    has_nested_defs: bool = False
    #: `For`/`AsyncFor` loop nests: (outer node, depth, iter chains)
    loop_nests: List[Tuple[ast.AST, int, Tuple[str, ...]]] = field(
        default_factory=list
    )
    #: first-parameter annotation as a dotted chain, if present
    param_annotations: Dict[str, str] = field(default_factory=dict)
    #: return annotation as a dotted chain, if present
    return_annotation: Optional[str] = None

    def is_local(self, name: str) -> bool:
        return name in self.local_names and name not in self.declared_globals


@dataclass
class ClassInfo:
    """Summary of one top-level class."""

    name: str
    qualname: str
    module: str
    node: ast.ClassDef
    #: raw dotted base-class chains
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: annotated class-body fields in declaration order (dataclasses)
    fields: List[Tuple[str, str]] = field(default_factory=list)
    is_dataclass: bool = False


@dataclass
class GlobalInfo:
    """Summary of one module-level binding."""

    name: str
    qualname: str
    module: str
    lineno: int
    #: the (first) bound value expression; None for bare annotations
    value: Optional[ast.expr]
    #: conservatively mutable? (container literal or class instance)
    mutable: bool = False
    #: raw dotted chain of the constructor when value is ``Name(...)``
    constructor: Optional[str] = None
    #: raw dotted chains referenced anywhere in the value expression
    #: (class references inside registry dicts like ``PAGE_STAGES``)
    references: List[str] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Summary of one parsed module."""

    name: str
    path: str
    context: ModuleContext
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    globals: Dict[str, GlobalInfo] = field(default_factory=dict)


@dataclass
class ProjectModel:
    """Every module summary of one analysis run, cross-indexed."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    #: every FunctionInfo by qualified name (functions and methods)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    globals: Dict[str, GlobalInfo] = field(default_factory=dict)

    def module_of_path(self, path: str) -> Optional[ModuleInfo]:
        for info in self.modules.values():
            if info.path == path:
                return info
        return None


def _module_name(ctx: ModuleContext) -> str:
    """The dotted module name; path-derived for non-``repro`` files."""
    if ctx.module is not None:
        return ctx.module
    dotted = ctx.path[:-3] if ctx.path.endswith(".py") else ctx.path
    dotted = dotted.replace("\\", "/").strip("/").replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted or ctx.path


def _chain_of(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain (self included); else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _annotation_chain(node: Optional[ast.expr]) -> Optional[str]:
    """The dotted chain of an annotation, unwrapping quotes/Optional."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        # Optional[X] / List[X] — the head type is what callers match on.
        return _annotation_chain(node.value)
    return _chain_of(node)


class _FactVisitor(ast.NodeVisitor):
    """Collects one top-level callable's facts over its whole subtree."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info

    # -- scope bookkeeping ----------------------------------------------
    def _bind(self, target: ast.AST) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                self.info.local_names.add(node.id)

    def visit_Global(self, node: ast.Global) -> None:
        self.info.declared_globals.update(node.names)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested_def(node)

    def _nested_def(self, node: ast.AST) -> None:
        self.info.has_nested_defs = True
        self.info.local_names.add(getattr(node, "name", ""))
        args = getattr(node, "args", None)
        if args is not None:
            for arg in _all_args(args):
                self.info.local_names.add(arg.arg)
        for child in getattr(node, "body", []):
            self.visit(child)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.info.has_nested_defs = True
        for arg in _all_args(node.args):
            self.info.local_names.add(arg.arg)
        self.visit(node.body)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.local_names.add(alias.asname or alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.info.local_names.add(alias.asname or alias.name)

    # -- binding statements ---------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._mutation_target(target)
            self._bind(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._mutation_target(node.target)
        self._bind(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._mutation_target(node.target, augmenting=True)
        self._bind(node.target)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._mutation_target(target)
            self._bind(target)

    def visit_For(self, node: ast.For) -> None:
        self._bind(node.target)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._bind(node.target)
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._bind(node.optional_vars)
        self.visit(node.context_expr)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.info.local_names.add(node.name)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._bind(node.target)
        self.visit(node.iter)
        for cond in node.ifs:
            self.visit(cond)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._bind(node.target)
        self.visit(node.value)

    def _mutation_target(self, target: ast.AST, augmenting: bool = False) -> None:
        """Record attr/subscript stores and ``global`` rebinds."""
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            receiver = _chain_of(target.value)
            if receiver is not None:
                self.info.mutations.append(
                    MutationSite(receiver, "store", "", target)
                )
            else:
                self.visit(target.value)
            if isinstance(target, ast.Subscript):
                self.visit(target.slice)
        elif isinstance(target, ast.Name):
            if augmenting or isinstance(target.ctx, ast.Store):
                if target.id in self.info.declared_globals:
                    self.info.mutations.append(
                        MutationSite(target.id, "rebind", "", target)
                    )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutation_target(element)

    # -- uses ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _chain_of(node.func)
        if chain is None:
            self.info.opaque_calls.append(node)
            self.visit(node.func)
        else:
            self.info.calls.append((chain, node))
            if "." in chain:
                receiver, method = chain.rsplit(".", 1)
                self.info.mutations.append(
                    MutationSite(receiver, "method", method, node)
                )
            # Record the receiver chain's reads without re-visiting the
            # attribute chain (visit args only below).
            self._record_chain(chain, node.func)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = _chain_of(node)
        if chain is not None and isinstance(node.ctx, ast.Load):
            self._record_chain(chain, node)
        else:
            self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._record_chain(node.id, node)

    def _record_chain(self, chain: str, node: ast.AST) -> None:
        parts = chain.split(".")
        head = parts[0]
        self.info.name_loads.add(head)
        self.info.chain_loads.add(chain)
        if len(parts) >= 2 and head in self.info.params:
            self.info.param_attr_reads.setdefault(head, set()).add(parts[1])


def _all_args(args: ast.arguments) -> List[ast.arg]:
    out: List[ast.arg] = []
    out.extend(getattr(args, "posonlyargs", []))
    out.extend(args.args)
    if args.vararg is not None:
        out.append(args.vararg)
    out.extend(args.kwonlyargs)
    if args.kwarg is not None:
        out.append(args.kwarg)
    return out


def _collect_loop_nests(info: FunctionInfo) -> None:
    """Record every ``for`` nest with its depth and iterated chains."""

    def loop_chains(loop: ast.AST) -> Tuple[str, ...]:
        iter_expr = getattr(loop, "iter", None)
        if iter_expr is None:
            return ()
        chains: Set[str] = set()
        for node in ast.walk(iter_expr):
            chain = _chain_of(node)
            if chain is not None:
                chains.add(chain)
        return tuple(sorted(chains))

    def depth_below(node: ast.AST) -> int:
        deepest = 0
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            child_depth = depth_below(child)
            if isinstance(child, (ast.For, ast.AsyncFor)):
                child_depth += 1
            deepest = max(deepest, child_depth)
        return deepest

    def walk(node: ast.AST, inside: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                walk(child, inside)
                continue
            if isinstance(child, (ast.For, ast.AsyncFor)):
                if not inside:
                    nest_depth = 1 + depth_below(child)
                    chains: Set[str] = set(loop_chains(child))
                    for sub in ast.walk(child):
                        if isinstance(sub, (ast.For, ast.AsyncFor)):
                            chains.update(loop_chains(sub))
                    info.loop_nests.append(
                        (child, nest_depth, tuple(sorted(chains)))
                    )
                walk(child, True)
            else:
                walk(child, inside)

    walk(info.node, False)


def _find_pool_dispatches(
    info: FunctionInfo, pool_chains: Set[str], process_chains: Set[str]
) -> None:
    """Mark pool construction and record dispatch sites."""
    local_pools: Set[str] = set()
    for chain, call in info.calls:
        # A bare multiprocessing.Process(target=..., args=...) is a
        # dispatch too: the target runs in a worker, the args cross the
        # pickle boundary.  Contexts hide the module behind a handle
        # (ctx.Process), so any ``*.Process(target=...)`` call counts.
        if chain in process_chains or chain.rsplit(".", 1)[-1] == "Process":
            target_expr: Optional[ast.expr] = None
            args_expr: Optional[ast.expr] = None
            for keyword in call.keywords:
                if keyword.arg == "target":
                    target_expr = keyword.value
                elif keyword.arg == "args":
                    args_expr = keyword.value
            if target_expr is not None:
                info.pool_dispatches.append(
                    PoolDispatch(target_expr, args_expr, "Process", call)
                )
        if chain in pool_chains:
            info.creates_pool = True
            for keyword in call.keywords:
                if keyword.arg == "initializer":
                    initargs: Optional[ast.expr] = None
                    for other in call.keywords:
                        if other.arg == "initargs":
                            initargs = other.value
                    info.pool_dispatches.append(
                        PoolDispatch(keyword.value, initargs, "initializer", call)
                    )
    if not info.creates_pool:
        return
    # Any local bound from a `with Pool(...) as pool` / assignment is a
    # pool handle candidate; dispatch methods on plain locals count.
    for node in ast.walk(info.node):
        if isinstance(node, ast.withitem) and node.optional_vars is not None:
            chain = _chain_of(node.context_expr) or _chain_of(
                getattr(node.context_expr, "func", ast.Constant(value=None))
            )
            bound = _chain_of(node.optional_vars)
            if bound is not None and chain is not None and chain in pool_chains:
                local_pools.add(bound)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            chain = _chain_of(node.value.func)
            if chain in pool_chains:
                for target in node.targets:
                    bound = _chain_of(target)
                    if bound is not None:
                        local_pools.add(bound)
    for chain, call in info.calls:
        if "." not in chain:
            continue
        receiver, method = chain.rsplit(".", 1)
        if method not in POOL_DISPATCH_METHODS:
            continue
        if local_pools and receiver not in local_pools:
            continue
        if not call.args:
            continue
        payload = call.args[1] if len(call.args) > 1 else None
        info.pool_dispatches.append(PoolDispatch(call.args[0], payload, method, call))


def _build_function(
    node: ast.AST,
    module: ModuleInfo,
    class_info: Optional[ClassInfo],
    pool_chains: Set[str],
    process_chains: Set[str],
) -> FunctionInfo:
    name = getattr(node, "name", "<lambda>")
    if class_info is not None:
        qualname = f"{class_info.qualname}.{name}"
    else:
        qualname = f"{module.name}.{name}"
    info = FunctionInfo(
        name=name,
        qualname=qualname,
        module=module.name,
        path=module.path,
        lineno=getattr(node, "lineno", 0),
        node=node,
        class_qualname=None if class_info is None else class_info.qualname,
    )
    args = getattr(node, "args", None)
    if args is not None:
        for arg in _all_args(args):
            info.params.append(arg.arg)
            info.local_names.add(arg.arg)
            chain = _annotation_chain(arg.annotation)
            if chain is not None:
                info.param_annotations[arg.arg] = chain
    info.return_annotation = _annotation_chain(getattr(node, "returns", None))
    visitor = _FactVisitor(info)
    # Visit body statements only: decorators and annotations reference
    # types, and treating those as value uses would wire spurious
    # reachability edges into the call graph.
    for child in getattr(node, "body", []):
        visitor.visit(child)
    _collect_loop_nests(info)
    _find_pool_dispatches(info, pool_chains, process_chains)
    return info


def _value_mutability(
    value: Optional[ast.expr], module: ModuleInfo
) -> Tuple[bool, Optional[str], List[str]]:
    """(mutable?, constructor chain, referenced chains) of a global."""
    if value is None:
        return False, None, []
    references: List[str] = []
    for node in ast.walk(value):
        chain = _chain_of(node)
        if chain is not None:
            references.append(chain)
    references = sorted(set(references))
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True, None, references
    if isinstance(value, ast.Call):
        chain = _chain_of(value.func)
        if chain is None:
            return False, None, references
        tail = chain.rsplit(".", 1)[-1]
        if tail in ("frozenset", "tuple", "property", "TypeVar", "compile"):
            return False, chain, references
        if tail in ("list", "dict", "set", "bytearray", "defaultdict",
                    "OrderedDict", "deque"):
            return True, chain, references
        # A call to a (possibly project) class or factory: conservatively
        # mutable; the fork-safety rule only *flags* it when a resolved
        # impure method is invoked on it from a worker path.
        return True, chain, references
    return False, None, references


def _pool_chains(module: ModuleInfo) -> Set[str]:
    """Chains that denote ``multiprocessing.Pool`` in this module."""
    chains: Set[str] = set()
    for alias, target in module.imports.items():
        if target == "multiprocessing":
            chains.add(f"{alias}.Pool")
        if target in ("multiprocessing.Pool", "multiprocessing.pool.Pool"):
            chains.add(alias)
        if target == "multiprocessing.pool":
            chains.add(f"{alias}.Pool")
    chains.add("multiprocessing.Pool")
    return chains


def _process_chains(module: ModuleInfo) -> Set[str]:
    """Chains that denote ``multiprocessing.Process`` in this module."""
    chains: Set[str] = set()
    for alias, target in module.imports.items():
        if target == "multiprocessing":
            chains.add(f"{alias}.Process")
        if target in (
            "multiprocessing.Process",
            "multiprocessing.process.Process",
        ):
            chains.add(alias)
        if target == "multiprocessing.process":
            chains.add(f"{alias}.Process")
    chains.add("multiprocessing.Process")
    return chains


def _module_imports(tree: ast.Module, module_name: str) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    package_parts = module_name.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this module's package.
                base_parts = package_parts[: -node.level] if node.level <= len(
                    package_parts
                ) else []
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _class_fields(node: ast.ClassDef) -> List[Tuple[str, str]]:
    fields: List[Tuple[str, str]] = []
    for child in node.body:
        if isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
            chain = _annotation_chain(child.annotation) or ""
            if chain == "ClassVar":
                continue
            fields.append((child.target.id, chain))
    return fields


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = _chain_of(target)
        if chain is not None and chain.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def build_module_info(ctx: ModuleContext) -> ModuleInfo:
    """Summarize one parsed module."""
    name = _module_name(ctx)
    module = ModuleInfo(name=name, path=ctx.path, context=ctx)
    module.imports = _module_imports(ctx.tree, name)
    pool_chains = _pool_chains(module)
    process_chains = _process_chains(module)

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _build_function(node, module, None, pool_chains, process_chains)
            module.functions[info.name] = info
        elif isinstance(node, ast.ClassDef):
            class_info = ClassInfo(
                name=node.name,
                qualname=f"{name}.{node.name}",
                module=name,
                node=node,
                bases=[
                    chain
                    for chain in (_chain_of(base) for base in node.bases)
                    if chain is not None
                ],
                fields=_class_fields(node),
                is_dataclass=_is_dataclass(node),
            )
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method = _build_function(
                        child, module, class_info, pool_chains, process_chains
                    )
                    class_info.methods[method.name] = method
            module.classes[node.name] = class_info
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id in module.globals:
                    continue
                mutable, constructor, references = _value_mutability(value, module)
                module.globals[target.id] = GlobalInfo(
                    name=target.id,
                    qualname=f"{name}.{target.id}",
                    module=name,
                    lineno=node.lineno,
                    value=value,
                    mutable=mutable,
                    constructor=constructor,
                    references=references,
                )
    return module


def build_project_model(contexts: Sequence[ModuleContext]) -> ProjectModel:
    """Summarize every parsed module of a run into one model.

    Contexts arrive in the engine's sorted path order; the model keeps
    that order everywhere, which is what makes downstream iteration —
    and therefore findings — deterministic.
    """
    project = ProjectModel()
    for ctx in contexts:
        module = build_module_info(ctx)
        project.modules[module.name] = module
        for function in module.functions.values():
            project.functions[function.qualname] = function
        for class_info in module.classes.values():
            project.classes[class_info.qualname] = class_info
            for method in class_info.methods.values():
                project.functions[method.qualname] = method
        for global_info in module.globals.values():
            project.globals[global_info.qualname] = global_info
    return project
