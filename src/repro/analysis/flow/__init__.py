"""Whole-program flow analysis over the project's Python sources.

A layer on top of the per-file rule engine of :mod:`repro.analysis`:
:mod:`~repro.analysis.flow.model` builds a project-wide symbol table
from the already-parsed module ASTs, :mod:`~repro.analysis.flow
.callgraph` resolves names into a call graph with reachability and a
per-function purity lattice, and :mod:`~repro.analysis.flow.rules`
implements the interprocedural rules (MP01 fork safety, MP02 payload
pickle safety, PERF01 hot-path complexity, SER01 codec drift) that no
per-file rule can express.

Everything here is deterministic: modules are processed in sorted path
order, every derived set is sorted before it is iterated for output,
and two runs over the same sources — in any argument order — produce
byte-identical findings (property-tested in ``tests/test_flow.py``).
"""

from __future__ import annotations

from repro.analysis.flow.callgraph import (
    CallGraph,
    MUTATES,
    PURE,
    READS,
    build_call_graph,
)
from repro.analysis.flow.model import (
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    build_project_model,
)
from repro.analysis.flow.rules import (
    CodecDriftRule,
    ForkSafetyRule,
    HotPathComplexityRule,
    PickleSafetyRule,
    flow_rules,
)

__all__ = [
    "CallGraph",
    "CodecDriftRule",
    "ForkSafetyRule",
    "FunctionInfo",
    "HotPathComplexityRule",
    "MUTATES",
    "ModuleInfo",
    "PURE",
    "PickleSafetyRule",
    "ProjectModel",
    "READS",
    "build_call_graph",
    "build_project_model",
    "flow_rules",
]
