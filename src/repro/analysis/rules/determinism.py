"""DET01: no nondeterminism in the scoring path.

Parallel evaluation merges per-page observers and tables from worker
processes; the merge is bit-identical only because nothing in ``core``,
``features``, ``algorithms`` or ``perf`` consults process state.  This
rule bans the usual leaks: wall-clock and RNG imports, environment
reads, ``id()``-derived values (process-dependent), and direct
iteration over unordered sets.

Process-local memo keys that never cross a process boundary are the one
sanctioned exception.  They used to carry per-line ``# lint: allow
DET01`` pragmas; they are now registered centrally, per enclosing
function, in :data:`repro.analysis.registry.IDENTITY_KEY_FUNCTIONS` —
one catalogued justification instead of a pragma per call site, and the
flow analysis (MP01) independently proves the caches the keys feed
never cross a fork.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.astutil import GATED_PACKAGES, call_name, dotted_name
from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.registry import IDENTITY_KEY_FUNCTIONS

#: module imports that pull process state into scoring code
_BANNED_IMPORTS: Set[str] = {"random", "time", "datetime", "uuid", "secrets"}

#: attribute chains that read process state
_BANNED_ATTRS = ("os.environ",)

#: calls that return unordered collections
_SET_CONSTRUCTORS: Set[str] = {"set", "frozenset"}


def _owner_map(ctx: ModuleContext) -> Dict[int, str]:
    """``id(ast node) -> enclosing top-level function qualname``.

    Nested defs fold into their top-level owner, matching the flow
    model's unit of analysis (and how the registry names functions).
    """
    owners: Dict[int, str] = {}
    if ctx.module is None:
        return owners

    def claim(node: ast.AST, qualname: str) -> None:
        for child in ast.walk(node):
            owners[id(child)] = qualname

    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            claim(stmt, f"{ctx.module}.{stmt.name}")
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    claim(item, f"{ctx.module}.{stmt.name}.{item.name}")
    return owners


def _is_unordered_set(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in _SET_CONSTRUCTORS
    return False


class DeterminismRule(Rule):
    rule_id = "DET01"
    title = "determinism"
    invariant = (
        "scoring code never consults process state: no random/time/"
        "datetime/uuid/secrets imports, no os.environ, no id()-derived "
        "values, no direct iteration over unordered sets"
    )
    scope = GATED_PACKAGES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        owners = _owner_map(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_IMPORTS:
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"import of nondeterministic module '{root}'",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_IMPORTS:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"import from nondeterministic module '{root}'",
                    )
            elif isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain in _BANNED_ATTRS:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"process-state read '{chain}'",
                    )
            elif isinstance(node, ast.Call):
                if call_name(node) == "id":
                    if owners.get(id(node)) in IDENTITY_KEY_FUNCTIONS:
                        continue
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        "id() is process-dependent; key on interned or "
                        "content-derived values instead",
                    )
            elif isinstance(node, ast.For):
                if _is_unordered_set(node.iter):
                    yield ctx.finding(
                        node.iter,
                        self.rule_id,
                        "iteration over an unordered set; wrap in sorted()",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_unordered_set(generator.iter):
                        yield ctx.finding(
                            generator.iter,
                            self.rule_id,
                            "comprehension over an unordered set; wrap in "
                            "sorted()",
                        )
