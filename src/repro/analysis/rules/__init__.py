"""The rule registry.

Rules run in the order listed here; the order is part of the engine's
determinism contract (findings are sorted afterwards, so the order only
matters for reproducible internals, not output).
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.rules.config_threading import ConfigThreadingRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.hygiene import ApiHygieneRule
from repro.analysis.rules.observer import ObserverThreadingRule
from repro.analysis.rules.purity import KernelPurityRule
from repro.analysis.rules.typing_gate import TypingGateRule

__all__ = [
    "ApiHygieneRule",
    "ConfigThreadingRule",
    "DeterminismRule",
    "KernelPurityRule",
    "ObserverThreadingRule",
    "TypingGateRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registry order."""
    return [
        DeterminismRule(),
        KernelPurityRule(),
        ObserverThreadingRule(),
        ApiHygieneRule(),
        ConfigThreadingRule(),
        TypingGateRule(),
    ]
