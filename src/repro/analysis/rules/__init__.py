"""The rule registry.

Rules run in the order listed here; the order is part of the engine's
determinism contract (findings are sorted afterwards, so the order only
matters for reproducible internals, not output).

Two registries: :func:`default_rules` holds the per-file rules,
:func:`flow_rules` (re-exported from :mod:`repro.analysis.flow`) holds
the whole-program rules, and :func:`all_rules` is the union the CLI and
CI run by default.
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.flow.rules import flow_rules
from repro.analysis.rules.config_threading import ConfigThreadingRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.hygiene import ApiHygieneRule
from repro.analysis.rules.observer import ObserverThreadingRule
from repro.analysis.rules.purity import KernelPurityRule
from repro.analysis.rules.typing_gate import TypingGateRule

__all__ = [
    "ApiHygieneRule",
    "ConfigThreadingRule",
    "DeterminismRule",
    "KernelPurityRule",
    "ObserverThreadingRule",
    "TypingGateRule",
    "all_rules",
    "default_rules",
    "flow_rules",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every registered per-file rule, in order."""
    return [
        DeterminismRule(),
        KernelPurityRule(),
        ObserverThreadingRule(),
        ApiHygieneRule(),
        ConfigThreadingRule(),
        TypingGateRule(),
    ]


def all_rules() -> List[object]:
    """Every registered rule of both kinds: per-file, then flow."""
    return [*default_rules(), *flow_rules()]
