"""CFG01: configuration is threaded, never read ambiently.

Every stage receives its ``FeatureConfig``/``MSEConfig`` as a parameter
(``config=DEFAULT_CONFIG`` as a *default value* is the sanctioned
spelling).  Reaching for ``DEFAULT_CONFIG`` inside a function body
instead of the config the caller passed silently ignores the caller's
weights — the exact bug class this rule exists to catch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import GATED_PACKAGES
from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

_AMBIENT_NAMES = ("DEFAULT_CONFIG",)


class ConfigThreadingRule(Rule):
    rule_id = "CFG01"
    title = "config threading"
    invariant = (
        "FeatureConfig/MSEConfig are passed explicitly; function bodies "
        "never reach for module-global DEFAULT_CONFIG"
    )
    scope = GATED_PACKAGES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # Default values live on node.args and stay legal; only the
            # statements of the body are swept.
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if (
                        isinstance(inner, ast.Name)
                        and isinstance(inner.ctx, ast.Load)
                        and inner.id in _AMBIENT_NAMES
                    ):
                        yield ctx.finding(
                            inner,
                            self.rule_id,
                            f"'{node.name}' reads module-global "
                            f"'{inner.id}'; use the config parameter the "
                            "caller passed",
                        )
