"""TYP01: the gated packages are fully annotated.

``mypy --strict`` runs in CI, but CI is not the only place code gets
written.  This rule enforces the part of strictness that matters most
and needs no third-party tooling: every function in the gated packages
annotates every parameter and its return type.  (``self``/``cls`` and
``__init__`` returns are exempt, per convention.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import (
    GATED_PACKAGES,
    all_arguments,
    is_staticmethod,
    iter_functions,
)
from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding


class TypingGateRule(Rule):
    rule_id = "TYP01"
    title = "typing gate"
    invariant = (
        "every function in the gated packages annotates all parameters "
        "and its return type (strict typing holds without mypy installed)"
    )
    scope = GATED_PACKAGES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func, is_method in iter_functions(ctx.tree):
            name = func.name  # type: ignore[attr-defined]
            args = all_arguments(func.args)  # type: ignore[attr-defined]
            exempt_first = is_method and not is_staticmethod(func)
            for index, arg in enumerate(args):
                if exempt_first and index == 0 and arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    yield ctx.finding(
                        arg,
                        self.rule_id,
                        f"parameter '{arg.arg}' of '{name}' is "
                        "unannotated",
                    )
            returns = func.returns  # type: ignore[attr-defined]
            if returns is None and name != "__init__":
                yield ctx.finding(
                    func,
                    self.rule_id,
                    f"'{name}' has no return annotation",
                )
