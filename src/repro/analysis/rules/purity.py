"""PUR01: kernels in ``repro.perf`` never mutate their arguments.

Interned fingerprints and signatures are shared across every memo table
and (conceptually) across worker processes; a kernel that mutates an
argument corrupts every other holder of that object.  Memo classes may
mutate ``self`` — that is their job — but plain function arguments are
read-only.  The single sanctioned exception (filling an idempotent
cache slot on a block) carries an inline pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

#: method names that mutate their receiver in place
_MUTATING_METHODS: Set[str] = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
}

_EXEMPT_PARAMS = ("self", "cls")


def _root_name(node: ast.AST) -> Optional[str]:
    """The base Name of an attribute/subscript chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _param_names(func: ast.AST) -> Set[str]:
    args = func.args  # type: ignore[attr-defined]
    names: Set[str] = set()
    for arg in list(getattr(args, "posonlyargs", [])) + list(args.args):
        names.add(arg.arg)
    for arg in args.kwonlyargs:
        names.add(arg.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    names.difference_update(_EXEMPT_PARAMS)
    return names


def _function_body_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """All nodes of a function body, without descending into nested defs."""
    stack: List[ast.AST] = list(func.body)  # type: ignore[attr-defined]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class KernelPurityRule(Rule):
    rule_id = "PUR01"
    title = "kernel purity"
    invariant = (
        "functions in repro.perf never mutate their arguments: interned "
        "fingerprints/signatures are shared by every memo table"
    )
    scope = ("repro.perf",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: ModuleContext, func: ast.AST
    ) -> Iterator[Finding]:
        params = _param_names(func)
        if not params:
            return
        for node in _function_body_nodes(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    root = _root_name(target)
                    if root in params:
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"mutation of argument '{root}' "
                            "(assignment through attribute/subscript)",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    root = _root_name(target)
                    if root in params:
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"mutation of argument '{root}' (del)",
                        )
            elif isinstance(node, ast.Call):
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr not in _MUTATING_METHODS:
                    continue
                root = _root_name(node.func)
                if root in params:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"mutation of argument '{root}' "
                        f"(.{node.func.attr}() call)",
                    )
