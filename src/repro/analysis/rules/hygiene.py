"""API01: interface hygiene, everywhere.

Mutable default arguments alias state across calls; bare ``except``
swallows KeyboardInterrupt and masks real failures; an ``__all__`` that
names things the module does not define turns ``from x import *`` and
re-export checks into lies.  Unlike the pipeline rules this one is
unscoped — hygiene holds for the whole tree.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.astutil import call_name
from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

#: constructors whose results are mutable
_MUTABLE_CALLS: Set[str] = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in _MUTABLE_CALLS
    return False


def _module_bindings(tree: ast.Module) -> Optional[Set[str]]:
    """Names bound at module level; None when a ``*`` import hides them."""
    bound: Set[str] = set()
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        bound.add(node.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                bound.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    return None
                bound.add(alias.asname or alias.name)
        elif isinstance(stmt, (ast.If, ast.Try)):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    stack.extend(handler.body)
                stack.extend(stmt.finalbody)
        elif isinstance(stmt, (ast.For, ast.While, ast.With)):
            stack.extend(stmt.body)
            if isinstance(stmt, (ast.For, ast.While)):
                stack.extend(stmt.orelse)
    return bound


def _literal_all(stmt: ast.stmt) -> Optional[ast.expr]:
    """The value of a module-level ``__all__ = [...]`` assignment."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return stmt.value
    if isinstance(stmt, ast.AnnAssign):
        target = stmt.target
        if isinstance(target, ast.Name) and target.id == "__all__":
            return stmt.value
    return None


class ApiHygieneRule(Rule):
    rule_id = "API01"
    title = "API hygiene"
    invariant = (
        "no mutable default arguments, no bare except, __all__ matches "
        "the module's actual exports"
    )
    scope = None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                defaults = list(node.args.defaults)
                defaults += [d for d in node.args.kw_defaults if d is not None]
                for default in defaults:
                    if _is_mutable_default(default):
                        name = getattr(node, "name", "<lambda>")
                        yield ctx.finding(
                            default,
                            self.rule_id,
                            f"mutable default argument in '{name}'",
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    "bare except; catch a specific exception type",
                )
        yield from self._check_all(ctx)

    def _check_all(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            value = _literal_all(stmt)
            if value is None:
                continue
            if not isinstance(value, (ast.List, ast.Tuple)):
                # computed __all__ (e.g. sorted(...)); out of scope
                continue
            names: List[str] = []
            literal = True
            for element in value.elts:
                if (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    names.append(element.value)
                else:
                    literal = False
            if not literal:
                continue
            seen: Set[str] = set()
            for name in names:
                if name in seen:
                    yield ctx.finding(
                        stmt, self.rule_id,
                        f"duplicate '{name}' in __all__",
                    )
                seen.add(name)
            bound = _module_bindings(ctx.tree)
            if bound is None:
                continue
            for name in names:
                if name not in bound:
                    yield ctx.finding(
                        stmt,
                        self.rule_id,
                        f"__all__ names '{name}' which the module does "
                        "not define",
                    )
