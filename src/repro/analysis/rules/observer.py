"""OBS01: observers are threaded, never ambient.

PR 1's tracing works because every pipeline stage receives its observer
explicitly and defaults to the no-op ``NULL_OBSERVER``.  A module-level
``Observer()`` — or an ``obs`` parameter defaulting to anything else —
reintroduces hidden global state, breaks per-run trace isolation, and
makes parallel evaluation merge the wrong spans.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

_OBSERVER_CONSTRUCTORS = ("Observer", "NullObserver")


def _obs_defaults(func: ast.AST) -> Iterator[Tuple[ast.arg, ast.AST]]:
    """``(arg, default)`` pairs for parameters named ``obs``.

    A parameter with no default yields ``(arg, None)``.
    """
    args = func.args  # type: ignore[attr-defined]
    positional: List[ast.arg] = list(getattr(args, "posonlyargs", []))
    positional += list(args.args)
    defaults: List[ast.AST] = list(args.defaults)
    padding = len(positional) - len(defaults)
    for index, arg in enumerate(positional):
        if arg.arg != "obs":
            continue
        default = defaults[index - padding] if index >= padding else None
        yield arg, default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == "obs":
            yield arg, default


def _is_null_observer(default: ast.AST) -> bool:
    return isinstance(default, ast.Name) and default.id == "NULL_OBSERVER"


class ObserverThreadingRule(Rule):
    rule_id = "OBS01"
    title = "observer threading"
    invariant = (
        "pipeline stages take obs=NULL_OBSERVER explicitly; no "
        "module-level Observer() instances"
    )
    scope = ("repro.core", "repro.pipeline", "repro.monitor")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Module-level observer instances: scan top-level statements only
        # (a function may construct one for its own run; a module must not).
        for stmt in ctx.tree.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _OBSERVER_CONSTRUCTORS
                ):
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"module-level {node.func.id}() instance; thread an "
                        "observer through obs= parameters instead",
                    )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for arg, default in _obs_defaults(node):
                if default is None:
                    yield ctx.finding(
                        arg,
                        self.rule_id,
                        f"'{node.name}' takes obs without a default; "
                        "use obs=NULL_OBSERVER",
                    )
                elif not _is_null_observer(default):
                    yield ctx.finding(
                        default,
                        self.rule_id,
                        f"'{node.name}' defaults obs to something other "
                        "than NULL_OBSERVER",
                    )
