"""The rule engine: deterministic file discovery, parsing, rule dispatch.

The engine is the machine-checked counterpart of the guarantees PR 2
made by hand: Tables 1-3 are bit-identical across serial, fast-kernel
and parallel runs *because* the kernels are pure, memo keys are interned
and nothing in the scoring path consults process state.  Each
:class:`Rule` encodes one of those invariants over the stdlib ``ast``;
the engine runs every rule over every file and returns a sorted,
de-duplicated list of :class:`~repro.analysis.findings.Finding`.

Determinism of the *linter itself* is part of the contract: files are
discovered in sorted order, rules run in registration order, and the
final findings are sorted — the same inputs produce byte-identical
output regardless of argument order or filesystem enumeration order
(property-tested in ``tests/test_analysis.py``).

Deliberate, documented exceptions are allowed inline::

    key = (id(block.page), block.start, block.end)  # lint: allow DET01 -- process-local memo key

The pragma suppresses the named rule(s) on that line only; the trailing
``-- reason`` is required reading for the next editor, not the engine.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, finding_at

#: ``# lint: allow RULE01, RULE02 -- optional reason``
_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\s+([A-Z0-9_,\s]+?)(?:--|$)")

#: rule id reserved for files the parser rejects
PARSE_RULE = "E000"


class ModuleContext:
    """Everything a rule may inspect about one parsed source file."""

    def __init__(
        self,
        path: str,
        module: Optional[str],
        source: str,
        tree: ast.Module,
    ) -> None:
        self.path = path
        #: dotted module name when the file lives under a ``repro``
        #: package directory (``repro.core.mse``); None otherwise.
        self.module = module
        self.source = source
        self.tree = tree

    def in_packages(self, prefixes: Sequence[str]) -> bool:
        """Whether this module belongs to any of the dotted prefixes."""
        if self.module is None:
            return False
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return finding_at(self.path, node, rule, message)


class Rule:
    """Base class of one invariant check.

    Subclasses set ``rule_id``, ``title`` and ``invariant`` (the docs
    render them verbatim) and implement :meth:`check`.  ``scope`` limits
    the rule to dotted module prefixes; ``None`` applies it everywhere.
    """

    rule_id: str = ""
    title: str = ""
    invariant: str = ""
    scope: Optional[Tuple[str, ...]] = None

    def applies_to(self, ctx: ModuleContext) -> bool:
        if self.scope is None:
            return True
        return ctx.in_packages(self.scope)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectContext:
    """Everything a project rule may inspect about one analysis run.

    Holds every parsed module of the run (sorted by display path — the
    engine's discovery order) plus a scratch ``cache`` dict the flow
    rules use to share one symbol table / call graph per run instead of
    rebuilding them per rule.
    """

    def __init__(self, modules: Sequence[ModuleContext]) -> None:
        self.modules = list(modules)
        self.cache: Dict[str, object] = {}


class ProjectRule:
    """Base class of one whole-program check.

    Unlike :class:`Rule`, a project rule sees every parsed file of the
    run at once (symbol tables, call graphs and codec/dataclass pairs
    are cross-module facts).  Findings still land on one file and line,
    and inline ``# lint: allow`` pragmas suppress them the same way.
    """

    rule_id: str = ""
    title: str = ""
    invariant: str = ""

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


def module_name_of(path: Path) -> Optional[str]:
    """Dotted module name for files under a ``repro`` package directory.

    Anchored on the last path component named ``repro`` so the same
    derivation works for ``src/repro/...`` in the repository and for
    fixture trees tests lay out under a temporary directory.
    """
    parts = [part for part in path.parts]
    anchor = None
    for index, part in enumerate(parts):
        if part == "repro":
            anchor = index
    if anchor is None:
        return None
    dotted = list(parts[anchor:-1])
    stem = path.stem
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Python files under the given paths, deduplicated and sorted.

    Sorting by posix path string makes discovery independent of both the
    argument order and the filesystem's directory enumeration order.
    """
    seen: Set[str] = set()
    out: List[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root]
        elif root.is_dir():
            candidates = root.rglob("*.py")
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            key = candidate.resolve().as_posix()
            if key in seen:
                continue
            seen.add(key)
            out.append(candidate)
    out.sort(key=lambda p: p.as_posix())
    return out


#: marker files that identify the repository root for path display
_ROOT_MARKERS = ("pyproject.toml", ".git")


def display_root(start: Optional[Path] = None) -> Path:
    """The directory findings paths are made relative to.

    Walks up from ``start`` (default: the working directory) to the
    nearest repository marker; falls back to ``start`` itself.  Keeping
    reported paths repo-relative makes baselines machine-portable: the
    same finding produces the same baseline entry regardless of where
    the repository is checked out or whether the linter was invoked
    with an absolute or a relative root.
    """
    origin = (start or Path.cwd()).resolve()
    for candidate in [origin, *origin.parents]:
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return origin


def display_path(path: Path, root: Optional[Path] = None) -> str:
    """Repo-relative posix form of a path when under the root.

    Paths outside the root (temporary fixture trees in tests, say) keep
    their as-given form.
    """
    base = display_root() if root is None else root
    resolved = path.resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


def _suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """``line number -> rule ids`` allowed by inline pragmas."""
    allowed: Dict[int, Set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        ids = {
            part.strip()
            for part in match.group(1).replace(",", " ").split()
            if part.strip()
        }
        if ids:
            allowed[number] = ids
    return allowed


class ParsedFile:
    """One discovered file: parsed context (or parse error) + pragmas."""

    def __init__(
        self,
        display: str,
        ctx: Optional[ModuleContext],
        allowed: Dict[int, Set[str]],
        parse_error: Optional[Finding],
    ) -> None:
        self.display = display
        self.ctx = ctx
        self.allowed = allowed
        self.parse_error = parse_error


def parse_file(path: Path, root: Optional[Path] = None) -> ParsedFile:
    """Parse one file once: context, pragma lines, or a parse finding."""
    display = display_path(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return ParsedFile(
            display,
            None,
            {},
            Finding(
                path=display,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule=PARSE_RULE,
                message=f"file does not parse: {exc.msg}",
            ),
        )
    ctx = ModuleContext(
        path=display, module=module_name_of(path), source=source, tree=tree
    )
    return ParsedFile(display, ctx, _suppressed_lines(source), None)


def _run_file_rules(
    parsed: ParsedFile, rules: Sequence[Rule]
) -> List[Finding]:
    if parsed.parse_error is not None:
        return [parsed.parse_error]
    ctx = parsed.ctx
    assert ctx is not None
    out: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if finding.rule in parsed.allowed.get(finding.line, ()):
                continue
            out.append(finding)
    return out


def analyze_file(path: Path, rules: Sequence[Rule]) -> List[Finding]:
    """All findings of the given per-file rules for one file."""
    return _run_file_rules(parse_file(path), rules)


AnyRule = object  # Rule | ProjectRule; kept loose for 3.9 compatibility


def analyze_paths(
    paths: Sequence[str], rules: Optional[Sequence[object]] = None
) -> List[Finding]:
    """Run the rules over every Python file under ``paths``, sorted.

    ``rules`` may mix per-file :class:`Rule` and whole-program
    :class:`ProjectRule` instances; by default every registered rule of
    both kinds runs.  Files are parsed exactly once, shared between the
    per-file pass and the project pass.
    """
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()
    file_rules = [rule for rule in rules if isinstance(rule, Rule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]

    root = display_root()
    parsed_files = [parse_file(path, root) for path in discover_files(paths)]

    findings: Set[Finding] = set()
    for parsed in parsed_files:
        findings.update(_run_file_rules(parsed, file_rules))

    if project_rules:
        contexts = [p.ctx for p in parsed_files if p.ctx is not None]
        allowed_of = {
            p.display: p.allowed for p in parsed_files if p.ctx is not None
        }
        project = ProjectContext(contexts)
        for rule in project_rules:
            for finding in rule.check_project(project):
                if finding.rule in allowed_of.get(finding.path, {}).get(
                    finding.line, ()
                ):
                    continue
                findings.add(finding)
    return sorted(findings, key=Finding.sort_key)
