"""Central classification of process-local state.

PR 3 marked every process-local memo site with an inline
``# lint: allow`` pragma; as the memo family grew (``TREE_MEMO``,
``RECORD_MEMO``, ``DINR_MEMO``, the interners, the serving worker
wrapper list) the pragmas spread and nothing tied them together.  This
registry replaces them with explicit, *reviewed* classification:

- :data:`PROCESS_LOCAL_MEMOS` names every mutable module global that the
  fork-safety rule (MP01) accepts on a pool-worker path.  An entry is a
  claim: the global is a memo or interner whose values are pure
  functions of their keys, so a fork that starts cold merely recomputes
  — it can never disagree with the parent.  Anything mutable mutated on
  a worker path and *not* listed here is a fork-safety finding.

- :data:`POOL_WORKER_ENTRYPOINTS` names the functions that run inside
  worker processes.  The flow model also discovers entries structurally
  from dispatch sites; the declared list is the safety net for targets
  shipped through dynamically-resolved handles (a ``get_context()``
  Process factory), and seeds :func:`repro.analysis.flow.callgraph
  .build_call_graph`'s ``worker_entries``.

- :data:`IDENTITY_KEY_FUNCTIONS` names the functions allowed to derive
  ``id()``-based memo keys (DET01's one sanctioned exception).  Keys
  built from object identity are process-dependent by construction;
  they are sound exactly when the table that holds them never crosses a
  process boundary.  Registering the *function* here replaces the
  per-line pragmas those sites used to carry and keeps the reasons in
  one reviewed place.

Every entry carries its justification string; the docs renderer and the
flow rules surface it verbatim.  To classify a new module-level cache as
process-local, add it to :data:`PROCESS_LOCAL_MEMOS` with a reason that
argues value-purity (see DESIGN.md "Whole-program flow analysis").
"""

from __future__ import annotations

from typing import Dict

#: mutable module globals MP01 accepts on pool-worker paths: qualified
#: name -> why a cold per-process copy is equivalent to the parent's
PROCESS_LOCAL_MEMOS: Dict[str, str] = {
    "repro.perf.kernels.TREE_MEMO": (
        "bounded PairMemo of pure tree-distance values; a cold worker "
        "recomputes identical floats (bit-identity property-tested)"
    ),
    "repro.perf.kernels.FOREST_MEMO": (
        "bounded PairMemo of pure forest-distance values; cold-start "
        "recomputation is bit-identical to the parent's entries"
    ),
    "repro.perf.kernels.RECORD_MEMO": (
        "Drec memo keyed on (config, fingerprint, fingerprint); the "
        "weighted sum is a pure function of the key"
    ),
    "repro.perf.kernels.DINR_MEMO": (
        "section-homogeneity memo keyed on ordered record fingerprints; "
        "Dinr is a pure function of the key"
    ),
    "repro.perf.fingerprints.ATTR_INTERNER": (
        "intern table for text-attr bitmasks; interning is idempotent "
        "and generation-guarded, each process builds its own universe"
    ),
    "repro.perf.fingerprints.TEXT_INTERNER": (
        "intern table for marker texts; idempotent, generation-guarded, "
        "never shipped across processes"
    ),
    "repro.perf.fingerprints.TUPLE_INTERNER": (
        "intern table for signature tuples; idempotent fill, interned "
        "objects are compared by value at every boundary"
    ),
}

#: declared pool/process worker entry points: qualified name -> how the
#: function reaches a worker process.  The flow model discovers entries
#: structurally (Pool dispatch methods, ``Process(target=...)``), but a
#: target constructed behind a factory handle (``ctx.Process`` from
#: ``multiprocessing.get_context()``) resolves dynamically; declaring it
#: here guarantees MP01 fork-safety coverage cannot silently lapse when
#: the construction site is refactored.
POOL_WORKER_ENTRYPOINTS: Dict[str, str] = {
    "repro.perf.server._worker_main": (
        "Server._spawn ships it via ctx.Process(target=...): the "
        "resident worker loop that compiles, primes and serves chunks"
    ),
    "repro.perf.server._prime_worker": (
        "runs inside _worker_main before the first chunk: warms the "
        "process-local kernel memos over the priming pages"
    ),
    "repro.perf.server._run_chunk": (
        "per-chunk serve/extract payload executed inside the resident "
        "worker loop"
    ),
}

#: functions allowed to build id()-derived memo keys: qualified name ->
#: why identity keys are sound there (replaces the PR 3 line pragmas)
IDENTITY_KEY_FUNCTIONS: Dict[str, str] = {
    "repro.features.blocks.Block.__hash__": (
        "blocks hash by (page identity, span); hashes are process-local "
        "by definition and never serialized"
    ),
    "repro.features.record_distance.RecordDistanceCache.distance": (
        "per-run cache keyed on (page identity, span); caches are "
        "created per page set and never cross processes"
    ),
    "repro.features.record_distance.RecordDistanceCache.diversity": (
        "per-run diversity memo keyed on (page identity, span); same "
        "lifetime as the distance cache"
    ),
    "repro.perf.kernels.PairMemo.lookup": (
        "canonicalizes the signature pair by object identity, valid "
        "because signatures are interned and the memo is process-local"
    ),
    "repro.core.verify._section_dinr_key": (
        "page-local leaf-line identity lookups build a key whose "
        "encoded values are line offsets, not ids; never serialized"
    ),
    "repro.perf.serve._dom_span": (
        "page-local DOM-node -> line lookup consumed by the page index "
        "that builds it; ids never outlive the page"
    ),
    "repro.perf.serve.PageIndex.span_of": (
        "page-local element -> line-span cache; the index and its keys "
        "share the page's lifetime inside one process"
    ),
    "repro.pipeline.stages.GroupingStage.encode": (
        "identity lookup encodes each section as its deterministic "
        "(page, section) index pair; ids never reach the payload"
    ),
}
