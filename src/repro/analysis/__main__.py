"""``python -m repro.analysis``: the invariant linter CLI.

Exit codes: 0 — no unsuppressed findings; 1 — findings remain;
2 — usage error (bad path, bad baseline file, git failure).

``--changed-only`` makes the gate diff-aware: analysis still runs over
the whole tree (the flow rules need every module to build the call
graph), but only findings located in files that differ from
``--diff-base`` (default ``HEAD``) count toward the exit code.  A PR
therefore fails only on findings it could have introduced, while the
full-tree run on main keeps the global invariant at zero.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import analyze_paths, display_root
from repro.analysis.findings import Finding
from repro.analysis.rules import all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST invariant linter for the MSE pipeline: determinism, "
            "kernel purity, observer/config threading, API hygiene, "
            "typing completeness, and whole-program flow rules "
            "(fork safety, pickle safety, hot-path complexity, codec "
            "drift)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "only count findings in files changed relative to "
            "--diff-base (analysis still covers the whole tree)"
        ),
    )
    parser.add_argument(
        "--diff-base",
        metavar="REF",
        default="HEAD",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    return parser


def _changed_files(base: str) -> Set[str]:
    """Repo-relative posix paths changed vs ``base``, plus untracked.

    Matches the engine's finding paths: both are relative to the
    repository root, so filtering is a plain set lookup.
    """
    root = display_root()
    changed: Set[str] = set()
    for args in (
        ["git", "diff", "--name-only", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            args,
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        )
        changed.update(
            line.strip()
            for line in proc.stdout.splitlines()
            if line.strip()
        )
    return changed


def _render_text(findings: Sequence[Finding], suppressed: int) -> str:
    lines = [f.render() for f in findings]
    summary = f"{len(findings)} finding(s)"
    if suppressed:
        summary += f", {suppressed} suppressed by baseline"
    lines.append(summary)
    return "\n".join(lines)


def _render_json(findings: Sequence[Finding], suppressed: int) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "suppressed": suppressed,
        },
        indent=2,
        sort_keys=True,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    opts = parser.parse_args(argv)

    rules: List[object] = list(all_rules())
    if opts.rules:
        wanted = {part.strip() for part in opts.rules.split(",") if part.strip()}
        known = {getattr(rule, "rule_id", "") for rule in rules}
        unknown = wanted - known
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        rules = [
            rule for rule in rules if getattr(rule, "rule_id", "") in wanted
        ]

    try:
        findings = analyze_paths(opts.paths, rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if opts.changed_only:
        try:
            changed = _changed_files(opts.diff_base)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"error: cannot list changed files: {exc}", file=sys.stderr)
            return 2
        findings = [f for f in findings if f.path in changed]

    if opts.write_baseline:
        save_baseline(Path(opts.write_baseline), findings)
        print(
            f"wrote {len(findings)} finding(s) to {opts.write_baseline}"
        )
        return 0

    suppressed = 0
    if opts.baseline:
        try:
            baseline = load_baseline(Path(opts.baseline))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        before = len(findings)
        findings = apply_baseline(findings, baseline)
        suppressed = before - len(findings)

    if opts.format == "json":
        print(_render_json(findings, suppressed))
    else:
        print(_render_text(findings, suppressed))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
