"""Small shared AST helpers for the analysis rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

#: the packages whose determinism/purity/typing the perf + parallel
#: layers depend on (see DESIGN.md "Static analysis"); matching is by
#: prefix, so subpackages ride along (repro.perf covers
#: repro.perf.serve and repro.perf.server, the warm worker pool)
GATED_PACKAGES: Tuple[str, ...] = (
    "repro.core",
    "repro.features",
    "repro.algorithms",
    "repro.perf",
    "repro.pipeline",
    "repro.monitor",
    "repro.obs.health",
)

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, when it is a plain name chain."""
    return dotted_name(node.func)


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, bool]]:
    """All function definitions with a ``is_method`` flag.

    ``is_method`` is True when the def sits directly in a class body
    (its first parameter is a self/cls unless decorated static).
    """
    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: List[Tuple[ast.AST, bool]] = []

        def _visit_func(self, node: ast.AST, parent_is_class: bool) -> None:
            self.found.append((node, parent_is_class))

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._visit_func(child, True)
                    self._descend(child)
                else:
                    self.visit(child)

        def generic_visit(self, node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._visit_func(child, False)
                    self._descend(child)
                else:
                    self.visit(child)

        def _descend(self, func: ast.AST) -> None:
            # Walk the function body for nested defs/classes.
            for child in ast.iter_child_nodes(func):
                self.visit(child)

    visitor = _Visitor()
    visitor.visit(tree)
    for item in visitor.found:
        yield item


def is_staticmethod(node: ast.AST) -> bool:
    decorators = getattr(node, "decorator_list", [])
    return any(
        isinstance(d, ast.Name) and d.id == "staticmethod" for d in decorators
    )


def all_arguments(args: ast.arguments) -> List[ast.arg]:
    """Every parameter of a signature, in declaration order."""
    out: List[ast.arg] = []
    out.extend(getattr(args, "posonlyargs", []))
    out.extend(args.args)
    if args.vararg is not None:
        out.append(args.vararg)
    out.extend(args.kwonlyargs)
    if args.kwarg is not None:
        out.append(args.kwarg)
    return out
