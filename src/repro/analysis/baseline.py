"""Baselines: a committed ledger of known findings, burned down to zero.

A baseline file records findings by their line-insensitive
:meth:`~repro.analysis.findings.Finding.suppression_key` so unrelated
edits above a finding do not invalidate it.  The repository's committed
``analysis-baseline.json`` is intentionally empty — new findings fail
CI immediately — but the mechanism exists so a future rule can land
before its violations are fixed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from repro.analysis.findings import Finding

BASELINE_FORMAT = "repro-analysis-baseline"
BASELINE_VERSION = 1


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the findings as a baseline file (sorted, stable)."""
    payload = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "findings": [
            f.to_dict() for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_baseline(path: Path) -> List[Finding]:
    """Read a baseline file back into findings."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("format") != BASELINE_FORMAT:
        raise ValueError(f"not a {BASELINE_FORMAT} file: {path}")
    return [Finding.from_dict(obj) for obj in payload.get("findings", [])]


def apply_baseline(
    findings: Sequence[Finding], baseline: Sequence[Finding]
) -> List[Finding]:
    """Findings not covered by the baseline, in stable order."""
    known: Set[Tuple[str, str, str]] = {
        f.suppression_key() for f in baseline
    }
    return [f for f in findings if f.suppression_key() not in known]
