"""Findings: the unit of output of every analysis rule.

A :class:`Finding` pins one rule violation to a file and line.  Findings
are plain, orderable, hashable data so the engine can sort, deduplicate
and diff them deterministically — the same properties the pipeline
demands of its own outputs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Stable total order: path, then position, then rule, message."""
        return (self.path, self.line, self.col, self.rule, self.message)

    def render(self) -> str:
        """The one-line ``path:line:col: RULE message`` text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (used by ``--format json`` and baselines)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "Finding":
        return cls(
            path=str(obj["path"]),
            line=int(obj.get("line", 0)),
            col=int(obj.get("col", 0)),
            rule=str(obj["rule"]),
            message=str(obj["message"]),
        )

    def suppression_key(self) -> Tuple[str, str, str]:
        """The line-insensitive identity used for baseline matching.

        Baselines must survive unrelated edits above a finding, so the
        key deliberately omits line and column.
        """
        return (self.rule, self.path, self.message)


def finding_at(
    path: str, node: ast.AST, rule: str, message: str
) -> Finding:
    """Build a finding from an AST node's location."""
    return Finding(
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
    )
