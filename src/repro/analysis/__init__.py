"""``repro.analysis``: the AST invariant linter for the MSE pipeline.

PR 2 proved Tables 1-3 bit-identical across serial, fast-kernel and
parallel runs; this package turns the invariants that proof rests on
into machine-checked rules.  See DESIGN.md "Static analysis" for the
rule catalogue and ``python -m repro.analysis --help`` for the CLI.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import (
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    analyze_file,
    analyze_paths,
    discover_files,
    display_path,
    display_root,
    module_name_of,
)
from repro.analysis.findings import Finding, finding_at
from repro.analysis.rules import all_rules, default_rules, flow_rules

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "apply_baseline",
    "default_rules",
    "discover_files",
    "display_path",
    "display_root",
    "finding_at",
    "flow_rules",
    "load_baseline",
    "module_name_of",
    "save_baseline",
]
