"""Synthetic search-engine test bed with embedded ground truth.

Replaces the paper's manually collected result pages from 119 live search
engines (unavailable) with deterministic, seeded page generators that
reproduce the structural phenomena the MSE algorithm targets.
"""

from repro.testbed.corpus import (
    CORPUS_SEED,
    MULTI_SECTION_ENGINES,
    PAGES_PER_ENGINE,
    SAMPLE_PAGES,
    SINGLE_SECTION_ENGINES,
    TOTAL_ENGINES,
    EnginePages,
    boundary_marker_rate,
    engine_ids,
    iter_corpus,
    load_engine_pages,
    make_engine,
)
from repro.testbed.documents import RecordData, Repository
from repro.testbed.engine import SectionSchemaSpec, SyntheticEngine
from repro.testbed.evolution import (
    MUTATIONS,
    EvolutionTruth,
    EvolvingEnginePages,
    TemplateMutation,
    evolve_engine,
    load_evolving_pages,
)
from repro.testbed.groundtruth import PageTruth, TruthSection, compute_truth

__all__ = [
    "CORPUS_SEED",
    "EnginePages",
    "EvolutionTruth",
    "EvolvingEnginePages",
    "MULTI_SECTION_ENGINES",
    "MUTATIONS",
    "PAGES_PER_ENGINE",
    "PageTruth",
    "RecordData",
    "Repository",
    "SAMPLE_PAGES",
    "SINGLE_SECTION_ENGINES",
    "SectionSchemaSpec",
    "SyntheticEngine",
    "TOTAL_ENGINES",
    "TemplateMutation",
    "TruthSection",
    "boundary_marker_rate",
    "compute_truth",
    "engine_ids",
    "evolve_engine",
    "iter_corpus",
    "load_engine_pages",
    "load_evolving_pages",
    "make_engine",
]
