"""The 119-engine test bed (paper §6).

The paper's evaluation uses 100 engines from the ViNTs test bed dataset 2
(19 of which return multiple dynamic sections) plus 19 additional
multi-section engines: 81 single-section and 38 multi-section engines,
10 result pages each (5 sample/training + 5 test).

This module materializes the equivalent synthetic corpus: engines 0..80
are single-section, engines 81..118 are multi-section; each provides 10
deterministic query/page pairs split 5/5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.testbed.engine import SyntheticEngine
from repro.testbed.groundtruth import PageTruth, compute_truth

SINGLE_SECTION_ENGINES = 81
MULTI_SECTION_ENGINES = 38
TOTAL_ENGINES = SINGLE_SECTION_ENGINES + MULTI_SECTION_ENGINES  # 119

PAGES_PER_ENGINE = 10
SAMPLE_PAGES = 5  # wrapper induction / tuning
TEST_PAGES = 5

#: global seed offset so the corpus can be re-rolled wholesale if needed
CORPUS_SEED = 20060912  # VLDB'06 opening day


@dataclass
class EnginePages:
    """One engine's workload: queries, pages and ground truth."""

    engine: SyntheticEngine
    queries: List[str]
    pages: List[str]  # HTML, aligned with queries
    truths: List[PageTruth]

    @property
    def sample_set(self) -> List[Tuple[str, str]]:
        """(html, query) pairs of the sample/training pages."""
        return list(zip(self.pages[:SAMPLE_PAGES], self.queries[:SAMPLE_PAGES]))

    @property
    def test_set(self) -> List[Tuple[str, str]]:
        """(html, query) pairs of the held-out test pages."""
        return list(zip(self.pages[SAMPLE_PAGES:], self.queries[SAMPLE_PAGES:]))

    def truth_of(self, page_index: int) -> PageTruth:
        return self.truths[page_index]


def make_engine(engine_id: int) -> SyntheticEngine:
    """Engine ``engine_id`` of the corpus (0..118)."""
    if not 0 <= engine_id < TOTAL_ENGINES:
        raise ValueError(f"engine_id must be in [0, {TOTAL_ENGINES})")
    multi = engine_id >= SINGLE_SECTION_ENGINES
    return SyntheticEngine.generate(
        engine_id=engine_id, seed=CORPUS_SEED + engine_id, multi_section=multi
    )


def load_engine_pages(
    engine_id: int, pages_per_engine: int = PAGES_PER_ENGINE
) -> EnginePages:
    """Generate one engine's full workload with ground truth."""
    engine = make_engine(engine_id)
    queries = engine.queries(pages_per_engine)
    pages = [engine.result_page(query) for query in queries]
    truths = [compute_truth(markup) for markup in pages]
    return EnginePages(engine=engine, queries=queries, pages=pages, truths=truths)


def engine_ids(subset: str = "all") -> List[int]:
    """Engine id lists: 'all' (119), 'single' (81), 'multi' (38)."""
    if subset == "all":
        return list(range(TOTAL_ENGINES))
    if subset == "single":
        return list(range(SINGLE_SECTION_ENGINES))
    if subset == "multi":
        return list(range(SINGLE_SECTION_ENGINES, TOTAL_ENGINES))
    raise ValueError(f"unknown subset {subset!r}")


def iter_corpus(
    subset: str = "all", limit: Optional[int] = None
) -> Iterator[EnginePages]:
    """Iterate engine workloads, optionally capped at ``limit`` engines."""
    ids = engine_ids(subset)
    if limit is not None:
        ids = ids[:limit]
    for engine_id in ids:
        yield load_engine_pages(engine_id)


def boundary_marker_rate(subset: str = "all") -> float:
    """Fraction of sections with an explicit header marker (§2 statistic)."""
    with_marker = 0
    total = 0
    for engine_id in engine_ids(subset):
        engine = make_engine(engine_id)
        for spec in engine.sections:
            total += 1
            if spec.has_header or engine.shared_table:
                with_marker += 1
    return with_marker / total if total else 0.0
