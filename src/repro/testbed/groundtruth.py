"""Ground truth recovery from marked pages.

The corpus embeds ``data-gt-*`` markers (see :mod:`repro.testbed.sections`)
in the pages it emits.  This module re-derives the ground truth in terms
of *content line spans* from a page that went through the same
parse-and-render path the extractor uses, so truth and extraction are
compared in the same coordinate system.

Span rules:

- container sections (``data-gt-sec``): the section span is the
  container's line range; record *i* runs from its marker's first line to
  the line before record *i+1* (the last record ends at the container);
- shared-table sections (``data-gt-shared`` on the common tbody): records
  run to the next *stopper* — any header / bound / record marker line or
  the shared container's end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.htmlmod.dom import Element
from repro.htmlmod.parser import parse_html
from repro.render.layout import render_page
from repro.render.lines import RenderedPage


@dataclass(frozen=True)
class TruthSection:
    """Ground truth for one section instance on one page."""

    sid: str
    span: Tuple[int, int]
    record_spans: Tuple[Tuple[int, int], ...]
    header_line: Optional[int] = None

    @property
    def record_count(self) -> int:
        return len(self.record_spans)


@dataclass
class PageTruth:
    """Ground truth for one rendered result page."""

    page: RenderedPage
    sections: List[TruthSection]

    @property
    def record_count(self) -> int:
        return sum(s.record_count for s in self.sections)


def compute_truth(markup: str) -> PageTruth:
    """Parse, render, and read the embedded ground truth of a page."""
    page = render_page(parse_html(markup))
    return truth_of_rendered(page)


def truth_of_rendered(page: RenderedPage) -> PageTruth:
    """Ground truth of an already-rendered marked page."""
    containers: Dict[str, Tuple[int, int]] = {}
    headers: Dict[str, int] = {}
    record_marks: Dict[str, List[Tuple[int, int]]] = {}  # sid -> [(idx, line)]
    bound_lines: List[int] = []
    shared_span: Optional[Tuple[int, int]] = None

    for element in page.document.root.iter_elements():
        attrs = element.attrs
        if "data-gt-sec" in attrs:
            found = page.line_range_of_element(element)
            if found:
                containers[attrs["data-gt-sec"]] = found
        if "data-gt-header" in attrs:
            found = page.line_range_of_element(element)
            if found:
                headers[attrs["data-gt-header"]] = found[0]
                bound_lines.append(found[0])
        if "data-gt-bound" in attrs:
            found = page.line_range_of_element(element)
            if found:
                bound_lines.append(found[0])
        if "data-gt-shared" in attrs:
            found = page.line_range_of_element(element)
            if found:
                shared_span = found
        if "data-gt-rec" in attrs:
            sid, _, index = attrs["data-gt-rec"].partition(":")
            found = page.line_range_of_element(element)
            if found:
                record_marks.setdefault(sid, []).append((int(index), found[0]))

    sections: List[TruthSection] = []
    all_record_lines = sorted(
        line for marks in record_marks.values() for _, line in marks
    )

    for sid, marks in record_marks.items():
        marks.sort()
        starts = [line for _, line in marks]
        container = containers.get(sid)
        if container is not None:
            spans = _container_record_spans(starts, container)
            section_span = (spans[0][0], spans[-1][1])
        elif shared_span is not None:
            spans = _stopper_record_spans(
                starts, shared_span, bound_lines, all_record_lines
            )
            section_span = (spans[0][0], spans[-1][1])
        else:
            continue  # malformed marking; skip defensively
        sections.append(
            TruthSection(
                sid=sid,
                span=section_span,
                record_spans=tuple(spans),
                header_line=headers.get(sid),
            )
        )

    sections.sort(key=lambda s: s.span[0])
    return PageTruth(page=page, sections=sections)


def _container_record_spans(
    starts: List[int], container: Tuple[int, int]
) -> List[Tuple[int, int]]:
    spans: List[Tuple[int, int]] = []
    for i, begin in enumerate(starts):
        end = starts[i + 1] - 1 if i + 1 < len(starts) else container[1]
        spans.append((begin, end))
    return spans


def _stopper_record_spans(
    starts: List[int],
    shared: Tuple[int, int],
    bound_lines: List[int],
    all_record_lines: List[int],
) -> List[Tuple[int, int]]:
    stoppers = sorted(
        set(bound_lines) | set(all_record_lines) | {shared[1] + 1}
    )
    spans: List[Tuple[int, int]] = []
    for begin in starts:
        nxt = next(s for s in stoppers if s > begin)
        spans.append((begin, nxt - 1))
    return spans
