"""Synthetic document repositories.

Each engine owns one repository per section schema (the paper's model:
sections correspond to data repositories — Encyclopedia, News, ...).  A
repository answers a query with a deterministic, query-dependent list of
:class:`RecordData`; the hit count varies per query and can be zero, which
is exactly what makes sections *dynamic* (and sometimes hidden from the
sample pages).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List, Optional

from repro.testbed import vocab


@dataclass(frozen=True)
class RecordData:
    """The data of one search result record before rendering."""

    title: str
    url: str
    snippet: Optional[str]
    date: Optional[str]
    price: Optional[str]
    source: Optional[str]


@dataclass
class Repository:
    """One section's backing data source.

    ``seed`` individualizes the repository; ``min_hits``/``max_hits``
    bound the per-query result count; ``empty_rate`` is the probability a
    query retrieves nothing (the whole section then disappears from that
    page — the hidden-section mechanism).  Field rates control optional
    record parts, so records vary realistically *within* a section.
    """

    seed: int
    topic: str
    domain: str
    min_hits: int = 1
    max_hits: int = 8
    empty_rate: float = 0.0
    snippet_rate: float = 0.85
    date_rate: float = 0.5
    price_rate: float = 0.0
    source_rate: float = 0.0

    def retrieve(self, query: str) -> List[RecordData]:
        """Deterministic results for ``query`` (same query -> same records)."""
        # zlib.crc32 is stable across processes (str.__hash__ is not).
        key = f"{self.seed}|{self.topic}|{query}".encode("utf-8")
        rng = random.Random(zlib.crc32(key))
        if self.empty_rate and rng.random() < self.empty_rate:
            return []
        count = rng.randint(self.min_hits, self.max_hits)
        records: List[RecordData] = []
        for _ in range(count):
            records.append(
                RecordData(
                    title=vocab.make_title(rng, query),
                    url=vocab.make_url(rng, self.domain),
                    snippet=vocab.make_snippet(rng, query)
                    if rng.random() < self.snippet_rate
                    else None,
                    date=vocab.make_date(rng) if rng.random() < self.date_rate else None,
                    price=vocab.make_price(rng) if rng.random() < self.price_rate else None,
                    source=f"{self.topic} desk" if rng.random() < self.source_rate else None,
                )
            )
        return records
