"""Section rendering styles for the synthetic corpus.

Each style turns a list of :class:`RecordData` into DOM, mimicking a
family of 2006-era result page layouts.  Ground-truth markers are written
as ``data-gt-*`` attributes:

- ``data-gt-sec="<sid>"`` on the element that contains exactly the
  section's records (most styles);
- ``data-gt-rec="<sid>:<i>"`` on each record's first element;
- ``data-gt-header="<sid>"`` / ``data-gt-bound="<sid>"`` on header /
  footer elements (used as span stoppers by the shared-table style,
  which has no per-section container);
- ``data-gt-shared="1"`` on a container shared by several sections.

The markers are invisible to the extractor: no pipeline stage reads
``data-*`` attributes, and they do not affect rendering, tag signatures,
or any distance measure (asserted by the test suite).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.htmlmod.dom import Element
from repro.testbed.documents import RecordData


@dataclass
class StyleOptions:
    """Per-engine knobs shared by all styles of that engine.

    ``inline_link_rate`` puts an anchor inside some snippets, which breaks
    anchor-based separators (a realistic record-level error source);
    ``broken_nesting_rate`` wraps a middle run of records in an extra
    ``<div>``, producing the paper's "records are not siblings" hard case.
    """

    header_tag: str = "h2"
    show_footer: bool = True
    inline_link_rate: float = 0.0
    broken_nesting_rate: float = 0.0
    record_class: str = "res"


def _header_element(text: str, sid: str, options: StyleOptions) -> Element:
    """A section header styled per the engine's convention."""
    tag = options.header_tag
    attrs = {"data-gt-header": sid}
    if tag in ("h2", "h3", "h4"):
        header = Element(tag, attrs)
        header.append_text(text)
    elif tag == "b":
        header = Element("p", attrs)
        bold = Element("b")
        bold.append_text(text)
        header.append(bold)
    elif tag == "font":
        header = Element("p", attrs)
        font = Element("font", {"size": "4", "color": "#003366"})
        bold = Element("b")
        bold.append_text(text)
        font.append(bold)
        header.append(font)
    else:
        header = Element("div", {**attrs, "class": "sechead"})
        strong = Element("strong")
        strong.append_text(text)
        header.append(strong)
    return header


def _footer_element(sid: str) -> Element:
    footer = Element("p", {"data-gt-bound": sid})
    more = Element("a", {"href": f"/more/{sid}"})
    more.append_text("Click Here for More")
    footer.append(more)
    return footer


def _title_anchor(record: RecordData) -> Element:
    anchor = Element("a", {"href": record.url})
    anchor.append_text(record.title)
    return anchor


def _snippet_nodes(
    record: RecordData, rng: random.Random, options: StyleOptions
) -> List[Element]:
    """Snippet content; sometimes contains an inline link (error source)."""
    holder = Element("span", {"class": "snip"})
    snippet = record.snippet or ""
    if options.inline_link_rate and rng.random() < options.inline_link_rate:
        words = snippet.split()
        middle = len(words) // 2
        holder.append_text(" ".join(words[:middle]) + " ")
        inline = Element("a", {"href": record.url + "#ref"})
        inline.append_text("cached")
        holder.append(inline)
        holder.append_text(" " + " ".join(words[middle:]))
    else:
        holder.append_text(snippet)
    return [holder]


class SectionStyle:
    """Base class: renders one section's records into a parent element."""

    name = "base"

    def render(
        self,
        parent: Element,
        sid: str,
        header_text: Optional[str],
        records: Sequence[RecordData],
        rng: random.Random,
        options: StyleOptions,
    ) -> None:
        """Append header (optional), record container, footer (optional)."""
        if header_text is not None:
            parent.append(_header_element(header_text, sid, options))
        self.render_records(parent, sid, records, rng, options)
        if options.show_footer and len(records) >= 3:
            parent.append(_footer_element(sid))

    def render_records(
        self,
        parent: Element,
        sid: str,
        records: Sequence[RecordData],
        rng: random.Random,
        options: StyleOptions,
    ) -> None:
        raise NotImplementedError


class UlLiStyle(SectionStyle):
    """``<ul><li>`` records: title link, meta, ``<br>``, snippet."""

    name = "ul-li"

    def render_records(self, parent, sid, records, rng, options) -> None:
        container = Element("ul", {"data-gt-sec": sid})
        wrap_from, wrap_to, wrapped = _nesting_glitch(records, rng, options, "ul")
        for i, record in enumerate(records):
            item = Element("li", {"data-gt-rec": f"{sid}:{i}"})
            item.append(_title_anchor(record))
            if record.date:
                item.append_text(f" ({record.date})")
            if record.snippet:
                item.append(Element("br"))
                for node in _snippet_nodes(record, rng, options):
                    item.append(node)
            if wrapped is not None and wrap_from <= i <= wrap_to:
                wrapped.append(item)
                if i == wrap_to:
                    container.append(wrapped)
            else:
                container.append(item)
        parent.append(container)


class TableRowStyle(SectionStyle):
    """One ``<tr>`` per record, cells for title / snippet / meta."""

    name = "table-row"

    def render_records(self, parent, sid, records, rng, options) -> None:
        table = Element("table", {"width": "90%"})
        body = Element("tbody", {"data-gt-sec": sid})
        table.append(body)
        for i, record in enumerate(records):
            row = Element("tr", {"data-gt-rec": f"{sid}:{i}"})
            cell_title = Element("td", {"width": "45%"})
            cell_title.append(_title_anchor(record))
            row.append(cell_title)
            cell_info = Element("td")
            if record.snippet:
                for node in _snippet_nodes(record, rng, options):
                    cell_info.append(node)
            elif record.source:
                cell_info.append_text(record.source)
            row.append(cell_info)
            cell_meta = Element("td", {"width": "12%"})
            meta = record.price or record.date or ""
            if meta:
                font = Element("font", {"color": "#666666", "size": "2"})
                font.append_text(meta)
                cell_meta.append(font)
            row.append(cell_meta)
            body.append(row)
        parent.append(table)


def _nesting_glitch(records, rng, options: StyleOptions, tag: str):
    """Decide whether a middle run of records nests one level deeper.

    Returns ``(first, last, wrapper)``; wrapper is None when no glitch is
    applied.  This produces the paper's "records whose tag structures are
    not siblings" hard case — the wrapped records cannot be separated by a
    top-level child separator.
    """
    if (
        options.broken_nesting_rate
        and len(records) >= 6
        and rng.random() < options.broken_nesting_rate
    ):
        return 1, 2, Element(tag, {"class": "grouped"})
    return -1, -1, None


class DivStyle(SectionStyle):
    """``<div class=res>`` records: title, snippet, green URL line."""

    name = "div"

    def render_records(self, parent, sid, records, rng, options) -> None:
        container = Element("div", {"data-gt-sec": sid, "class": "results"})
        wrap_from, wrap_to, wrapped = _nesting_glitch(records, rng, options, "div")

        for i, record in enumerate(records):
            block = Element(
                "div", {"data-gt-rec": f"{sid}:{i}", "class": options.record_class}
            )
            block.append(_title_anchor(record))
            if record.snippet:
                block.append(Element("br"))
                for node in _snippet_nodes(record, rng, options):
                    block.append(node)
            url_line = Element("font", {"color": "green", "size": "2"})
            url_line.append_text(record.url)
            block.append(Element("br"))
            block.append(url_line)
            if wrapped is not None and wrap_from <= i <= wrap_to:
                wrapped.append(block)
                if i == wrap_to:
                    container.append(wrapped)
            else:
                container.append(block)
        parent.append(container)


class DlStyle(SectionStyle):
    """``<dl>``: ``<dt>`` title + ``<dd>`` snippet per record."""

    name = "dl"

    def render_records(self, parent, sid, records, rng, options) -> None:
        container = Element("dl", {"data-gt-sec": sid})
        for i, record in enumerate(records):
            term = Element("dt", {"data-gt-rec": f"{sid}:{i}"})
            term.append(_title_anchor(record))
            if record.date:
                term.append_text(f" - {record.date}")
            container.append(term)
            if record.snippet:
                detail = Element("dd")
                for node in _snippet_nodes(record, rng, options):
                    detail.append(node)
                container.append(detail)
        parent.append(container)


class FlatBrStyle(SectionStyle):
    """Flat ``<a>...<br>...`` records with no per-record wrapper element."""

    name = "flat-br"

    def render_records(self, parent, sid, records, rng, options) -> None:
        container = Element("div", {"data-gt-sec": sid})
        for i, record in enumerate(records):
            anchor = _title_anchor(record)
            anchor.attrs["data-gt-rec"] = f"{sid}:{i}"
            container.append(anchor)
            if record.date:
                container.append_text(f" ({record.date})")
            container.append(Element("br"))
            if record.snippet:
                container.append_text(record.snippet)
                container.append(Element("br"))
            url_line = Element("font", {"color": "green", "size": "2"})
            url_line.append_text(record.url)
            container.append(url_line)
            container.append(Element("br"))
        parent.append(container)


class ParagraphStyle(SectionStyle):
    """One ``<p>`` per record."""

    name = "paragraph"

    def render_records(self, parent, sid, records, rng, options) -> None:
        container = Element("div", {"data-gt-sec": sid})
        wrap_from, wrap_to, wrapped = _nesting_glitch(records, rng, options, "div")
        for i, record in enumerate(records):
            block = Element("p", {"data-gt-rec": f"{sid}:{i}"})
            block.append(_title_anchor(record))
            if record.snippet:
                block.append(Element("br"))
                for node in _snippet_nodes(record, rng, options):
                    block.append(node)
            if record.date:
                small = Element("small")
                small.append_text(f" [{record.date}]")
                block.append(small)
            if wrapped is not None and wrap_from <= i <= wrap_to:
                wrapped.append(block)
                if i == wrap_to:
                    container.append(wrapped)
            else:
                container.append(block)
        parent.append(container)


class NestedTableStyle(SectionStyle):
    """Each record is its own small ``<table>`` (rich tag forests)."""

    name = "nested-table"

    def render_records(self, parent, sid, records, rng, options) -> None:
        container = Element("div", {"data-gt-sec": sid})
        for i, record in enumerate(records):
            table = Element(
                "table", {"data-gt-rec": f"{sid}:{i}", "width": "80%"}
            )
            body = Element("tbody")
            table.append(body)
            row_title = Element("tr")
            cell_title = Element("td")
            bold = Element("b")
            bold.append(_title_anchor(record))
            cell_title.append(bold)
            row_title.append(cell_title)
            body.append(row_title)
            if record.snippet:
                row_snip = Element("tr")
                cell_snip = Element("td")
                for node in _snippet_nodes(record, rng, options):
                    cell_snip.append(node)
                row_snip.append(cell_snip)
                body.append(row_snip)
            container.append(table)
        parent.append(container)


#: All concrete styles, in a stable order for seeded selection.
ALL_STYLES: List[SectionStyle] = [
    UlLiStyle(),
    TableRowStyle(),
    DivStyle(),
    DlStyle(),
    FlatBrStyle(),
    ParagraphStyle(),
    NestedTableStyle(),
]

STYLES_BY_NAME = {style.name: style for style in ALL_STYLES}
