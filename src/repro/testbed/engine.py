"""Synthetic search engines.

A :class:`SyntheticEngine` is fully determined by its seed: its layout
template, its section schemas (topic, repository, rendering style, header
style, presence behaviour) and its noise features.  ``result_page(query)``
emits the HTML a real engine would have returned for that query, with
ground-truth markers embedded as ``data-gt-*`` attributes (see
:mod:`repro.testbed.sections`).

Difficulty features, matching the phenomena the paper discusses:

- query-dependent sections (``empty_rate``) — the hidden-section problem;
- multi-section engines where all sections share one format — the
  non-uniform/granularity problems;
- a *shared-table* variant where all sections are row ranges of a single
  ``<tbody>`` (the paper's Figure 10 / Type-1-family structure);
- sections without header markers (the paper found 3.1% of sections lack
  explicit boundary markers);
- static repeating chrome (portal template) and dynamic junk lines that
  survive cleaning — MRE decoys and precision hazards;
- records with optional fields, inline links in snippets, and occasional
  non-sibling nesting — record-level error sources.
"""

from __future__ import annotations

import random
import string
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.htmlmod.dom import Document, Element
from repro.htmlmod.serializer import serialize
from repro.testbed import vocab
from repro.testbed.documents import Repository
from repro.testbed.sections import ALL_STYLES, SectionStyle, StyleOptions
from repro.testbed.templates import ALL_TEMPLATES, PageTemplate

HEADER_TAGS = ["h2", "h3", "b", "font", "div"]


@dataclass
class SectionSchemaSpec:
    """One section schema of an engine's result page schema."""

    sid: str
    topic: str
    repository: Repository
    style: SectionStyle
    has_header: bool = True

    def header_text(self) -> Optional[str]:
        return self.topic if self.has_header else None


@dataclass
class SyntheticEngine:
    """One synthetic search engine of the test bed."""

    engine_id: int
    seed: int
    name: str
    template: PageTemplate
    sections: List[SectionSchemaSpec]
    options: StyleOptions
    #: emit a per-page line that stays dynamic after cleaning (precision
    #: hazard: it becomes a false one-record dynamic section)
    dynamic_junk: bool = False
    #: render all sections as row ranges of one shared <tbody>
    shared_table: bool = False

    # -- construction ------------------------------------------------------
    @classmethod
    def generate(
        cls, engine_id: int, seed: int, multi_section: bool
    ) -> "SyntheticEngine":
        """Deterministically instantiate engine ``engine_id`` from ``seed``."""
        rng = random.Random(seed)
        name = f"{vocab.pick(rng, vocab.DOMAINS)}-{engine_id:03d}"
        template = ALL_TEMPLATES[rng.randrange(len(ALL_TEMPLATES))]

        if multi_section:
            n_sections = rng.randint(2, 5)
        else:
            n_sections = 1

        shared_table = multi_section and rng.random() < 0.2
        uniform_styles = multi_section and rng.random() < 0.5
        base_style = ALL_STYLES[rng.randrange(len(ALL_STYLES))]

        options = StyleOptions(
            header_tag=vocab.pick(rng, HEADER_TAGS),
            show_footer=rng.random() < 0.6,
            inline_link_rate=0.15 if rng.random() < 0.5 else 0.0,
            broken_nesting_rate=0.4 if rng.random() < 0.35 else 0.0,
        )

        topics = rng.sample(vocab.TOPICS, n_sections)
        domain = vocab.pick(rng, vocab.DOMAINS)
        sections: List[SectionSchemaSpec] = []
        for index, topic in enumerate(topics):
            if uniform_styles or shared_table:
                style = base_style
            else:
                style = ALL_STYLES[rng.randrange(len(ALL_STYLES))]
            is_main = index == 0
            # The last section of a 3+-section engine is *rare*: it often
            # has no instance on any sample page, making it a true hidden
            # section that only a section family (§5.8) can extract.
            is_rare = index == n_sections - 1 and n_sections >= 3
            repository = Repository(
                seed=seed * 1000 + index,
                topic=topic,
                domain=domain,
                min_hits=4 if is_main else 1,
                max_hits=9 if is_main else 6,
                empty_rate=0.0 if is_main else (0.8 if is_rare else 0.25),
                snippet_rate=rng.choice([0.7, 0.85, 1.0]),
                date_rate=rng.choice([0.0, 0.5, 1.0]),
                price_rate=0.8 if topic == "Products" else 0.0,
                source_rate=0.4 if topic in ("News", "Press Releases") else 0.0,
            )
            # 96.9% of sections carry explicit boundary markers (§2);
            # model the exceptions.
            has_header = rng.random() > 0.031
            sections.append(
                SectionSchemaSpec(
                    sid=f"s{index}",
                    topic=topic,
                    repository=repository,
                    style=style,
                    has_header=has_header,
                )
            )

        return cls(
            engine_id=engine_id,
            seed=seed,
            name=name,
            template=template,
            sections=sections,
            options=options,
            dynamic_junk=rng.random() < 0.12,
            shared_table=shared_table,
        )

    @property
    def is_multi_section(self) -> bool:
        return len(self.sections) > 1

    # -- workload -----------------------------------------------------------
    def queries(self, count: int = 10) -> List[str]:
        """``count`` distinct queries for this engine."""
        rng = random.Random(self.seed ^ 0x5EED)
        out: List[str] = []
        seen = set()
        while len(out) < count:
            query = vocab.make_query(rng, rng.randint(1, 2))
            if query not in seen:
                seen.add(query)
                out.append(query)
        return out

    # -- page production ----------------------------------------------------
    def result_page(self, query: str) -> str:
        """The HTML result page for ``query`` (ground truth embedded)."""
        page_rng = random.Random(zlib.crc32(f"{self.seed}|page|{query}".encode()))

        retrieved: List[Tuple[SectionSchemaSpec, list]] = []
        for spec in self.sections:
            records = spec.repository.retrieve(query)
            if records:
                retrieved.append((spec, records))

        total = sum(len(records) for _, records in retrieved)
        document, content = self.template.build(self.name, query, total, page_rng)

        if self.dynamic_junk:
            junk = Element("p", {"class": "debug"})
            token = "".join(
                page_rng.choice(string.ascii_lowercase) for _ in range(10)
            )
            junk.append_text(f"served by node {token}")
            content.append(junk)

        if self.shared_table:
            self._render_shared_table(content, retrieved, page_rng)
        else:
            for spec, records in retrieved:
                spec.style.render(
                    content,
                    spec.sid,
                    spec.header_text(),
                    records,
                    page_rng,
                    self.options,
                )
        return serialize(document)

    def _render_shared_table(
        self,
        content: Element,
        retrieved: Sequence[Tuple[SectionSchemaSpec, list]],
        rng: random.Random,
    ) -> None:
        """All sections as row ranges of one tbody (Figure 10 structure)."""
        table = Element("table", {"width": "95%"})
        body = Element("tbody", {"data-gt-shared": "1"})
        table.append(body)
        for spec, records in retrieved:
            header_row = Element("tr", {"data-gt-header": spec.sid})
            header_cell = Element("td", {"colspan": "2", "bgcolor": "#ccccee"})
            bold = Element("b")
            bold.append_text(spec.topic)
            header_cell.append(bold)
            header_row.append(header_cell)
            body.append(header_row)
            for i, record in enumerate(records):
                row = Element("tr", {"data-gt-rec": f"{spec.sid}:{i}"})
                cell_title = Element("td", {"width": "50%"})
                anchor = Element("a", {"href": record.url})
                anchor.append_text(record.title)
                cell_title.append(anchor)
                row.append(cell_title)
                cell_snip = Element("td")
                if record.snippet:
                    cell_snip.append_text(record.snippet)
                elif record.date:
                    cell_snip.append_text(record.date)
                row.append(cell_snip)
                body.append(row)
        content.append(table)
