"""Template evolution: engines that mutate their markup mid-corpus.

Real engines redesign result pages under a deployed wrapper; the paper's
corpus (and ours, until now) only varies *which* sections appear, never
the template itself.  An :class:`EvolvingEnginePages` workload renders
pages ``0 .. mutate_at-1`` with the original engine and every later page
with a deterministically mutated copy, so drift-detection latency and
recovery success are measurable against exact ground truth (*when* the
template changed, and whether the change is detectable at all).

Mutations, matching the drift families the monitor must catch:

- ``marker_rewrite`` — every section header is re-worded ("Web" becomes
  "Featured Web"): the wrapper still locates and partitions sections,
  but its SBM texts no longer match (marker-agreement drift);
- ``style_swap`` — every section re-renders in the next layout style
  (``ul-li`` becomes ``table-row``, ...): prefs and separators miss, the
  sections are lost outright (structural drift);
- ``section_drop`` — the engine retires its last section schema: that
  schema is permanently absent from every later page (schema drift —
  deliberately hard to tell from query-dependent absence);
- ``header_retag`` — headers keep their text but change element (``h2``
  becomes ``div``, ...): a *benign* redesign the wrapper survives, the
  negative control for false-positive tests.

Record content is untouched by every mutation (the mutated engine reuses
the original :class:`~repro.testbed.documents.Repository` objects), so a
health change is attributable to the template alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.testbed.corpus import SAMPLE_PAGES, make_engine
from repro.testbed.engine import HEADER_TAGS, SyntheticEngine
from repro.testbed.sections import ALL_STYLES


class TemplateMutation:
    """One deterministic template change applied to a whole engine."""

    #: registry key and event label
    name = "base"
    #: whether the mutation should be *detectable* as drift
    breaking = True

    def apply(self, engine: SyntheticEngine) -> SyntheticEngine:
        """A mutated copy of ``engine`` (the original is untouched)."""
        raise NotImplementedError

    def is_noop(self, engine: SyntheticEngine) -> bool:
        """Whether the mutation cannot change this engine's pages."""
        return False


class MarkerRewrite(TemplateMutation):
    """Re-word every section header: boundary-marker texts shift."""

    name = "marker_rewrite"

    def apply(self, engine: SyntheticEngine) -> SyntheticEngine:
        sections = [
            replace(spec, topic=f"Featured {spec.topic}")
            for spec in engine.sections
        ]
        return replace(engine, sections=sections)


class StyleSwap(TemplateMutation):
    """Re-render every section in the next layout style: prefs miss."""

    name = "style_swap"

    def apply(self, engine: SyntheticEngine) -> SyntheticEngine:
        sections = []
        for spec in engine.sections:
            index = ALL_STYLES.index(spec.style)
            swapped = ALL_STYLES[(index + 1) % len(ALL_STYLES)]
            sections.append(replace(spec, style=swapped))
        return replace(engine, sections=sections)

    def is_noop(self, engine: SyntheticEngine) -> bool:
        # Shared-table engines render all sections as rows of one tbody;
        # per-section styles never reach the page.
        return engine.shared_table


class SectionDrop(TemplateMutation):
    """Retire the last section schema: permanent absence."""

    name = "section_drop"

    def apply(self, engine: SyntheticEngine) -> SyntheticEngine:
        return replace(engine, sections=engine.sections[:-1])

    def is_noop(self, engine: SyntheticEngine) -> bool:
        return not engine.sections


class HeaderRetag(TemplateMutation):
    """Headers keep their text, change element — a benign redesign."""

    name = "header_retag"
    breaking = False

    def apply(self, engine: SyntheticEngine) -> SyntheticEngine:
        tag = engine.options.header_tag
        index = HEADER_TAGS.index(tag) if tag in HEADER_TAGS else 0
        retagged = HEADER_TAGS[(index + 1) % len(HEADER_TAGS)]
        options = replace(engine.options, header_tag=retagged)
        return replace(engine, options=options)

    def is_noop(self, engine: SyntheticEngine) -> bool:
        # Shared-table engines hard-code their row headers.
        return engine.shared_table or all(
            not spec.has_header for spec in engine.sections
        )


MUTATIONS: Dict[str, TemplateMutation] = {
    mutation.name: mutation
    for mutation in (MarkerRewrite(), StyleSwap(), SectionDrop(), HeaderRetag())
}


@dataclass(frozen=True)
class EvolutionTruth:
    """Ground truth of one evolving workload."""

    engine_id: int
    mutation: str
    #: index of the first page rendered by the mutated template
    mutate_at: int
    total_pages: int
    #: whether detectable drift is expected at all (False for benign
    #: mutations and for engines the mutation cannot touch)
    drift_expected: bool

    def detection_latency(self, detected_at: int) -> int:
        """Pages between the mutation and its detection."""
        return detected_at - self.mutate_at


@dataclass
class EvolvingEnginePages:
    """One engine's evolving workload: pages, both engines, ground truth."""

    engine: SyntheticEngine
    mutated: SyntheticEngine
    queries: List[str]
    pages: List[str]
    truth: EvolutionTruth

    @property
    def sample_set(self) -> List[Tuple[str, str]]:
        """(html, query) pairs safe for induction (all pre-mutation)."""
        count = min(SAMPLE_PAGES, self.truth.mutate_at)
        return list(zip(self.pages[:count], self.queries[:count]))

    def stream(self, start: int = SAMPLE_PAGES) -> List[Tuple[str, str]]:
        """The served (html, query) stream from page ``start`` on."""
        return list(zip(self.pages[start:], self.queries[start:]))


def evolve_engine(engine: SyntheticEngine, mutation: str) -> SyntheticEngine:
    """A mutated copy of ``engine`` under the named mutation."""
    return MUTATIONS[mutation].apply(engine)


def load_evolving_pages(
    engine_id: int,
    mutation: str,
    mutate_at: int = 12,
    total_pages: int = 24,
) -> EvolvingEnginePages:
    """One engine's evolving workload with exact ground truth.

    Pages ``0 .. mutate_at-1`` come from the pristine engine, the rest
    from its mutated copy; queries follow the engine's deterministic
    query stream, so two calls produce byte-identical corpora.
    """
    if mutation not in MUTATIONS:
        raise ValueError(
            f"unknown mutation {mutation!r}; choose from {sorted(MUTATIONS)}"
        )
    if not 2 <= mutate_at <= total_pages:
        raise ValueError("mutate_at must be in [2, total_pages]")
    rule = MUTATIONS[mutation]
    engine = make_engine(engine_id)
    mutated = rule.apply(engine)
    queries = engine.queries(total_pages)
    pages = [
        (engine if index < mutate_at else mutated).result_page(query)
        for index, query in enumerate(queries)
    ]
    truth = EvolutionTruth(
        engine_id=engine_id,
        mutation=mutation,
        mutate_at=mutate_at,
        total_pages=total_pages,
        drift_expected=rule.breaking and not rule.is_noop(engine),
    )
    return EvolvingEnginePages(
        engine=engine,
        mutated=mutated,
        queries=queries,
        pages=pages,
        truth=truth,
    )
