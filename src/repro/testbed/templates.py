"""Page chrome templates for the synthetic corpus.

A template builds the static/semi-dynamic frame of a result page — the
masthead, navigation, search box, result-count line and footer — and
returns the element into which the dynamic sections are rendered.  Three
layout families cover the common 2006 result-page shapes:

- ``simple``   — single column;
- ``sidebar``  — a layout table with a left navigation column;
- ``portal``   — heavy chrome with repeated nav link lines (a static
  repeating pattern that decoys MRE, per §5.1's "static contents with
  repeating patterns").
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.htmlmod.dom import Document, Element

NAV_LABELS = [
    "Home", "Advanced Search", "Preferences", "Help", "About Us",
    "Directory", "Submit a Site", "Contact", "Tools", "My Account",
]

FOOTER_LABELS = ["Privacy Policy", "Terms of Use", "Advertise", "Jobs", "Feedback"]


def _nav_links(labels: List[str], separator: str = " | ") -> Element:
    holder = Element("div", {"class": "nav"})
    for i, label in enumerate(labels):
        if i:
            holder.append_text(separator)
        link = Element("a", {"href": f"/{label.lower().replace(' ', '-')}"})
        link.append_text(label)
        holder.append(link)
    return holder


def _search_form(engine_name: str, query: str) -> Element:
    form = Element("form", {"action": "/search", "method": "get"})
    form.append(Element("input", {"type": "text", "name": "q", "value": query}))
    form.append(Element("input", {"type": "submit", "value": "Search"}))
    return form


def _count_line(query: str, total: int, rng: random.Random) -> Element:
    para = Element("p", {"class": "count"})
    bold = Element("b")
    bold.append_text(f"Your search for {query} returned {total * 7 + rng.randrange(7)} matches")
    para.append(bold)
    return para


def _footer(engine_name: str) -> Element:
    footer = Element("div", {"class": "footer"})
    footer.append(Element("hr"))
    small = Element("small")
    small.append_text(f"Copyright 2006 {engine_name}. All rights reserved.")
    footer.append(small)
    footer.append(_nav_links(FOOTER_LABELS, separator=" - "))
    return footer


def _masthead(engine_name: str) -> Element:
    head = Element("div", {"class": "masthead"})
    title = Element("h1")
    title.append_text(engine_name)
    head.append(title)
    return head


class PageTemplate:
    """Base template; subclasses place the chrome around a content area."""

    name = "base"

    def build(
        self,
        engine_name: str,
        query: str,
        total_records: int,
        rng: random.Random,
    ) -> Tuple[Document, Element]:
        """Create a document; return (document, section content parent)."""
        raise NotImplementedError


class SimpleTemplate(PageTemplate):
    """Single-column page."""

    name = "simple"

    def build(self, engine_name, query, total_records, rng):
        root = Element("html")
        head = Element("head")
        title = Element("title")
        title.append_text(f"{engine_name}: {query}")
        head.append(title)
        root.append(head)
        body = Element("body")
        root.append(body)

        body.append(_masthead(engine_name))
        body.append(_nav_links(NAV_LABELS[:4]))
        body.append(_search_form(engine_name, query))
        body.append(_count_line(query, total_records, rng))
        content = Element("div", {"class": "content"})
        body.append(content)
        body.append(_footer(engine_name))
        return Document(root), content


class SidebarTemplate(PageTemplate):
    """Layout table: left nav column + main content column."""

    name = "sidebar"

    def build(self, engine_name, query, total_records, rng):
        root = Element("html")
        head = Element("head")
        title = Element("title")
        title.append_text(f"{engine_name}: {query}")
        head.append(title)
        root.append(head)
        body = Element("body")
        root.append(body)

        body.append(_masthead(engine_name))
        table = Element("table", {"width": "100%"})
        row = Element("tr")
        table.append(row)

        nav_cell = Element("td", {"width": "150", "valign": "top"})
        nav_list = Element("ul")
        for label in NAV_LABELS[:6]:
            item = Element("li")
            link = Element("a", {"href": f"/{label.lower().replace(' ', '-')}"})
            link.append_text(label)
            item.append(link)
            nav_list.append(item)
        nav_cell.append(nav_list)
        row.append(nav_cell)

        main_cell = Element("td", {"valign": "top"})
        main_cell.append(_search_form(engine_name, query))
        main_cell.append(_count_line(query, total_records, rng))
        content = Element("div", {"class": "content"})
        main_cell.append(content)
        row.append(main_cell)

        body.append(table)
        body.append(_footer(engine_name))
        return Document(root), content


class PortalTemplate(PageTemplate):
    """Chrome-heavy page with a repeated-link block (MRE decoy)."""

    name = "portal"

    def build(self, engine_name, query, total_records, rng):
        root = Element("html")
        head = Element("head")
        title = Element("title")
        title.append_text(f"{engine_name} portal: {query}")
        head.append(title)
        root.append(head)
        body = Element("body")
        root.append(body)

        body.append(_masthead(engine_name))
        # Channel box: one identically styled link line per channel — a
        # static repeating pattern MRE will pick up and §5.3 must discard.
        channels = Element("div", {"class": "channels"})
        for label in NAV_LABELS[:6]:
            line = Element("div", {"class": "chan"})
            link = Element("a", {"href": f"/channel/{label.lower().replace(' ', '-')}"})
            link.append_text(f"{label} Channel")
            line.append(link)
            channels.append(line)
        body.append(channels)
        body.append(Element("hr"))

        body.append(_search_form(engine_name, query))
        body.append(_count_line(query, total_records, rng))
        content = Element("div", {"class": "content"})
        body.append(content)
        body.append(Element("hr"))
        body.append(_footer(engine_name))
        return Document(root), content


ALL_TEMPLATES: List[PageTemplate] = [SimpleTemplate(), SidebarTemplate(), PortalTemplate()]
TEMPLATES_BY_NAME = {template.name: template for template in ALL_TEMPLATES}
