"""Vocabulary for the synthetic search-engine corpus.

Deterministic word pools used to generate engine names, section topics,
queries, document titles and snippets.  Everything downstream draws from
``random.Random`` instances seeded per engine, so the whole corpus is
reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from typing import List, Sequence

NOUNS = [
    "injury", "therapy", "vaccine", "allergy", "nutrition", "fitness",
    "camera", "laptop", "monitor", "printer", "keyboard", "router",
    "novel", "biography", "anthology", "journal", "thesis", "manual",
    "market", "economy", "startup", "merger", "auction", "contract",
    "galaxy", "comet", "asteroid", "orbit", "telescope", "satellite",
    "recipe", "cuisine", "dessert", "spice", "harvest", "vineyard",
    "stadium", "tournament", "league", "transfer", "playoff", "record",
    "senate", "ballot", "treaty", "summit", "reform", "policy",
]

ADJECTIVES = [
    "chronic", "digital", "portable", "annual", "global", "rapid",
    "wireless", "organic", "modern", "classic", "advanced", "compact",
    "premium", "essential", "hidden", "ultimate", "practical", "official",
    "regional", "federal", "historic", "emerging", "durable", "efficient",
]

VERBS = [
    "improves", "reduces", "explains", "compares", "reveals", "tracks",
    "predicts", "measures", "combines", "extends", "restores", "protects",
]

TOPICS = [
    "Web", "News", "Encyclopedia", "Images", "Products", "Reviews",
    "Forums", "Articles", "Books", "Papers", "Videos", "Downloads",
    "Sponsored Links", "Directory", "Blogs", "Questions", "Guides",
    "Local Results", "Press Releases", "Archives",
]

DOMAINS = [
    "medsearch", "shopfinder", "newsdigest", "paperhunt", "techindex",
    "cookbase", "sportwire", "civicscan", "stargazer", "bookmine",
]

QUERY_TERMS = [
    "knee", "ultrasound", "lupus", "colic", "lymphoma", "asthma",
    "battery", "firmware", "tripod", "zoom", "bandwidth", "pixel",
    "poetry", "memoir", "folklore", "satire", "drama", "sonnet",
    "dividend", "futures", "equity", "audit", "tariff", "subsidy",
    "nebula", "quasar", "eclipse", "aurora", "meteor", "lunar",
    "saffron", "risotto", "ganache", "brisket", "sourdough", "umami",
]


def pick(rng: random.Random, pool: Sequence[str]) -> str:
    """One uniformly random item from a pool."""
    return pool[rng.randrange(len(pool))]


def make_query(rng: random.Random, terms: int = 2) -> str:
    """A query of 1-3 distinct terms."""
    count = max(1, min(terms, 3))
    return " ".join(rng.sample(QUERY_TERMS, count))


def make_title(rng: random.Random, query: str) -> str:
    """A document title echoing the query (as real result titles do)."""
    q_terms = query.split()
    shown = pick(rng, q_terms) if q_terms else pick(rng, NOUNS)
    return (
        f"{pick(rng, ADJECTIVES).capitalize()} {pick(rng, NOUNS)} "
        f"{shown} {pick(rng, NOUNS)}"
    )


def make_snippet(rng: random.Random, query: str, sentences: int = 1) -> str:
    """A snippet of 1-2 short sentences echoing the query."""
    q_terms = query.split()
    parts: List[str] = []
    for _ in range(max(1, sentences)):
        shown = pick(rng, q_terms) if q_terms else pick(rng, NOUNS)
        parts.append(
            f"The {pick(rng, ADJECTIVES)} {pick(rng, NOUNS)} {pick(rng, VERBS)} "
            f"{shown} {pick(rng, ADJECTIVES)} {pick(rng, NOUNS)}."
        )
    return " ".join(parts)


def make_url(rng: random.Random, domain: str) -> str:
    """A plausible result URL."""
    return (
        f"http://www.{domain}.com/{pick(rng, NOUNS)}/"
        f"{pick(rng, ADJECTIVES)}-{rng.randrange(10, 9999)}.html"
    )


def make_date(rng: random.Random) -> str:
    """A date string in the m/d/yyyy form common on 2006 result pages."""
    return f"{rng.randrange(1, 13)}/{rng.randrange(1, 29)}/{rng.randrange(1999, 2007)}"


def make_price(rng: random.Random) -> str:
    """A price string."""
    return f"${rng.randrange(5, 900)}.{rng.randrange(0, 100):02d}"
