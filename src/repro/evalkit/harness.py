"""The evaluation harness: regenerates the paper's Tables 1-3.

Per engine: build the wrapper from the 5 sample pages, extract from all
10 pages, grade against ground truth, and accumulate the "S pgs" /
"T pgs" / "Total" rows exactly as the paper reports them.

Run from the command line::

    python -m repro.evalkit.harness --table 1          # all 119 engines
    python -m repro.evalkit.harness --table 2          # the 38 multi-section
    python -m repro.evalkit.harness --table 3          # record extraction
    python -m repro.evalkit.harness --table all --limit 20   # quick pass
    python -m repro.evalkit.harness --jobs 4           # 4 worker processes

Engines are independent workloads, so ``--jobs N`` fans the corpus out
over a process pool; results are merged back in engine-id order, which
keeps every table bit-identical to a serial run.
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.mse import MSE, MSEConfig
from repro.evalkit.matching import grade_page
from repro.evalkit.metrics import EvalRows
from repro.evalkit.report import (
    render_record_table,
    render_section_table,
)
from repro.obs import NULL_OBSERVER, Observer, ObserverLike, render_report
from repro.testbed.corpus import (
    SAMPLE_PAGES,
    EnginePages,
    engine_ids,
    iter_corpus,
    load_engine_pages,
)


@dataclass
class EngineResult:
    """Per-engine evaluation outcome (kept for diagnostics/benches)."""

    engine_id: int
    rows: EvalRows
    build_seconds: float
    extract_seconds: float
    failed: bool = False
    error: str = ""
    #: generator metadata, for breakdown reporting
    template: str = ""
    styles: Tuple[str, ...] = ()
    section_count: int = 0
    has_junk: bool = False
    shared_table: bool = False


def _engine_metadata(engine_pages: EnginePages) -> dict:
    engine = engine_pages.engine
    return dict(
        template=engine.template.name,
        styles=tuple(s.style.name for s in engine.sections),
        section_count=len(engine.sections),
        has_junk=engine.dynamic_junk,
        shared_table=engine.shared_table,
    )


def evaluate_engine(
    engine_pages: EnginePages,
    config: Optional[MSEConfig] = None,
    obs: ObserverLike = NULL_OBSERVER,
    build_jobs: int = 1,
) -> EngineResult:
    """Build a wrapper from the sample pages and grade all ten pages.

    Induction goes through the staged :class:`repro.pipeline.PipelineRunner`
    (via :class:`MSE`); ``build_jobs > 1`` fans the per-page stages of
    *one* engine's induction out over worker processes — useful when
    evaluating few engines with many sample pages (the engine-level
    ``jobs`` of :func:`run_evaluation` parallelizes across engines and
    is the better lever for full-corpus runs; the two cannot nest).

    ``obs`` is an optional :class:`repro.obs.Observer`; spans aggregate
    across engines, so one observer threaded through a whole run yields
    per-stage wall time and counters for the corpus ("which stage
    regressed?" attribution for benchmark trajectories).
    """
    rows = EvalRows()
    mse = MSE(config, obs=obs, jobs=build_jobs)
    metadata = _engine_metadata(engine_pages)

    start = time.perf_counter()
    try:
        wrapper = mse.build_wrapper(engine_pages.sample_set)
    except Exception as exc:  # a failed induction counts as zero recall
        return EngineResult(
            engine_id=engine_pages.engine.engine_id,
            rows=_rows_for_total_miss(engine_pages),
            build_seconds=time.perf_counter() - start,
            extract_seconds=0.0,
            failed=True,
            error=f"{type(exc).__name__}: {exc}",
            **metadata,
        )
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for index, (markup, query) in enumerate(
        zip(engine_pages.pages, engine_pages.queries)
    ):
        truth = engine_pages.truths[index]
        extraction = wrapper.extract(markup, query, obs=obs)
        grade = grade_page(extraction, truth)
        is_sample = index < SAMPLE_PAGES
        sections = rows.sample_sections if is_sample else rows.test_sections
        records = rows.sample_records if is_sample else rows.test_records
        sections.add_grade(grade, len(truth.sections))
        records.add_grade(grade)
    extract_seconds = time.perf_counter() - start

    return EngineResult(
        engine_id=engine_pages.engine.engine_id,
        rows=rows,
        build_seconds=build_seconds,
        extract_seconds=extract_seconds,
        **metadata,
    )


def breakdown(
    run: "EvaluationRun", dimension: str
) -> List[Tuple[str, EvalRows]]:
    """Aggregate a run's rows by an engine property.

    ``dimension`` is one of ``template`` (page chrome family), ``style``
    (record rendering style; multi-style engines count under each of
    their styles), ``sections`` (single / multi / shared-table), or
    ``junk`` (dynamic-junk engines vs clean ones).  Returns sorted
    (label, rows) pairs — the analysis behind §6's failure discussion.
    """
    groups: Dict[str, EvalRows] = {}

    def add(label: str, result: EngineResult) -> None:
        groups.setdefault(label, EvalRows()).merge(result.rows)

    for result in run.engines:
        if dimension == "template":
            add(result.template or "?", result)
        elif dimension == "style":
            for style in set(result.styles) or {"?"}:
                add(style, result)
        elif dimension == "sections":
            if result.shared_table:
                add("shared-table", result)
            elif result.section_count > 1:
                add("multi", result)
            else:
                add("single", result)
        elif dimension == "junk":
            add("with-junk" if result.has_junk else "clean", result)
        else:
            raise ValueError(f"unknown breakdown dimension {dimension!r}")
    return sorted(groups.items())


def write_engine_csv(run: "EvaluationRun", path: str) -> None:
    """Write per-engine results as CSV (one row per engine).

    Columns: engine id, generator metadata, section counters and the four
    derived rates — the raw material for custom analyses beyond the
    built-in breakdowns.
    """
    import csv

    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "engine_id", "template", "styles", "section_count",
                "has_junk", "shared_table", "failed",
                "actual", "extracted", "perfect", "partial",
                "recall_perfect", "recall_total",
                "precision_perfect", "precision_total",
                "build_seconds",
            ]
        )
        for result in run.engines:
            total = result.rows.total_sections
            writer.writerow(
                [
                    result.engine_id,
                    result.template,
                    "|".join(result.styles),
                    result.section_count,
                    int(result.has_junk),
                    int(result.shared_table),
                    int(result.failed),
                    total.actual,
                    total.extracted,
                    total.perfect,
                    total.partial,
                    f"{total.recall_perfect:.4f}",
                    f"{total.recall_total:.4f}",
                    f"{total.precision_perfect:.4f}",
                    f"{total.precision_total:.4f}",
                    f"{result.build_seconds:.3f}",
                ]
            )


def evaluate_extractor(
    engine_pages: EnginePages, extract_fn
) -> EngineResult:
    """Grade an arbitrary per-page extractor (used by baseline benches).

    ``extract_fn(markup, query) -> PageExtraction``; no wrapper induction
    happens (the function may close over a pre-built wrapper).
    """
    rows = EvalRows()
    start = time.perf_counter()
    for index, (markup, query) in enumerate(
        zip(engine_pages.pages, engine_pages.queries)
    ):
        truth = engine_pages.truths[index]
        grade = grade_page(extract_fn(markup, query), truth)
        is_sample = index < SAMPLE_PAGES
        sections = rows.sample_sections if is_sample else rows.test_sections
        records = rows.sample_records if is_sample else rows.test_records
        sections.add_grade(grade, len(truth.sections))
        records.add_grade(grade)
    return EngineResult(
        engine_id=engine_pages.engine.engine_id,
        rows=rows,
        build_seconds=0.0,
        extract_seconds=time.perf_counter() - start,
    )


def _rows_for_total_miss(engine_pages: EnginePages) -> EvalRows:
    rows = EvalRows()
    for index, truth in enumerate(engine_pages.truths):
        counts = (
            rows.sample_sections if index < SAMPLE_PAGES else rows.test_sections
        )
        counts.actual += len(truth.sections)
    return rows


@dataclass
class EvaluationRun:
    """Aggregate outcome over a set of engines."""

    rows: EvalRows = field(default_factory=EvalRows)
    engines: List[EngineResult] = field(default_factory=list)

    @property
    def build_seconds(self) -> List[float]:
        return [e.build_seconds for e in self.engines if not e.failed]

    @property
    def failures(self) -> List[EngineResult]:
        return [e for e in self.engines if e.failed]


def _print_progress(result: EngineResult) -> None:
    total = result.rows.total_sections
    print(
        f"engine {result.engine_id:3d}: actual={total.actual:3d} "
        f"perfect={total.perfect:3d} partial={total.partial:3d} "
        f"extracted={total.extracted:3d} "
        f"build={result.build_seconds:.2f}s"
        + (f"  FAILED: {result.error}" if result.failed else ""),
        file=sys.stderr,
    )


def _parallel_worker(
    task: Tuple[int, Optional[MSEConfig], bool]
) -> Tuple[EngineResult, Optional[Dict[str, Any]]]:
    """Evaluate one engine inside a pool worker.

    Must be a top-level function (pickled by multiprocessing).  Each
    worker builds its own page set and, when the parent observes, its
    own :class:`Observer`; the observer's :meth:`~Observer.stats`
    document travels back for :meth:`Observer.merge_stats`.
    """
    engine_id, config, observed = task
    engine_pages = load_engine_pages(engine_id)
    obs = Observer() if observed else NULL_OBSERVER
    result = evaluate_engine(engine_pages, config, obs=obs)
    return result, (obs.stats() if observed else None)


def run_evaluation(
    subset: str = "all",
    limit: Optional[int] = None,
    config: Optional[MSEConfig] = None,
    progress: bool = False,
    obs: ObserverLike = NULL_OBSERVER,
    jobs: int = 1,
    build_jobs: int = 1,
) -> EvaluationRun:
    """Evaluate MSE over (a subset of) the corpus.

    With ``jobs > 1`` the engines fan out over a process pool.  Results
    are re-ordered by engine id before merging, so the aggregate rows —
    and hence Tables 1–3 — are identical to a serial run; per-worker
    observer stats are folded into ``obs`` the same way.  ``build_jobs``
    instead parallelizes *within* each induction (the pipeline runner's
    per-page fan-out) and only applies to the serial engine loop —
    pool workers are daemonic and cannot nest a second pool.
    """
    run = EvaluationRun()
    if jobs > 1:
        ids = engine_ids(subset)
        if limit is not None:
            ids = ids[:limit]
        tasks = [(engine_id, config, obs.enabled) for engine_id in ids]
        collected: List[Tuple[EngineResult, Optional[Dict[str, Any]]]] = []
        with multiprocessing.Pool(processes=min(jobs, max(1, len(tasks)))) as pool:
            for result, stats in pool.imap_unordered(_parallel_worker, tasks):
                collected.append((result, stats))
                if progress:
                    _print_progress(result)
        collected.sort(key=lambda item: item[0].engine_id)
        for result, stats in collected:
            run.engines.append(result)
            run.rows.merge(result.rows)
            if stats is not None:
                obs.merge_stats(stats)
        return run

    for engine_pages in iter_corpus(subset, limit=limit):
        result = evaluate_engine(engine_pages, config, obs=obs, build_jobs=build_jobs)
        run.engines.append(result)
        run.rows.merge(result.rows)
        if progress:
            _print_progress(result)
    return run


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--table",
        choices=["1", "2", "3", "all"],
        default="all",
        help="which paper table to regenerate",
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="cap the number of engines"
    )
    parser.add_argument(
        "--progress", action="store_true", help="per-engine progress on stderr"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the evaluation (1 = serial)",
    )
    parser.add_argument(
        "--build-jobs",
        type=int,
        default=1,
        help="worker processes inside each wrapper induction (pipeline "
        "per-page fan-out; serial engine loop only)",
    )
    parser.add_argument(
        "--breakdown",
        choices=["template", "style", "sections", "junk"],
        default=None,
        help="also print results grouped by an engine property",
    )
    parser.add_argument(
        "--csv", default=None, help="write per-engine results to a CSV file"
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write an aggregate JSONL pipeline trace (spans + metrics) to FILE",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the aggregate span tree and metrics to stderr",
    )
    args = parser.parse_args(argv)

    want = {"1", "2", "3"} if args.table == "all" else {args.table}
    obs = Observer() if (args.trace or args.stats) else NULL_OBSERVER

    run_all = run_evaluation(
        "all", args.limit, progress=args.progress, obs=obs, jobs=args.jobs,
        build_jobs=args.build_jobs,
    )
    if "2" in want and args.limit is None:
        run_multi = run_evaluation(
            "multi", None, progress=args.progress, obs=obs, jobs=args.jobs,
            build_jobs=args.build_jobs,
        )
    else:
        # With a limit, derive the multi-section subset from the same run.
        run_multi = EvaluationRun()
        from repro.testbed.corpus import SINGLE_SECTION_ENGINES

        for result in run_all.engines:
            if result.engine_id >= SINGLE_SECTION_ENGINES:
                run_multi.engines.append(result)
                run_multi.rows.merge(result.rows)

    if "1" in want:
        print(render_section_table(run_all.rows, "Table 1. Section extraction results on all engines"))
        print()
    if "2" in want:
        print(render_section_table(run_multi.rows, "Table 2. Section extraction results on multi-section engines"))
        print()
    if "3" in want:
        print(render_record_table(run_all.rows, "Table 3. Record extraction results on correctly extracted sections"))
        print()

    if args.breakdown:
        print(f"Breakdown by {args.breakdown}:")
        for label, rows in breakdown(run_all, args.breakdown):
            total = rows.total_sections
            print(
                f"  {label:14s} actual={total.actual:4d} "
                f"recall {100 * total.recall_perfect:5.1f}/"
                f"{100 * total.recall_total:5.1f}  "
                f"precision {100 * total.precision_perfect:5.1f}/"
                f"{100 * total.precision_total:5.1f}"
            )
        print()

    if args.csv:
        write_engine_csv(run_all, args.csv)
        print(f"per-engine results written to {args.csv}")

    if obs.enabled:
        obs.gauge("eval.engines", len(run_all.engines))
        obs.gauge("eval.failures", len(run_all.failures))
        if args.trace:
            obs.write_jsonl(args.trace)
            print(f"pipeline trace written to {args.trace}", file=sys.stderr)
        if args.stats:
            print(render_report(obs, "eval trace"), file=sys.stderr)

    if run_all.failures:
        print(f"({len(run_all.failures)} engines failed wrapper induction)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
