"""Plain-text renderers for the paper-shaped result tables."""

from __future__ import annotations

from typing import List

from repro.evalkit.metrics import EvalRows, RecordCounts, SectionCounts


def _pct(value: float) -> str:
    return f"{100.0 * value:5.1f}"


def render_section_table(rows: EvalRows, title: str) -> str:
    """Table 1 / Table 2 layout: per-row section extraction results."""
    header = (
        f"{'':8s} {'#Actual':>8s} {'#Extracted':>11s} {'#Perfect':>9s} "
        f"{'#Partial':>9s} {'Rec%Perf':>9s} {'Rec%Tot':>8s} "
        f"{'Prec%Perf':>10s} {'Prec%Tot':>9s}"
    )
    lines: List[str] = [title, header, "-" * len(header)]
    for label, counts in (
        ("S pgs", rows.sample_sections),
        ("T pgs", rows.test_sections),
        ("Total", rows.total_sections),
    ):
        lines.append(_section_row(label, counts))
    return "\n".join(lines)


def _section_row(label: str, c: SectionCounts) -> str:
    return (
        f"{label:8s} {c.actual:8d} {c.extracted:11d} {c.perfect:9d} "
        f"{c.partial:9d} {_pct(c.recall_perfect):>9s} {_pct(c.recall_total):>8s} "
        f"{_pct(c.precision_perfect):>10s} {_pct(c.precision_total):>9s}"
    )


def render_record_table(rows: EvalRows, title: str) -> str:
    """Table 3 layout: record extraction over perfect+partial sections."""
    header = (
        f"{'':8s} {'#Actual':>8s} {'#Extracted':>11s} {'#Correct':>9s} "
        f"{'Recall%':>8s} {'Precision%':>11s}"
    )
    lines: List[str] = [title, header, "-" * len(header)]
    for label, counts in (
        ("S pgs", rows.sample_records),
        ("T pgs", rows.test_records),
        ("Total", rows.total_records),
    ):
        lines.append(_record_row(label, counts))
    return "\n".join(lines)


def _record_row(label: str, c: RecordCounts) -> str:
    return (
        f"{label:8s} {c.actual:8d} {c.extracted:11d} {c.correct:9d} "
        f"{_pct(c.recall):>8s} {_pct(c.precision):>11s}"
    )
