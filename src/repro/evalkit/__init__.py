"""Evaluation kit: ground-truth matching, metrics, and the Tables 1-3 harness."""

from repro.evalkit.harness import (
    EngineResult,
    EvaluationRun,
    evaluate_engine,
    run_evaluation,
)
from repro.evalkit.matching import PageGrade, SectionMatch, grade_page, span_jaccard
from repro.evalkit.metrics import EvalRows, RecordCounts, SectionCounts
from repro.evalkit.report import render_record_table, render_section_table

__all__ = [
    "EngineResult",
    "EvalRows",
    "EvaluationRun",
    "PageGrade",
    "RecordCounts",
    "SectionCounts",
    "SectionMatch",
    "evaluate_engine",
    "grade_page",
    "render_record_table",
    "render_section_table",
    "run_evaluation",
    "span_jaccard",
]

from repro.evalkit.significance import (  # noqa: E402
    Interval,
    bootstrap_metric,
    recall_precision_intervals,
)

__all__ += ["Interval", "bootstrap_metric", "recall_precision_intervals"]
