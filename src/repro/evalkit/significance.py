"""Bootstrap confidence intervals for the evaluation metrics.

The paper reports point estimates only; when comparing configurations
(ablations, baselines, parameter sweeps) on a finite engine sample, it
helps to know how much of a difference is noise.  This module resamples
*engines* with replacement — engines are the independent sampling unit
(pages within an engine share a wrapper) — and reports percentile
intervals for any metric derived from the aggregated counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.evalkit.harness import EngineResult, EvaluationRun
from repro.evalkit.metrics import EvalRows, SectionCounts

MetricFn = Callable[[SectionCounts], float]


@dataclass(frozen=True)
class Interval:
    """A point estimate with a percentile bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{100 * self.point:.1f} "
            f"[{100 * self.low:.1f}, {100 * self.high:.1f}]"
        )

    def overlaps(self, other: "Interval") -> bool:
        """Whether two intervals overlap (a coarse significance check)."""
        return self.low <= other.high and other.low <= self.high


def _aggregate(results: Sequence[EngineResult]) -> SectionCounts:
    rows = EvalRows()
    for result in results:
        rows.merge(result.rows)
    return rows.total_sections


def bootstrap_metric(
    run: EvaluationRun,
    metric: MetricFn,
    samples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Interval:
    """Percentile bootstrap over engines for one metric.

    ``metric`` maps the aggregated :class:`SectionCounts` to a number,
    e.g. ``lambda c: c.recall_total``.  Deterministic for a given seed.
    """
    if not run.engines:
        raise ValueError("cannot bootstrap an empty run")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")

    rng = random.Random(seed)
    point = metric(_aggregate(run.engines))

    values: List[float] = []
    n = len(run.engines)
    for _ in range(samples):
        resample = [run.engines[rng.randrange(n)] for _ in range(n)]
        values.append(metric(_aggregate(resample)))
    values.sort()

    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, int(alpha * samples))
    high_index = min(samples - 1, int((1.0 - alpha) * samples))
    return Interval(
        point=point,
        low=values[low_index],
        high=values[high_index],
        confidence=confidence,
    )


def recall_precision_intervals(
    run: EvaluationRun, samples: int = 1000, seed: int = 0
) -> Tuple[Interval, Interval, Interval, Interval]:
    """(recall perfect, recall total, precision perfect, precision total)."""
    return (
        bootstrap_metric(run, lambda c: c.recall_perfect, samples, seed=seed),
        bootstrap_metric(run, lambda c: c.recall_total, samples, seed=seed + 1),
        bootstrap_metric(run, lambda c: c.precision_perfect, samples, seed=seed + 2),
        bootstrap_metric(run, lambda c: c.precision_total, samples, seed=seed + 3),
    )
