"""Matching extracted sections against ground truth.

Implements the paper's §6 grading: an extracted section is **perfect**
when its record set equals the ground-truth record set exactly (all
records extracted, none incorrect); **partially correct** when it matches
a ground-truth section and more than 60% of that section's records are
extracted; anything else is a false extraction.  Matching is one-to-one,
greedy by line-span overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.model import ExtractedSection, PageExtraction
from repro.testbed.groundtruth import PageTruth, TruthSection

#: Minimum span Jaccard for an extracted section to match a truth section.
MATCH_OVERLAP = 0.5

#: The paper's partial-correctness record-recall threshold.
PARTIAL_RECORD_FRACTION = 0.6

Span = Tuple[int, int]


def span_overlap(a: Span, b: Span) -> int:
    """Number of shared lines between two inclusive spans."""
    return max(0, min(a[1], b[1]) - max(a[0], b[0]) + 1)


def span_jaccard(a: Span, b: Span) -> float:
    """Line-level Jaccard similarity of two inclusive spans."""
    intersection = span_overlap(a, b)
    union = (a[1] - a[0] + 1) + (b[1] - b[0] + 1) - intersection
    return intersection / union if union else 0.0


@dataclass(frozen=True)
class SectionMatch:
    """One extracted section graded against its matched truth section."""

    extracted: ExtractedSection
    truth: Optional[TruthSection]
    correct_records: int

    @property
    def matched(self) -> bool:
        return self.truth is not None

    @property
    def perfect(self) -> bool:
        """All truth records extracted, no incorrect records."""
        if self.truth is None:
            return False
        return (
            self.correct_records == self.truth.record_count
            and len(self.extracted.records) == self.truth.record_count
        )

    @property
    def partial(self) -> bool:
        """Matched, >60% of records extracted, but not perfect."""
        if self.truth is None or self.perfect:
            return False
        if self.truth.record_count == 0:
            return False
        return self.correct_records / self.truth.record_count > PARTIAL_RECORD_FRACTION


@dataclass
class PageGrade:
    """All matches for one page, plus the unmatched truth sections."""

    matches: List[SectionMatch]
    missed_truth: List[TruthSection]

    @property
    def perfect_count(self) -> int:
        return sum(1 for m in self.matches if m.perfect)

    @property
    def partial_count(self) -> int:
        return sum(1 for m in self.matches if m.partial)


def _count_correct_records(extracted: ExtractedSection, truth: TruthSection) -> int:
    truth_spans: Set[Span] = set(truth.record_spans)
    return sum(1 for record in extracted.records if record.line_span in truth_spans)


def grade_page(extraction: PageExtraction, truth: PageTruth) -> PageGrade:
    """Greedy one-to-one matching of extracted sections to truth sections."""
    candidates: List[Tuple[float, int, int]] = []
    for e_index, extracted in enumerate(extraction.sections):
        for t_index, truth_section in enumerate(truth.sections):
            similarity = span_jaccard(extracted.line_span, truth_section.span)
            if similarity >= MATCH_OVERLAP:
                candidates.append((similarity, e_index, t_index))
    candidates.sort(reverse=True)

    matched_e: Set[int] = set()
    matched_t: Set[int] = set()
    assignment: dict = {}
    for similarity, e_index, t_index in candidates:
        if e_index in matched_e or t_index in matched_t:
            continue
        matched_e.add(e_index)
        matched_t.add(t_index)
        assignment[e_index] = t_index

    matches: List[SectionMatch] = []
    for e_index, extracted in enumerate(extraction.sections):
        t_index = assignment.get(e_index)
        if t_index is None:
            matches.append(SectionMatch(extracted, None, 0))
        else:
            truth_section = truth.sections[t_index]
            matches.append(
                SectionMatch(
                    extracted,
                    truth_section,
                    _count_correct_records(extracted, truth_section),
                )
            )

    missed = [
        truth_section
        for t_index, truth_section in enumerate(truth.sections)
        if t_index not in matched_t
    ]
    return PageGrade(matches=matches, missed_truth=missed)
