"""Aggregated section / record extraction metrics (paper Tables 1-3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.evalkit.matching import PageGrade


@dataclass
class SectionCounts:
    """Counters backing one row of Table 1 / Table 2."""

    actual: int = 0
    extracted: int = 0
    perfect: int = 0
    partial: int = 0

    def add_grade(self, grade: PageGrade, truth_section_count: int) -> None:
        """Fold one page's grade into the counters."""
        self.actual += truth_section_count
        self.extracted += len(grade.matches)
        self.perfect += grade.perfect_count
        self.partial += grade.partial_count

    def merge(self, other: "SectionCounts") -> None:
        self.actual += other.actual
        self.extracted += other.extracted
        self.perfect += other.perfect
        self.partial += other.partial

    # -- Table 1/2 derived columns ------------------------------------------
    @property
    def recall_perfect(self) -> float:
        return _ratio(self.perfect, self.actual)

    @property
    def recall_total(self) -> float:
        return _ratio(self.perfect + self.partial, self.actual)

    @property
    def precision_perfect(self) -> float:
        return _ratio(self.perfect, self.extracted)

    @property
    def precision_total(self) -> float:
        return _ratio(self.perfect + self.partial, self.extracted)


@dataclass
class RecordCounts:
    """Counters backing one row of Table 3.

    Per the paper, record extraction is scored over the perfectly and
    partially correctly extracted sections only.
    """

    actual: int = 0
    extracted: int = 0
    correct: int = 0

    def add_grade(self, grade: PageGrade) -> None:
        for match in grade.matches:
            if not (match.perfect or match.partial):
                continue
            assert match.truth is not None
            self.actual += match.truth.record_count
            self.extracted += len(match.extracted.records)
            self.correct += match.correct_records

    def merge(self, other: "RecordCounts") -> None:
        self.actual += other.actual
        self.extracted += other.extracted
        self.correct += other.correct

    @property
    def recall(self) -> float:
        return _ratio(self.correct, self.actual)

    @property
    def precision(self) -> float:
        return _ratio(self.correct, self.extracted)


@dataclass
class EvalRows:
    """Sample-page / test-page / total rows for one experiment run."""

    sample_sections: SectionCounts = field(default_factory=SectionCounts)
    test_sections: SectionCounts = field(default_factory=SectionCounts)
    sample_records: RecordCounts = field(default_factory=RecordCounts)
    test_records: RecordCounts = field(default_factory=RecordCounts)

    @property
    def total_sections(self) -> SectionCounts:
        total = SectionCounts()
        total.merge(self.sample_sections)
        total.merge(self.test_sections)
        return total

    @property
    def total_records(self) -> RecordCounts:
        total = RecordCounts()
        total.merge(self.sample_records)
        total.merge(self.test_records)
        return total

    def merge(self, other: "EvalRows") -> None:
        self.sample_sections.merge(other.sample_sections)
        self.test_sections.merge(other.test_sections)
        self.sample_records.merge(other.sample_records)
        self.test_records.merge(other.test_records)


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0
