"""HTML substrate: tokenizer, DOM, tree builder, serializer.

This package replaces lxml / BeautifulSoup (not available offline) with a
purpose-built parser whose output is exactly the tree structure the MSE
pipeline consumes.
"""

from repro.htmlmod.dom import Comment, Document, Element, Node, Text, collapse_whitespace
from repro.htmlmod.parser import VOID_ELEMENTS, parse_html
from repro.htmlmod.serializer import serialize, serialize_node
from repro.htmlmod.tokens import tokenize

__all__ = [
    "Comment",
    "Document",
    "Element",
    "Node",
    "Text",
    "collapse_whitespace",
    "parse_html",
    "serialize",
    "serialize_node",
    "tokenize",
    "VOID_ELEMENTS",
]
