"""Serialize a DOM back to HTML markup.

Used by the test-bed page factory (pages are built as DOM trees and
serialized to HTML so the extractor parses real markup, not a shortcut
in-memory structure) and by round-trip tests.
"""

from __future__ import annotations

from html import escape
from typing import List

from repro.htmlmod.dom import Comment, Document, Element, Node, Text
from repro.htmlmod.parser import VOID_ELEMENTS


def serialize_node(node: Node) -> str:
    """Serialize a single DOM node (recursively) to HTML."""
    parts: List[str] = []
    _write(node, parts)
    return "".join(parts)


def serialize(document: Document) -> str:
    """Serialize a whole document, including its doctype if present."""
    prefix = f"<!{document.doctype}>" if document.doctype else "<!DOCTYPE html>"
    return prefix + serialize_node(document.root)


def _write(node: Node, parts: List[str]) -> None:
    if isinstance(node, Text):
        parts.append(escape(node.data, quote=False))
    elif isinstance(node, Comment):
        parts.append(f"<!--{node.data}-->")
    elif isinstance(node, Element):
        attrs = "".join(
            f' {name}="{escape(value, quote=True)}"' for name, value in node.attrs.items()
        )
        if node.tag in VOID_ELEMENTS:
            parts.append(f"<{node.tag}{attrs}>")
            return
        parts.append(f"<{node.tag}{attrs}>")
        for child in node.children:
            _write(child, parts)
        parts.append(f"</{node.tag}>")
