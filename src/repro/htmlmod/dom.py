"""A small DOM for HTML documents.

Only the features the extraction pipeline needs are implemented: an
ordered, labelled tree of elements / text / comments with parent links,
pre-order traversal, attribute access, and structural utilities (subtree
size, index paths).  The tree is deliberately mutable so the test-bed
generators can assemble pages programmatically.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

_WHITESPACE_RE = re.compile(r"\s+")


def collapse_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip the ends.

    This mirrors how browsers render HTML text outside ``<pre>``.
    """
    return _WHITESPACE_RE.sub(" ", text).strip()


class Node:
    """Base class for all DOM nodes."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional[Element] = None

    # -- tree geometry ---------------------------------------------------
    @property
    def index_in_parent(self) -> int:
        """The node's position among its parent's children (-1 for roots)."""
        if self.parent is None:
            return -1
        for i, child in enumerate(self.parent.children):
            if child is self:
                return i
        raise ValueError("node detached from its recorded parent")

    def index_path(self) -> Tuple[int, ...]:
        """Child-index path from the root to this node.

        The root has the empty path.  Index paths identify nodes uniquely
        within one document and are used by the ground-truth annotations.
        """
        path: List[int] = []
        node: Node = self
        while node.parent is not None:
            path.append(node.index_in_parent)
            node = node.parent
        return tuple(reversed(path))

    def ancestors(self) -> Iterator["Element"]:
        """Yield ancestors from the immediate parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """Return the root node of the tree containing this node."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def depth(self) -> int:
        """Number of ancestors above this node."""
        return sum(1 for _ in self.ancestors())

    # -- content ----------------------------------------------------------
    def text_content(self) -> str:
        """All descendant text, whitespace-collapsed."""
        return ""

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        return 1


class Text(Node):
    """A text node."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def text_content(self) -> str:
        return collapse_whitespace(self.data)

    def __repr__(self) -> str:
        preview = collapse_whitespace(self.data)
        if len(preview) > 30:
            preview = preview[:27] + "..."
        return f"Text({preview!r})"


class Comment(Node):
    """An HTML comment node (ignored by rendering)."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def __repr__(self) -> str:
        return f"Comment({self.data[:30]!r})"


class Element(Node):
    """An element node with a tag name, attributes, and ordered children."""

    __slots__ = ("tag", "attrs", "children")

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        children: Optional[Iterable[Node]] = None,
    ) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.attrs: Dict[str, str] = dict(attrs) if attrs else {}
        self.children: List[Node] = []
        if children:
            for child in children:
                self.append(child)

    # -- mutation ---------------------------------------------------------
    def append(self, child: Node) -> Node:
        """Append ``child`` and set its parent pointer.  Returns the child."""
        if child.parent is not None:
            child.parent.remove(child)
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: Node) -> Node:
        """Insert ``child`` at ``index``.  Returns the child."""
        if child.parent is not None:
            child.parent.remove(child)
        child.parent = self
        self.children.insert(index, child)
        return child

    def remove(self, child: Node) -> None:
        """Detach ``child`` from this element."""
        self.children.remove(child)
        child.parent = None

    def append_text(self, data: str) -> Text:
        """Convenience: append a text node."""
        text = Text(data)
        self.append(text)
        return text

    # -- attribute access --------------------------------------------------
    def get(self, name: str, default: str = "") -> str:
        """Return attribute ``name`` (lowercase key), or ``default``."""
        return self.attrs.get(name, default)

    @property
    def classes(self) -> Tuple[str, ...]:
        """The element's class list."""
        return tuple(self.attrs.get("class", "").split())

    def has_class(self, name: str) -> bool:
        """True if ``name`` is in the element's class list."""
        return name in self.classes

    # -- traversal ----------------------------------------------------------
    def iter(self) -> Iterator[Node]:
        """Pre-order traversal of the subtree rooted here (including self)."""
        stack: List[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                stack.extend(reversed(node.children))

    def iter_elements(self) -> Iterator["Element"]:
        """Pre-order traversal yielding only elements."""
        for node in self.iter():
            if isinstance(node, Element):
                yield node

    def iter_texts(self) -> Iterator[Text]:
        """Pre-order traversal yielding only text nodes."""
        for node in self.iter():
            if isinstance(node, Text):
                yield node

    def find(self, tag: str) -> Optional["Element"]:
        """First descendant element (or self) with the given tag name."""
        for element in self.iter_elements():
            if element.tag == tag:
                return element
        return None

    def find_all(self, tag: str) -> List["Element"]:
        """All descendant elements (or self) with the given tag name."""
        return [e for e in self.iter_elements() if e.tag == tag]

    def child_elements(self) -> List["Element"]:
        """Direct children that are elements."""
        return [c for c in self.children if isinstance(c, Element)]

    def resolve_index_path(self, path: Sequence[int]) -> Node:
        """Follow a child-index path (see :meth:`Node.index_path`)."""
        node: Node = self
        for index in path:
            if not isinstance(node, Element):
                raise LookupError(f"path {tuple(path)} descends through a leaf")
            try:
                node = node.children[index]
            except IndexError as exc:
                raise LookupError(f"path {tuple(path)} is out of range") from exc
        return node

    # -- content --------------------------------------------------------------
    def text_content(self) -> str:
        parts: List[str] = []
        for text in self.iter_texts():
            cleaned = text.text_content()
            if cleaned:
                parts.append(cleaned)
        return " ".join(parts)

    def subtree_size(self) -> int:
        return 1 + sum(child.subtree_size() for child in self.children)

    def tag_signature(self) -> Tuple:
        """A nested-tuple encoding of the subtree's tag structure.

        Text and comments are ignored; the signature captures only element
        tags and their nesting, which is what tag-structure comparisons in
        the paper operate on.
        """
        return (self.tag,) + tuple(
            child.tag_signature() for child in self.children if isinstance(child, Element)
        )

    def __repr__(self) -> str:
        attrs = "".join(f" {k}={v!r}" for k, v in self.attrs.items())
        return f"<{self.tag}{attrs} children={len(self.children)}>"


class Document:
    """A parsed HTML document: a root ``<html>`` element plus metadata."""

    __slots__ = ("root", "doctype")

    def __init__(self, root: Element, doctype: str = "") -> None:
        self.root = root
        self.doctype = doctype

    @property
    def body(self) -> Element:
        """The document body (created on demand if missing)."""
        body = self.root.find("body")
        if body is None:
            body = Element("body")
            self.root.append(body)
        return body

    @property
    def head(self) -> Optional[Element]:
        """The document head, if present."""
        return self.root.find("head")

    @property
    def title(self) -> str:
        """The document title, whitespace-collapsed ('' if absent)."""
        head = self.head
        if head is not None:
            title = head.find("title")
            if title is not None:
                return title.text_content()
        return ""

    def iter(self) -> Iterator[Node]:
        """Pre-order traversal of the whole document."""
        return self.root.iter()

    def __repr__(self) -> str:
        return f"Document(title={self.title!r}, nodes={self.root.subtree_size()})"
