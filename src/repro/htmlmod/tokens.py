"""HTML token stream.

The DOM builder in :mod:`repro.htmlmod.parser` consumes a flat stream of
tokens rather than driving tree construction straight from callbacks.  This
keeps the tokenizer independently testable and makes the tree-construction
rules (implied end tags, void elements) explicit.

The tokenizer itself is built on :class:`html.parser.HTMLParser` from the
standard library, which handles the gritty lexical details (attribute
quoting styles, comments, doctypes, character references) and is tolerant
of the malformed markup that real search-engine result pages are full of.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class Token:
    """Base class for lexical tokens produced by :func:`tokenize`."""


@dataclass(frozen=True)
class StartTag(Token):
    """An opening tag, e.g. ``<td class="r">``.

    ``self_closing`` is set for XML-style ``<br/>`` spellings; the tree
    builder also treats all HTML void elements as self-closing regardless
    of spelling.
    """

    name: str
    attrs: Tuple[Tuple[str, str], ...] = ()
    self_closing: bool = False

    def get(self, attr: str, default: str = "") -> str:
        """Return the first value of ``attr`` (lowercase), or ``default``."""
        for key, value in self.attrs:
            if key == attr:
                return value
        return default


@dataclass(frozen=True)
class EndTag(Token):
    """A closing tag, e.g. ``</td>``."""

    name: str


@dataclass(frozen=True)
class TextToken(Token):
    """A run of character data (entities already decoded)."""

    data: str


@dataclass(frozen=True)
class CommentToken(Token):
    """An HTML comment; preserved so the DOM can round-trip pages."""

    data: str


@dataclass(frozen=True)
class DoctypeToken(Token):
    """A ``<!DOCTYPE ...>`` declaration."""

    data: str


#: Elements whose content is raw text: the tokenizer must not interpret
#: tags inside them.  ``html.parser`` handles script/style natively (CDATA
#: mode); we normalise their contents into a single TextToken.
RAW_TEXT_ELEMENTS = frozenset({"script", "style"})


class _CollectingParser(HTMLParser):
    """HTMLParser subclass that records tokens into a list."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.tokens: List[Token] = []

    # -- HTMLParser callbacks -------------------------------------------
    def handle_starttag(self, tag: str, attrs) -> None:  # noqa: D102
        cleaned = tuple(
            (name.lower(), value if value is not None else "") for name, value in attrs
        )
        self.tokens.append(StartTag(tag.lower(), cleaned))

    def handle_startendtag(self, tag: str, attrs) -> None:  # noqa: D102
        cleaned = tuple(
            (name.lower(), value if value is not None else "") for name, value in attrs
        )
        self.tokens.append(StartTag(tag.lower(), cleaned, self_closing=True))

    def handle_endtag(self, tag: str) -> None:  # noqa: D102
        self.tokens.append(EndTag(tag.lower()))

    def handle_data(self, data: str) -> None:  # noqa: D102
        if data:
            self.tokens.append(TextToken(data))

    def handle_comment(self, data: str) -> None:  # noqa: D102
        self.tokens.append(CommentToken(data))

    def handle_decl(self, decl: str) -> None:  # noqa: D102
        self.tokens.append(DoctypeToken(decl))


def tokenize(markup: str) -> List[Token]:
    """Tokenize an HTML document into a flat list of tokens.

    Entities are decoded, tag and attribute names are lowercased, and
    attribute values with no ``=value`` part become empty strings.  The
    tokenizer never raises on malformed markup; unparseable fragments
    degrade to text.
    """
    parser = _CollectingParser()
    parser.feed(markup)
    parser.close()
    return parser.tokens


def iter_tokens(markup: str) -> Iterator[Token]:
    """Iterate over the tokens of ``markup`` (see :func:`tokenize`)."""
    return iter(tokenize(markup))
