"""HTML tree construction.

Builds a :class:`repro.htmlmod.dom.Document` from the token stream produced
by :mod:`repro.htmlmod.tokens`.  Implements the subset of the HTML5 tree
construction rules that matters for result pages generated around 2006:

- void elements (``<br>``, ``<img>``, ``<hr>``, ...) never take children;
- implied end tags: an opening ``<li>`` closes an open ``<li>``, ``<tr>``
  closes ``<tr>``/``<td>``, a block element closes an open ``<p>``, etc.;
- stray end tags with no matching open element are ignored;
- an end tag for a non-innermost open element closes the intervening
  elements (simple "popping" recovery);
- missing ``<html>``/``<body>`` wrappers are synthesised.
"""

from __future__ import annotations

from typing import List

from repro.htmlmod.dom import Comment, Document, Element, Text
from repro.htmlmod.tokens import (
    CommentToken,
    DoctypeToken,
    EndTag,
    StartTag,
    TextToken,
    tokenize,
)

#: Elements that never have content.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr", "spacer",
    }
)

#: tag -> set of open tags that an occurrence of ``tag`` implicitly closes.
#: Closing is applied repeatedly while the innermost open element is in the
#: set, so nested structures unwind correctly (e.g. a new <tr> closes an
#: open <td> and then the open <tr>).
IMPLIED_CLOSERS = {
    "li": {"li"},
    "dt": {"dt", "dd"},
    "dd": {"dt", "dd"},
    "tr": {"td", "th", "tr"},
    "td": {"td", "th"},
    "th": {"td", "th"},
    "thead": {"td", "th", "tr", "tbody", "tfoot"},
    "tbody": {"td", "th", "tr", "thead", "tfoot"},
    "tfoot": {"td", "th", "tr", "thead", "tbody"},
    "option": {"option"},
    "optgroup": {"option", "optgroup"},
    "p": {"p"},
    "table": {"p"},
    "div": {"p"},
    "ul": {"p"},
    "ol": {"p"},
    "dl": {"p"},
    "h1": {"p"},
    "h2": {"p"},
    "h3": {"p"},
    "h4": {"p"},
    "h5": {"p"},
    "h6": {"p"},
    "form": {"p"},
    "hr": {"p"},
    "blockquote": {"p"},
    "pre": {"p"},
}

#: Elements whose implicit closing must not propagate past these ancestors.
#: e.g. an <li> inside a nested <ul> must not close the outer <li>, and a
#: <td> of an inner table must not close the inner <tr>.
_SCOPE_BARRIERS = frozenset(
    {
        "table", "tbody", "thead", "tfoot", "tr", "td", "th",
        "ul", "ol", "dl", "div", "body", "html", "form", "select",
    }
)


class TreeBuilder:
    """Incremental DOM construction from HTML tokens."""

    def __init__(self) -> None:
        self.root = Element("html")
        self.doctype = ""
        self._stack: List[Element] = [self.root]
        self._saw_body = False

    # -- stack helpers ------------------------------------------------------
    @property
    def current(self) -> Element:
        return self._stack[-1]

    def _open(self, element: Element) -> None:
        self.current.append(element)
        self._stack.append(element)

    def _close_innermost(self) -> None:
        if len(self._stack) > 1:
            self._stack.pop()

    def _apply_implied_closers(self, tag: str) -> None:
        closers = IMPLIED_CLOSERS.get(tag)
        if not closers:
            return
        while len(self._stack) > 1:
            innermost = self.current.tag
            if innermost in closers:
                self._close_innermost()
                continue
            if innermost in _SCOPE_BARRIERS:
                break
            # Unwind formatting wrappers (<b>, <font>, ...) only when a
            # closable element sits below them *within the current scope*
            # — never look past a barrier, or an inner table's <tr> would
            # close the outer table's open <td>.
            closable_in_scope = False
            for element in reversed(self._stack[:-1]):
                if element.tag in closers:
                    closable_in_scope = True
                    break
                if element.tag in _SCOPE_BARRIERS:
                    break
            if closable_in_scope:
                self._close_innermost()
            else:
                break

    # -- token handling --------------------------------------------------------
    def start_tag(self, token: StartTag) -> None:
        tag = token.name
        if tag == "html":
            # Merge attributes into the synthesised root.
            for key, value in token.attrs:
                self.root.attrs.setdefault(key, value)
            return
        if tag == "body":
            body = self.root.find("body")
            if body is None:
                body = Element("body", dict(token.attrs))
                self.root.append(body)
            else:
                for key, value in token.attrs:
                    body.attrs.setdefault(key, value)
            # Reset stack to the body.
            self._stack = [self.root, body]
            self._saw_body = True
            return

        self._apply_implied_closers(tag)
        element = Element(tag, dict(token.attrs))
        if tag in VOID_ELEMENTS or token.self_closing:
            self._ensure_body_for_content(tag)
            self.current.append(element)
        else:
            self._ensure_body_for_content(tag)
            self._open(element)

    def _ensure_body_for_content(self, tag: str) -> None:
        """Route visible content under <body> even if <body> was omitted."""
        if tag in {"head", "title", "meta", "link", "base", "script", "style"}:
            return
        if self.current is self.root:
            body = self.root.find("body")
            if body is None:
                body = Element("body")
                self.root.append(body)
            self._stack.append(body)

    def end_tag(self, token: EndTag) -> None:
        tag = token.name
        if tag in VOID_ELEMENTS:
            return
        if tag in {"html", "body"}:
            body = self.root.find("body")
            self._stack = [self.root] + ([body] if body is not None and tag == "html" else [])
            if tag == "body" and body is not None:
                self._stack = [self.root, body]
            return
        # Find the nearest matching open element; an end tag never crosses
        # a <table> boundary (so a stray </tr> inside a nested table cannot
        # pop out to the outer table's row).
        for depth in range(len(self._stack) - 1, 0, -1):
            current_tag = self._stack[depth].tag
            if current_tag == tag:
                del self._stack[depth:]
                return
            if current_tag == "table" and tag != "table":
                return
        # No matching open element: ignore the stray end tag.

    def text(self, token: TextToken) -> None:
        if not token.data.strip():
            # Keep a single space between inline runs; drop pure formatting
            # whitespace at the top of the stack.
            if self.current.children and isinstance(self.current.children[-1], Text):
                return
            if self.current is self.root:
                return
            self.current.append(Text(" "))
            return
        self._ensure_body_for_content("#text")
        self.current.append(Text(token.data))

    def comment(self, token: CommentToken) -> None:
        if self.current is self.root:
            return
        self.current.append(Comment(token.data))

    def finish(self) -> Document:
        return Document(self.root, self.doctype)


def parse_html(markup: str) -> Document:
    """Parse an HTML string into a :class:`Document`.

    Never raises on malformed input; recovery follows the rules described
    in the module docstring.
    """
    builder = TreeBuilder()
    for token in tokenize(markup):
        if isinstance(token, StartTag):
            builder.start_tag(token)
        elif isinstance(token, EndTag):
            builder.end_tag(token)
        elif isinstance(token, TextToken):
            builder.text(token)
        elif isinstance(token, CommentToken):
            builder.comment(token)
        elif isinstance(token, DoctypeToken):
            builder.doctype = token.data
    return builder.finish()
