"""Warm persistent serving workers: the long-lived batch pool.

:func:`repro.perf.serve.extract_many` answers *one* batch, but it used
to pay the whole pool tax per call: fork workers, re-compile every
wrapper inside each of them, start with cold ``TREE_MEMO`` /
``FOREST_MEMO`` / ``DINR_MEMO`` caches, and ship one page per IPC
round-trip.  ``BENCH_serve.json`` recorded the result — a 4-worker pool
*losing* to one warm thread.

:class:`Server` keeps the pool alive instead:

- **Spawn once.**  Workers are forked at :meth:`Server.start` (or on
  first use) and stay resident across calls.  Each worker compiles the
  engine wrappers once and then runs a *priming pass* over caller-chosen
  representative pages, so the per-process kernel memos and interners
  are warm before the first real batch arrives.  Per-worker cache
  warmth is reported back (``server.worker.*`` gauges and
  :attr:`Server.worker_stats`) so benchmarks can show the
  cold-vs-warm delta next to pages/sec.
- **Amortize IPC.**  Batches are split into chunks sized by
  :func:`auto_chunksize` (the classic ``len(pages) / (workers * 4)``
  heuristic, capped) and dispatched one chunk per idle worker, so the
  per-message cost spreads over many pages while the tail stays
  balanced.
- **Degrade, don't lose.**  The parent polls worker liveness while it
  collects results; a worker that dies mid-chunk is respawned (with a
  fresh task queue, so a stale chunk can never replay) and its chunk is
  retried.  Chunk completion is idempotent, batch-epoch-fenced and
  written into position-indexed slots, so a crash costs throughput —
  never a page, never a duplicate, never the ordering.  If the pool
  goes *silent* for a whole stall window (a stopped worker, or a result
  queue poisoned by a worker killed mid-write), the parent rebuilds it
  wholesale — every worker killed, fresh queues, in-flight chunks
  requeued — so no single wedged channel can deadlock a batch; crashes
  and rebuilds draw from the same ``max_restarts`` budget and raise
  once it is exhausted.

Results are bit-identical to the serial compiled path (and therefore to
the interpreted :meth:`~repro.core.wrapper.EngineWrapper.extract` /
``check_wrapper`` pair): workers run the exact same
:class:`~repro.perf.serve.CompiledWrapper` code on the exact same page
index, and the parity suite asserts it corpus-wide.

Per-worker observability rides the same protocol: when the caller's
observer is enabled each worker keeps its own
:class:`~repro.obs.Observer`, and at :meth:`Server.close` the worker
stats documents merge back through :meth:`Observer.merge_stats` (spans
graft, counters add, metrics fold via
:meth:`MetricsRegistry.merge_snapshot`).

Fork-safety and pickle-safety of this module are enforced by the flow
rules (MP01/MP02): the worker entry points are registered in
:data:`repro.analysis.registry.POOL_WORKER_ENTRYPOINTS`, and the only
globals workers touch are the registered process-local memos.
"""

from __future__ import annotations

import gc
import multiprocessing
import traceback
from collections import deque
from queue import Empty
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.model import PageExtraction
from repro.core.wrapper import EngineWrapper
from repro.obs import NULL_OBSERVER, Observer, ObserverLike
from repro.perf.kernels import kernel_cache_stats
from repro.perf.serve import CompiledWrapper, ServedPage, build_page_index

#: one unit of worker work: (markup, query, wrapper ids to apply)
_PageTask = Tuple[str, str, Tuple[int, ...]]

#: a chunk of page tasks shipped in one IPC message
_Chunk = Tuple[_PageTask, ...]

#: batch modes (what the worker runs per page)
_MODE_EXTRACT = "extract"
_MODE_SERVE = "serve"

#: seconds between liveness checks while waiting on the result queue
_POLL_SECONDS = 0.05

#: consecutive empty polls (~60 s at _POLL_SECONDS) before the parent
#: assumes the worker IPC is wedged — fork can copy a queue mid-write
#: on a loaded box — and terminates the silent workers so the normal
#: respawn-and-requeue path recovers instead of polling forever
_STALL_POLLS = 1200

#: auto_chunksize targets this many chunks per worker (the stdlib
#: Pool heuristic): enough slack for work stealing without paying
#: per-page IPC
_CHUNKS_PER_WORKER = 4

#: auto_chunksize cap so huge batches still stream progress
_MAX_CHUNKSIZE = 64


def auto_chunksize(page_count: int, workers: int) -> int:
    """Chunk size amortizing IPC for ``page_count`` pages on ``workers``.

    Mirrors ``multiprocessing.Pool``'s heuristic — about
    ``_CHUNKS_PER_WORKER`` chunks per worker so stragglers can steal
    work — capped at ``_MAX_CHUNKSIZE`` pages per message so one chunk
    never serializes an unbounded payload.
    """
    if page_count <= 0 or workers <= 0:
        return 1
    chunk, extra = divmod(page_count, workers * _CHUNKS_PER_WORKER)
    if extra:
        chunk += 1
    return max(1, min(chunk, _MAX_CHUNKSIZE))


def _resolve_assignments(
    count: int, wrapper_of: Optional[Sequence[int]], wrapper_count: int
) -> List[Tuple[int, ...]]:
    """Per-page wrapper-id tuples (every wrapper unless ``wrapper_of``)."""
    if wrapper_of is not None and len(wrapper_of) != count:
        raise ValueError("wrapper_of must assign one wrapper per page")
    if wrapper_of is None:
        everyone = tuple(range(wrapper_count))
        return [everyone] * count
    for wrapper_id in wrapper_of:
        if not 0 <= wrapper_id < wrapper_count:
            raise ValueError(f"wrapper_of index {wrapper_id} out of range")
    return [(wrapper_id,) for wrapper_id in wrapper_of]


def _prime_worker(
    compiled: Sequence[CompiledWrapper],
    prime_tasks: Sequence[_PageTask],
    obs: ObserverLike,
) -> int:
    """Warm this process's kernel memos: serve every priming page.

    ``serve_index`` exercises strictly more of the hot path than
    ``extract_index`` (extraction *and* the DINR/health kernels), so
    priming through it warms every memo a later batch can hit.  The
    served results are discarded — only the cache side effects matter.
    """
    primed = 0
    for markup, query, wrapper_ids in prime_tasks:
        index = build_page_index(markup, query, obs=obs)
        for wrapper_id in wrapper_ids:
            compiled[wrapper_id].serve_index(index, obs=obs)
        primed += 1
    return primed


def _run_chunk(
    compiled: Sequence[CompiledWrapper],
    mode: str,
    chunk: _Chunk,
    obs: ObserverLike,
) -> List[List[Any]]:
    """Serve or extract every page of one chunk, in chunk order."""
    payload: List[List[Any]] = []
    for markup, query, wrapper_ids in chunk:
        index = build_page_index(markup, query, obs=obs)
        if mode == _MODE_SERVE:
            payload.append(
                [
                    compiled[wrapper_id].serve_index(index, obs=obs)
                    for wrapper_id in wrapper_ids
                ]
            )
        else:
            payload.append(
                [
                    compiled[wrapper_id].extract_index(index, obs=obs)
                    for wrapper_id in wrapper_ids
                ]
            )
    return payload


def _worker_main(
    worker_id: int,
    engines: Sequence[EngineWrapper],
    prime_tasks: Sequence[_PageTask],
    observed: bool,
    tasks: Any,
    results: Any,
) -> None:
    """Resident worker loop: compile, prime, then serve chunks forever.

    Protocol (messages on ``results``):

    - ``("primed", worker_id, prime_pages, kernel_stats)`` once the
      wrappers are compiled and the priming pass has run;
    - ``("done", worker_id, epoch, chunk_id, payload)`` per completed
      chunk — ``epoch`` echoes the batch that dispatched it, so the
      parent can discard chunks from a batch aborted by an error;
    - ``("error", worker_id, epoch, chunk_id, formatted_traceback)``
      when a chunk raises — the worker stays alive for the next chunk;
    - ``("stats", worker_id, stats_doc, kernel_stats)`` in response to
      the ``None`` shutdown sentinel, after which the worker exits.
    """
    obs: ObserverLike = Observer() if observed else NULL_OBSERVER
    compiled = [CompiledWrapper(engine) for engine in engines]
    primed = _prime_worker(compiled, prime_tasks, obs)
    # The compiled programs and primed memos are permanent for this
    # worker's lifetime; freeze them out of the cyclic GC so later
    # collections never re-scan the (large) warm cache population.
    gc.collect()
    gc.freeze()
    results.put(("primed", worker_id, primed, kernel_cache_stats()))
    while True:
        message = tasks.get()
        if message is None:
            stats_doc = obs.stats() if isinstance(obs, Observer) else None
            results.put(("stats", worker_id, stats_doc, kernel_cache_stats()))
            return
        epoch, chunk_id, mode, chunk = message
        try:
            payload = _run_chunk(compiled, mode, chunk, obs)
        except Exception:
            results.put(
                ("error", worker_id, epoch, chunk_id, traceback.format_exc())
            )
            continue
        results.put(("done", worker_id, epoch, chunk_id, payload))


class Server:
    """A long-lived pool of pre-warmed compiled-serving workers.

    ``wrappers`` may mix plain :class:`EngineWrapper` and
    :class:`CompiledWrapper` (workers compile their own copies).
    ``prime_pages`` — optional representative ``(markup, query)`` pairs
    — are served once by *every* worker at spawn to warm its kernel
    memos; ``prime_of`` restricts each priming page to one wrapper, the
    same shape as ``wrapper_of``.

    Use as a context manager, or call :meth:`close` / :meth:`join`::

        with Server(wrappers, jobs=4, prime_pages=samples) as server:
            extractions = server.extract(pages, wrapper_of=owners)
            served = server.serve(more_pages, wrapper_of=owners)

    Batches may be submitted repeatedly; workers stay resident (that is
    the point).  Results are deterministic and bit-identical to the
    serial compiled path regardless of ``jobs``/``chunksize``; a worker
    crash is detected, the worker respawned and its chunk retried, so
    pages are never lost or duplicated.
    """

    def __init__(
        self,
        wrappers: Sequence[Union[EngineWrapper, CompiledWrapper]],
        jobs: int = 1,
        chunksize: Optional[int] = None,
        prime_pages: Sequence[Tuple[str, str]] = (),
        prime_of: Optional[Sequence[int]] = None,
        obs: ObserverLike = NULL_OBSERVER,
        max_restarts: int = 8,
    ) -> None:
        if not wrappers:
            raise ValueError("Server needs at least one wrapper")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.jobs = max(1, jobs)
        self.chunksize = chunksize
        self.obs = obs
        self.max_restarts = max_restarts
        self.restarts = 0
        #: per-worker telemetry: {"prime_pages", "primed", "final", ...}
        self.worker_stats: Dict[int, Dict[str, Any]] = {}
        self._engines: List[EngineWrapper] = [
            wrapper.engine if isinstance(wrapper, CompiledWrapper) else wrapper
            for wrapper in wrappers
        ]
        prime_ids = _resolve_assignments(
            len(prime_pages), prime_of, len(self._engines)
        )
        self._prime: Tuple[_PageTask, ...] = tuple(
            (markup, query, wrapper_ids)
            for (markup, query), wrapper_ids in zip(prime_pages, prime_ids)
        )
        self._observed = bool(getattr(obs, "enabled", False))
        self._ctx = multiprocessing.get_context()
        self._result_queue: Any = self._ctx.Queue()
        self._workers: Dict[int, Any] = {}
        self._task_queues: Dict[int, Any] = {}
        self._primed: Set[int] = set()
        #: worker id -> (batch epoch, chunk id) of its in-flight chunk
        self._busy: Dict[int, Tuple[int, int]] = {}
        self._next_worker_id = 0
        self._epoch = 0
        self._started = False
        self._closed = False
        # per-batch state (reset by _run_batch)
        self._chunks: List[_Chunk] = []
        self._chunk_starts: List[int] = []
        self._pending: Deque[int] = deque()
        self._completed: Set[int] = set()
        self._slots: List[Optional[List[Any]]] = []
        self._mode: str = _MODE_EXTRACT

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "Server":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def workers_alive(self) -> int:
        """Live worker processes right now (crash tests poke at this)."""
        return sum(1 for proc in self._workers.values() if proc.is_alive())

    def start(self) -> "Server":
        """Spawn and prime the pool; idempotent; blocks until warm."""
        if self._closed:
            raise RuntimeError("Server is closed")
        if self._started:
            return self
        self._started = True
        with self.obs.span("server.start"):
            for _ in range(self.jobs):
                self._spawn()
            stalled = 0
            while any(
                worker_id not in self._primed for worker_id in self._workers
            ):
                message = self._poll()
                if message is None:
                    stalled += 1
                    if stalled >= _STALL_POLLS:
                        stalled = 0
                        self._rebuild_pool()
                        continue
                    self._reap()
                    continue
                stalled = 0
                if message[0] == "primed":
                    self._on_primed(message[1], message[2], message[3])
            self.obs.gauge("server.workers", float(len(self._workers)))
        return self

    def close(self) -> None:
        """Shut the pool down: drain stats, merge telemetry, join."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        for worker_id in sorted(self._task_queues):
            self._task_queues[worker_id].put(None)
        waiting = {
            worker_id
            for worker_id, proc in self._workers.items()
            if proc.is_alive()
        }
        stalled = 0
        while waiting:
            message = self._poll()
            if message is None:
                stalled += 1
                if stalled >= _STALL_POLLS:
                    break  # wedged workers: the join/terminate below cleans up
                for worker_id in sorted(waiting):
                    proc = self._workers.get(worker_id)
                    if proc is None or not proc.is_alive():
                        waiting.discard(worker_id)
                continue
            stalled = 0
            if message[0] == "stats":
                self._on_final_stats(message[1], message[2], message[3])
                waiting.discard(message[1])
            # late "done"/"error"/"primed" messages are harmless here
        for proc in self._workers.values():
            proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
                proc.join()
        self._workers.clear()
        self._task_queues.clear()
        self._primed.clear()
        self._busy.clear()
        self.obs.gauge("server.restarts", float(self.restarts))

    def join(self) -> None:
        """Alias for :meth:`close` (submit/collect API symmetry)."""
        self.close()

    # -- the public batch API -------------------------------------------
    def extract(
        self,
        pages: Sequence[Tuple[str, str]],
        wrapper_of: Optional[Sequence[int]] = None,
    ) -> List[List[PageExtraction]]:
        """Batch extraction across the pool; order matches ``pages``."""
        return self._run_batch(pages, wrapper_of, _MODE_EXTRACT)

    def serve(
        self,
        pages: Sequence[Tuple[str, str]],
        wrapper_of: Optional[Sequence[int]] = None,
    ) -> List[List[ServedPage]]:
        """Batch serving (extraction + health) across the pool."""
        return self._run_batch(pages, wrapper_of, _MODE_SERVE)

    # -- internals ------------------------------------------------------
    def _spawn(self) -> int:
        """Start one worker with a fresh task queue; returns its id."""
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._engines,
                self._prime,
                self._observed,
                task_queue,
                self._result_queue,
            ),
        )
        proc.daemon = True
        proc.start()
        self._task_queues[worker_id] = task_queue
        self._workers[worker_id] = proc
        return worker_id

    def _poll(self) -> Optional[Tuple[Any, ...]]:
        """One result-queue read; ``None`` means check liveness."""
        try:
            message: Tuple[Any, ...] = self._result_queue.get(
                timeout=_POLL_SECONDS
            )
        except Empty:
            return None
        return message

    def _reap(self) -> None:
        """Respawn dead workers; requeue whatever they were chewing on.

        A dead worker's in-flight chunk goes back to the *front* of the
        pending deque (retry first), and its replacement gets a fresh
        task queue — a chunk sitting in the dead worker's queue can
        therefore never be delivered twice.  A chunk from an aborted
        earlier batch (stale epoch) is simply dropped.
        """
        for worker_id in sorted(self._workers):
            proc = self._workers[worker_id]
            if proc.is_alive():
                continue
            del self._workers[worker_id]
            del self._task_queues[worker_id]
            self._primed.discard(worker_id)
            in_flight = self._busy.pop(worker_id, None)
            if in_flight is not None:
                epoch, chunk_id = in_flight
                if epoch == self._epoch and chunk_id not in self._completed:
                    self._pending.appendleft(chunk_id)
            self.restarts += 1
            self.obs.count("server.worker_restarts")
            if self.restarts > self.max_restarts:
                self._abort()
                raise RuntimeError(
                    f"Server exceeded {self.max_restarts} worker restarts"
                )
            replacement = self._spawn()
            self.worker_stats.setdefault(replacement, {})["respawned_for"] = (
                worker_id
            )

    def _rebuild_pool(self) -> None:
        """Tear the whole pool down and bring it back on fresh queues.

        The stall recovery: when every channel goes silent for a whole
        window, the likeliest causes are a lost task message or a
        *poisoned result queue* — a worker killed between writing its
        message bytes and releasing the queue's shared write lock
        leaves that semaphore held forever, wedging every other worker.
        Per-worker respawn cannot fix either (the replacement inherits
        the same result queue), so: SIGKILL every worker, swap in a
        fresh result queue, respawn the pool, and requeue whatever was
        in flight.  Costs one re-prime and one unit of the restart
        budget — a wedge that persists across ``max_restarts`` rebuilds
        raises rather than looping.
        """
        self.obs.count("server.pool_rebuilds")
        for worker_id in list(self._workers):
            proc = self._workers.pop(worker_id)
            if proc.is_alive():
                # SIGKILL, not SIGTERM: a wedged (or stopped) worker may
                # never get to deliver a catchable signal.
                proc.kill()
            proc.join()
            self._task_queues.pop(worker_id, None)
            self._primed.discard(worker_id)
            in_flight = self._busy.pop(worker_id, None)
            if in_flight is not None:
                epoch, chunk_id = in_flight
                if epoch == self._epoch and chunk_id not in self._completed:
                    self._pending.appendleft(chunk_id)
        self.restarts += 1
        if self.restarts > self.max_restarts:
            self._abort()
            raise RuntimeError(
                f"Server exceeded {self.max_restarts} worker restarts"
            )
        self._result_queue = self._ctx.Queue()
        for _ in range(self.jobs):
            self._spawn()

    def _abort(self) -> None:
        """Hard-stop every worker (restart-budget exhausted)."""
        self._closed = True
        for proc in self._workers.values():
            if proc.is_alive():
                proc.kill()
            proc.join()
        self._workers.clear()
        self._task_queues.clear()
        self._busy.clear()

    def _on_primed(
        self, worker_id: int, prime_pages: int, kernel_stats: Dict[str, Any]
    ) -> None:
        self._primed.add(worker_id)
        stats = self.worker_stats.setdefault(worker_id, {})
        stats["prime_pages"] = prime_pages
        stats["primed"] = kernel_stats
        obs = self.obs
        if obs.enabled:
            obs.gauge(
                f"server.worker.{worker_id}.prime_pages", float(prime_pages)
            )
            for cache, cache_stats in kernel_stats.items():
                rate = cache_stats.get("hit_rate")
                if rate is not None:
                    obs.gauge(
                        f"server.worker.{worker_id}.primed.{cache}.hit_rate",
                        float(rate),
                    )

    def _on_final_stats(
        self,
        worker_id: int,
        stats_doc: Optional[Dict[str, Any]],
        kernel_stats: Dict[str, Any],
    ) -> None:
        stats = self.worker_stats.setdefault(worker_id, {})
        stats["final"] = kernel_stats
        obs = self.obs
        if stats_doc is not None:
            merge = getattr(obs, "merge_stats", None)
            if merge is not None:
                merge(stats_doc)
        if obs.enabled:
            for cache, cache_stats in kernel_stats.items():
                rate = cache_stats.get("hit_rate")
                if rate is not None:
                    obs.gauge(
                        f"server.worker.{worker_id}.final.{cache}.hit_rate",
                        float(rate),
                    )

    def _dispatch(self) -> None:
        """Hand one pending chunk to every idle worker."""
        for worker_id in sorted(self._workers):
            if worker_id in self._busy:
                continue
            chunk_id: Optional[int] = None
            while self._pending:
                candidate = self._pending.popleft()
                if candidate not in self._completed:
                    chunk_id = candidate
                    break
            if chunk_id is None:
                return
            self._task_queues[worker_id].put(
                (self._epoch, chunk_id, self._mode, self._chunks[chunk_id])
            )
            self._busy[worker_id] = (self._epoch, chunk_id)

    def _on_done(
        self,
        worker_id: int,
        epoch: int,
        chunk_id: int,
        payload: List[List[Any]],
    ) -> None:
        if self._busy.get(worker_id) == (epoch, chunk_id):
            del self._busy[worker_id]
        if epoch != self._epoch:
            return  # chunk from a batch aborted by an error: drop it
        if chunk_id in self._completed:
            return  # a retried chunk finished twice: identical, drop it
        self._completed.add(chunk_id)
        start = self._chunk_starts[chunk_id]
        for offset, page_results in enumerate(payload):
            self._slots[start + offset] = page_results

    def _run_batch(
        self,
        pages: Sequence[Tuple[str, str]],
        wrapper_of: Optional[Sequence[int]],
        mode: str,
    ) -> List[List[Any]]:
        if self._closed:
            raise RuntimeError("Server is closed")
        assignments = _resolve_assignments(
            len(pages), wrapper_of, len(self._engines)
        )
        if not pages:
            return []
        self.start()
        obs = self.obs
        with obs.span("server.batch"):
            # New epoch: anything still in flight from an aborted batch
            # will be recognized as stale and discarded on arrival.
            self._epoch += 1
            size = self.chunksize or auto_chunksize(len(pages), self.jobs)
            tasks: List[_PageTask] = [
                (markup, query, wrapper_ids)
                for (markup, query), wrapper_ids in zip(pages, assignments)
            ]
            self._mode = mode
            self._chunks = [
                tuple(tasks[start : start + size])
                for start in range(0, len(tasks), size)
            ]
            self._chunk_starts = list(range(0, len(tasks), size))
            self._pending = deque(range(len(self._chunks)))
            self._completed = set()
            self._slots = [None] * len(pages)
            obs.gauge("server.chunksize", float(size))
            stalled = 0
            while len(self._completed) < len(self._chunks):
                self._dispatch()
                message = self._poll()
                if message is None:
                    stalled += 1
                    if stalled >= _STALL_POLLS:
                        stalled = 0
                        self._rebuild_pool()
                        continue
                    self._reap()
                    continue
                stalled = 0
                kind = message[0]
                if kind == "done":
                    self._on_done(
                        message[1], message[2], message[3], message[4]
                    )
                elif kind == "error":
                    self._busy.pop(message[1], None)
                    if message[2] != self._epoch:
                        continue  # failure of an already-aborted batch
                    raise RuntimeError(
                        f"server worker {message[1]} failed on chunk "
                        f"{message[3]}:\n{message[4]}"
                    )
                elif kind == "primed":
                    self._on_primed(message[1], message[2], message[3])
            obs.count("serve.pages", len(self._slots))
            results: List[List[Any]] = []
            for slot in self._slots:
                assert slot is not None  # every chunk completed exactly once
                results.append(slot)
            self._slots = []
            self._chunks = []
            return results
