"""Compiled wrappers and the batch serving path.

At production scale the dominant cost is *applying* a wrapper to a fresh
page, not inducing it — yet the interpreted path re-walks the general
induction code on every page: each :class:`~repro.core.wrapper
.SectionWrapper` runs its own full-DOM ``pref.find`` traversal, boundary
markers are matched by linear text scans over the content lines, every
span lookup re-walks a subtree, and the monitoring loop renders each
served page a second time just to score it.

:func:`compile_wrapper` precompiles one engine's quaternions
⟨pref, seps, LBMs, RBMs⟩ into specialized matchers:

- a **tagpath automaton** (:class:`TagPathAutomaton`) — a trie over the
  merged paths of every schema *and* family, run with a single pruned
  DOM traversal that locates the candidate subtrees of all prefs at
  once.  Position slack is carried as per-entry state on the walk (an
  exact-match flag per alive entry) instead of a second relaxed
  traversal, so the exact and slack candidate sets come out of one pass
  in the same document order ``MergedTagPath.find`` produces;
- a **page index** (:class:`PageIndex`) — one post-order walk folds
  every element's line span (replacing per-call subtree walks), line
  text keys are interned to ints (:data:`~repro.perf.fingerprints
  .TEXT_INTERNER`) with per-key occurrence tables so boundary-marker
  scans become bisects, and per-line attribute sets become interned
  :data:`~repro.perf.fingerprints.ATTR_INTERNER` masks.  The index is
  built once per page and shared by every wrapper applied to it;
- a **shared render** — :meth:`CompiledWrapper.serve` computes each
  schema's application once and assembles *both* the extraction (the
  families-first / dedup pipeline of ``EngineWrapper.extract``) and the
  wrapper health (:func:`repro.core.verify.health_from_applications`)
  from those shared results.  The interpreted monitoring loop costs two
  renders and two application sweeps per served page; the compiled loop
  costs one of each.

Everything stays bit-identical to the interpreted path — the automaton
reproduces ``find``'s candidate order, the index reproduces every span
and marker decision, and the corpus-wide property tests plus the CI
serve job enforce byte-identical extraction JSON on every testbed page
(see ``benchmarks/bench_serve.py`` → ``BENCH_serve.json`` for the
measured pages/sec trajectory).

Interned ids are only meaningful within one interner generation; a
compiled wrapper snapshots the generation at compile time and re-interns
its marker tables when :func:`repro.perf.clear_kernel_caches` has run in
between.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.core.dse import clean_page_lines
from repro.core.model import (
    PageExtraction,
    SectionInstance,
    section_to_extracted,
)
from repro.core.verify import WrapperHealth, health_from_applications
from repro.core.wrapper import (
    POSITION_SLACK,
    EngineWrapper,
    SectionWrapper,
    _dedup_instances,
    partition_subtree_records,
)
from repro.features.blocks import Block
from repro.htmlmod.dom import Document, Element, Node
from repro.htmlmod.parser import parse_html
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.perf.fingerprints import ATTR_INTERNER, TEXT_INTERNER, AttrMask
from repro.render.layout import render_page
from repro.render.lines import RenderedPage
from repro.tagpath.paths import MergedTagPath

#: automaton constraint codes (S counts are >= 0, so negatives are free)
_FLEX = -1  # flexible level: any element child with the right tag
_ABSENT = -2  # the entry's path does not run through this trie node

#: span-cache sentinel distinguishing "not computed" from "no lines"
_UNKNOWN_SPAN: Any = object()


# ---------------------------------------------------------------------------
# Per-page index: spans, interned line keys, marker occurrence tables
# ---------------------------------------------------------------------------


def _dom_span(
    root: Element, leaf_line: Dict[int, int]
) -> Optional[Tuple[int, int]]:
    """``page.line_range_of_element`` in two early-exit leaf searches.

    Rendering walks the DOM pre-order, so rendered-leaf line numbers are
    non-decreasing in document order: the element's span is the line of
    its *first* rendered leaf and the line of its *last* one — found by
    a forward and a backward pre-order scan that each stop at the first
    mapped node — instead of a min/max over the whole subtree.  An
    element that is itself a rendered leaf precedes its descendants in
    document order, so it bounds ``lo`` but never ``hi``.
    """
    lo: Optional[int] = None
    stack: List[Node] = [root]
    while stack:
        node = stack.pop()
        found = leaf_line.get(id(node))
        if found is not None:
            lo = found
            break
        if isinstance(node, Element):
            stack.extend(reversed(node.children))
    if lo is None:
        return None
    hi: Optional[int] = None
    back: List[Tuple[Node, bool]] = [(root, False)]
    while back:
        node, expanded = back.pop()
        if not expanded and isinstance(node, Element) and node.children:
            back.append((node, True))  # the element itself, after its subtree
            back.extend((child, False) for child in node.children)
            continue
        found = leaf_line.get(id(node))
        if found is not None:
            hi = found
            break
    assert hi is not None  # the forward scan found a rendered leaf
    return (lo, hi)


class PageIndex:
    """One page's precomputed lookup structures, shared by all wrappers.

    - ``span_of`` — element -> line span, folded lazily per queried
      subtree: one post-order walk of the candidate fills the spans of
      every element under it, so the automaton's handful of candidates
      cost far less than an eager whole-page fold;
    - ``key_ids`` — per line, the interned id of the §5.7 marker text key
      (``line.cleaned or line.text.lower()``);
    - occurrence tables — per text key, the sorted line numbers where it
      appears, so "first marker in [lo, hi]" is a bisect;
    - ``attr_mask`` — a line's interned attribute bitmask (mask equality
      is frozenset equality within one interner generation).  Masks are
      interned lazily per queried line: scoring only ever consults the
      two edge lines of a candidate span, so eagerly masking every
      content line would cost more than the whole lookup saves.
    """

    __slots__ = (
        "page",
        "text_generation",
        "attr_generation",
        "key_ids",
        "_attr_masks",
        "_spans",
        "_occurrences",
    )

    def __init__(self, page: RenderedPage) -> None:
        self.page = page
        self.text_generation = TEXT_INTERNER.generation
        self.attr_generation = ATTR_INTERNER.generation
        intern = TEXT_INTERNER.intern
        key_ids = [intern(line.cleaned or line.text.lower()) for line in page.lines]
        occurrences: Dict[int, List[int]] = {}
        for number, key_id in enumerate(key_ids):
            table = occurrences.get(key_id)
            if table is None:
                occurrences[key_id] = [number]
            else:
                table.append(number)
        self.key_ids: Tuple[int, ...] = tuple(key_ids)
        self._attr_masks: Dict[int, AttrMask] = {}
        self._occurrences = occurrences
        self._spans: Dict[int, Optional[Tuple[int, int]]] = {}

    def span_of(self, element: Element) -> Optional[Tuple[int, int]]:
        """Cached ``page.line_range_of_element`` replacement (lazy).

        Misses run :func:`_dom_span`'s two early-exit leaf searches —
        typically a few nodes each — rather than walking the subtree.
        """
        spans = self._spans
        key = id(element)
        found = spans.get(key, _UNKNOWN_SPAN)
        if found is _UNKNOWN_SPAN:
            found = spans[key] = _dom_span(element, self.page.leaf_line_map())
        return found

    def attr_mask(self, number: int) -> AttrMask:
        """The interned attribute mask of line ``number`` (lazy, cached)."""
        found = self._attr_masks.get(number)
        if found is None:
            found = self._attr_masks[number] = ATTR_INTERNER.mask(
                self.page.lines[number].attrs
            )
        return found

    def first_occurrence(
        self, text_ids: Sequence[int], lo: int, hi: int
    ) -> Optional[int]:
        """The first line in ``[lo, hi]`` whose key is one of ``text_ids``.

        Equivalent to the interpreted path's linear scan testing each
        line against a marker text set, in O(k log n) for k marker texts.
        """
        best = -1
        occurrences = self._occurrences
        for text_id in text_ids:
            table = occurrences.get(text_id)
            if not table:
                continue
            position = bisect_left(table, lo)
            if position < len(table):
                number = table[position]
                if number <= hi and (best < 0 or number < best):
                    best = number
                    hi = number  # later ids must strictly beat this line
        return best if best >= 0 else None


def build_page_index(
    markup_or_document: Union[str, Document],
    query: str = "",
    obs: ObserverLike = NULL_OBSERVER,
) -> PageIndex:
    """Parse, render, clean and index one result page (the shared render).

    The rendering steps are exactly ``EngineWrapper.extract``'s (same
    span name, same cleaning), so every downstream decision sees the
    same content lines the interpreted path sees.
    """
    with obs.span("render"):
        if isinstance(markup_or_document, Document):
            document = markup_or_document
        else:
            document = parse_html(markup_or_document)
        page = render_page(document)
        clean_page_lines(page, query.split())
        obs.count("render.lines", len(page.lines))
        return PageIndex(page)


# ---------------------------------------------------------------------------
# The merged tagpath automaton
# ---------------------------------------------------------------------------


class _TrieNode:
    """One level of the merged-path trie (depth = tags consumed)."""

    __slots__ = ("depth", "children", "constraints", "entry_ids", "terminals")

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.children: Dict[str, "_TrieNode"] = {}
        #: entry id -> required S count to *enter* this node (or _FLEX)
        self.constraints: Dict[int, int] = {}
        #: entries whose path runs through this node, in add order
        self.entry_ids: List[int] = []
        #: entries whose pref ends exactly here
        self.terminals: List[int] = []


class TagPathAutomaton:
    """All merged tag paths of one engine, run in a single DOM traversal.

    Each DOM element can match at most one trie node (its ancestor tag
    sequence determines the path), so one pre-order walk carrying the
    set of still-alive entries — each with an "exact so far" flag — finds
    every pref's candidates.  Slack is per entry: a fixed level passes
    within ``±slack`` S steps and clears the exact flag unless the count
    matches exactly, which is precisely the two-pass semantics of
    ``find(root, 0)`` + ``find(root, slack)`` folded into one walk.  The
    traversal prunes: subtrees where no entry remains alive are never
    visited.

    Candidate order: all of an entry's terminals sit at one depth, and a
    pre-order walk visits same-depth nodes in document order — the order
    ``MergedTagPath.find``'s level-synchronous BFS emits.
    """

    __slots__ = ("_root", "_slacks", "_lengths")

    def __init__(self) -> None:
        self._root = _TrieNode(0)
        self._slacks: List[int] = []
        self._lengths: List[int] = []

    def __len__(self) -> int:
        return len(self._slacks)

    def add(self, pref: MergedTagPath, slack: int) -> int:
        """Register one merged path; returns its entry id."""
        entry = len(self._slacks)
        self._slacks.append(slack)
        self._lengths.append(len(pref.tags))
        node = self._root
        for level, tag in enumerate(pref.tags):
            nxt = node.children.get(tag)
            if nxt is None:
                nxt = node.children[tag] = _TrieNode(node.depth + 1)
            fixed = pref.fixed_counts[level]
            nxt.constraints[entry] = _FLEX if fixed is None else fixed
            nxt.entry_ids.append(entry)
            node = nxt
        node.terminals.append(entry)
        return entry

    def run(
        self, root: Element
    ) -> List[Tuple[List[Element], List[Element]]]:
        """Per entry: ``(find(pref, 0), find(pref, slack))`` candidates."""
        results: List[Tuple[List[Element], List[Element]]] = [
            ([], []) for _ in self._slacks
        ]
        start = self._root.children.get(root.tag)
        if start is None:
            return results
        # Level 0 matches on the root tag alone — find() ignores the
        # fixed count (and slack) of the first level.
        lengths = self._lengths
        slacks = self._slacks
        for entry in start.terminals:
            results[entry][0].append(root)
            results[entry][1].append(root)
        alive = tuple(
            (entry, True) for entry in start.entry_ids if lengths[entry] > 1
        )
        if not alive:
            return results
        stack: List[
            Tuple[Element, _TrieNode, Tuple[Tuple[int, bool], ...]]
        ] = [(root, start, alive)]
        while stack:
            element, node, alive = stack.pop()
            children = node.children
            pending: List[
                Tuple[Element, _TrieNode, Tuple[Tuple[int, bool], ...]]
            ] = []
            index = 0
            for child in element.children:
                if not isinstance(child, Element):
                    continue
                nxt = children.get(child.tag)
                if nxt is not None:
                    survivors: List[Tuple[int, bool]] = []
                    for entry, exact in alive:
                        fixed = nxt.constraints.get(entry, _ABSENT)
                        if fixed == _ABSENT:
                            continue
                        if fixed == _FLEX:
                            survivors.append((entry, exact))
                        else:
                            delta = index - fixed
                            if delta < 0:
                                delta = -delta
                            if delta <= slacks[entry]:
                                survivors.append((entry, exact and delta == 0))
                    if survivors:
                        if nxt.terminals:
                            depth = nxt.depth
                            for entry, exact in survivors:
                                if lengths[entry] == depth:
                                    results[entry][1].append(child)
                                    if exact:
                                        results[entry][0].append(child)
                        deeper = tuple(
                            item
                            for item in survivors
                            if lengths[item[0]] > nxt.depth
                        )
                        if deeper:
                            pending.append((child, nxt, deeper))
                index += 1
            for item in reversed(pending):
                stack.append(item)
        return results


# ---------------------------------------------------------------------------
# Compiled wrappers
# ---------------------------------------------------------------------------


class CompiledSectionWrapper:
    """One section wrapper with precompiled marker lookup tables.

    ``apply`` mirrors :func:`repro.core.wrapper.apply_section_wrapper`
    decision for decision — candidate scoring, the ambiguity bail-out,
    record partitioning, marker bounding and the final score formula —
    but every span lookup hits the page index, and every marker match is
    an int-set membership or a bisect over occurrence tables.
    """

    __slots__ = (
        "wrapper",
        "lbm_ids",
        "rbm_ids",
        "lbm_id_set",
        "rbm_id_set",
        "lbm_mask",
        "rbm_mask",
    )

    def __init__(self, wrapper: SectionWrapper) -> None:
        self.wrapper = wrapper
        self.lbm_ids: Tuple[int, ...] = ()
        self.rbm_ids: Tuple[int, ...] = ()
        self.lbm_id_set: FrozenSet[int] = frozenset()
        self.rbm_id_set: FrozenSet[int] = frozenset()
        self.lbm_mask: Optional[AttrMask] = None
        self.rbm_mask: Optional[AttrMask] = None
        self.refresh()

    def refresh(self) -> None:
        """(Re-)intern the marker tables under the current generation."""
        intern = TEXT_INTERNER.intern
        wrapper = self.wrapper
        self.lbm_ids = tuple(
            intern(text) for text in sorted(wrapper.lbm_texts)
        )
        self.rbm_ids = tuple(
            intern(text) for text in sorted(wrapper.rbm_texts)
        )
        self.lbm_id_set = frozenset(self.lbm_ids)
        self.rbm_id_set = frozenset(self.rbm_ids)
        self.lbm_mask = (
            ATTR_INTERNER.mask(wrapper.lbm_attrs) if wrapper.lbm_attrs else None
        )
        self.rbm_mask = (
            ATTR_INTERNER.mask(wrapper.rbm_attrs) if wrapper.rbm_attrs else None
        )

    def apply(
        self,
        index: PageIndex,
        exact: Sequence[Element],
        slacked: Sequence[Element],
    ) -> Optional[SectionInstance]:
        """Compiled twin of ``apply_section_wrapper`` (bit-identical)."""
        candidates = exact if exact else slacked
        if not candidates:
            return None
        wrapper = self.wrapper
        best: Optional[Element] = None
        best_key: Optional[Tuple[float, int]] = None
        for position, subtree in enumerate(candidates):
            key = (self._score(index, subtree), -position)
            if best_key is None or key > best_key:
                best_key = key
                best = subtree
        assert best is not None and best_key is not None
        best_score = best_key[0]
        if len(candidates) > 1 and best_score <= 0.0:
            # Multiple positions fit the path but none shows the schema's
            # boundary markers: extracting would be guessing.
            return None

        page = index.page
        records = partition_subtree_records(
            page, best, wrapper.separator, span_of=index.span_of
        )
        span = index.span_of(best)
        if span is None:
            return None
        records, lbm, rbm, marker_hits = self._bound(index, records, span)
        if not records:
            return None
        return SectionInstance(
            page=page,
            block=Block(page, records[0].start, records[-1].end),
            records=records,
            lbm=lbm,
            rbm=rbm,
            origin=f"wrapper:{wrapper.schema_id}",
            # Verified marker hits dominate the pre-bounding candidate
            # score, exactly as in the interpreted path.
            score=(
                float(marker_hits)
                if marker_hits
                else max(best_score, 0.0) * 0.5
            ),
        )

    def _score(self, index: PageIndex, subtree: Element) -> float:
        """Compiled ``_candidate_score``: marker agreement at the edges."""
        span = index.span_of(subtree)
        if span is None:
            return float("-inf")
        start, end = span
        score = 0.0
        if start - 1 >= 0 and self.lbm_ids:
            if index.key_ids[start - 1] in self.lbm_id_set:
                score += 1.0
            elif (
                self.lbm_mask is not None
                and index.attr_mask(start - 1) == self.lbm_mask
            ):
                score += 0.5
        if end + 1 < len(index.page.lines) and self.rbm_ids:
            if index.key_ids[end + 1] in self.rbm_id_set:
                score += 1.0
            elif (
                self.rbm_mask is not None
                and index.attr_mask(end + 1) == self.rbm_mask
            ):
                score += 0.5
        return score

    def _bound(
        self,
        index: PageIndex,
        records: List[Block],
        span: Tuple[int, int],
    ) -> Tuple[List[Block], Optional[int], Optional[int], int]:
        """Compiled ``_bound_by_markers``: first-occurrence bisects."""
        start, end = span
        page = index.page
        lbm: Optional[int] = start - 1 if start - 1 >= 0 else None
        rbm: Optional[int] = end + 1 if end + 1 < len(page.lines) else None
        hits = 0
        if self.lbm_ids:
            number = index.first_occurrence(
                self.lbm_ids, max(0, start - 1), end
            )
            if number is not None:
                lbm = number
                records = [r for r in records if r.start > number]
                hits += 1
        if self.rbm_ids and records:
            # The first marker occurrence after the section's first record
            # bounds it on the right, as in the interpreted scan.
            number = index.first_occurrence(
                self.rbm_ids,
                records[0].start + 1,
                min(len(page.lines), end + 2) - 1,
            )
            if number is not None:
                rbm = number
                records = [r for r in records if r.end < number]
                hits += 1
        return records, lbm, rbm, hits


@dataclass
class PageApplications:
    """One page's shared per-schema application results.

    ``family_sections`` mirrors the families pass of
    ``EngineWrapper.extract``; ``wrapper_instances`` is aligned with
    ``engine.wrappers`` (every wrapper applied individually — the shape
    :func:`repro.core.verify.health_from_applications` scores).  The
    extraction and the health of one served page are both assembled from
    this one object, so serving with monitoring renders and applies once.
    """

    family_sections: List[Tuple[str, SectionInstance]]
    wrapper_instances: List[Optional[SectionInstance]]


@dataclass(frozen=True)
class ServedPage:
    """One served page: its extraction plus the wrapper health behind it."""

    extraction: PageExtraction
    health: WrapperHealth


class CompiledWrapper:
    """A compiled :class:`~repro.core.wrapper.EngineWrapper`.

    Holds the merged tagpath automaton over every family and schema pref
    plus per-schema compiled marker tables; ``extract`` is bit-identical
    to ``EngineWrapper.extract`` and ``serve`` additionally returns the
    page's :class:`~repro.core.verify.WrapperHealth` from the same shared
    application results.
    """

    __slots__ = (
        "engine",
        "_automaton",
        "_family_entries",
        "_wrapper_entries",
        "_sections",
        "_text_generation",
        "_attr_generation",
    )

    def __init__(self, engine: EngineWrapper) -> None:
        self.engine = engine
        self._automaton = TagPathAutomaton()
        # Families search with slack 0; a family subclass without a pref
        # (entry None) falls back to locating its own candidates.
        self._family_entries: List[Optional[int]] = []
        for family in engine.families:
            pref = getattr(family, "pref", None)
            self._family_entries.append(
                self._automaton.add(pref, 0)
                if isinstance(pref, MergedTagPath)
                else None
            )
        self._wrapper_entries: List[int] = [
            self._automaton.add(wrapper.pref, POSITION_SLACK)
            for wrapper in engine.wrappers
        ]
        self._sections: List[CompiledSectionWrapper] = [
            CompiledSectionWrapper(wrapper) for wrapper in engine.wrappers
        ]
        self._text_generation = TEXT_INTERNER.generation
        self._attr_generation = ATTR_INTERNER.generation

    def __repr__(self) -> str:
        return (
            f"CompiledWrapper(schemas={len(self._sections)}, "
            f"families={len(self._family_entries)}, "
            f"automaton={len(self._automaton)} entries)"
        )

    def _ensure_fresh(self) -> None:
        """Re-intern marker tables after a kernel-cache clear."""
        if (
            TEXT_INTERNER.generation != self._text_generation
            or ATTR_INTERNER.generation != self._attr_generation
        ):
            for section in self._sections:
                section.refresh()
            self._text_generation = TEXT_INTERNER.generation
            self._attr_generation = ATTR_INTERNER.generation

    # -- application ------------------------------------------------------
    def apply_to_index(
        self, index: PageIndex, obs: ObserverLike = NULL_OBSERVER
    ) -> PageApplications:
        """Apply every family and schema to one indexed page, once."""
        self._ensure_fresh()
        if (
            index.text_generation != TEXT_INTERNER.generation
            or index.attr_generation != ATTR_INTERNER.generation
        ):
            raise ValueError(
                "stale PageIndex: the interners were cleared after this "
                "page was indexed; re-render the page"
            )
        page = index.page
        located = self._automaton.run(page.document.root)

        family_sections: List[Tuple[str, SectionInstance]] = []
        for family, entry in zip(self.engine.families, self._family_entries):
            if entry is None:
                family_sections.extend(
                    family.apply(page, span_of=index.span_of)
                )
            else:
                # slack 0: the exact and slack candidate lists coincide.
                family_sections.extend(
                    family.apply(
                        page,
                        candidates=located[entry][0],
                        span_of=index.span_of,
                    )
                )
        obs.count("serve.family_sections", len(family_sections))

        wrapper_instances: List[Optional[SectionInstance]] = []
        for section, entry in zip(self._sections, self._wrapper_entries):
            exact, slacked = located[entry]
            wrapper_instances.append(section.apply(index, exact, slacked))
        obs.count("serve.wrappers_applied", len(wrapper_instances))
        return PageApplications(family_sections, wrapper_instances)

    def _assemble(self, applications: PageApplications) -> PageExtraction:
        """``EngineWrapper.extract``'s assembly over shared applications."""
        instances: List[Tuple[str, SectionInstance]] = []
        found_by_family: Set[str] = set()
        for schema_id, instance in applications.family_sections:
            instances.append((schema_id, instance))
            found_by_family.add(schema_id)
        for wrapper, instance in zip(
            self.engine.wrappers, applications.wrapper_instances
        ):
            if wrapper.schema_id in found_by_family:
                continue  # the family already located this schema
            if instance is not None:
                instances.append((wrapper.schema_id, instance))
        deduped = _dedup_instances(instances)
        deduped.sort(key=lambda item: item[1].start)
        return PageExtraction(
            sections=tuple(
                section_to_extracted(instance, schema_id)
                for schema_id, instance in deduped
            )
        )

    def extract_index(
        self, index: PageIndex, obs: ObserverLike = NULL_OBSERVER
    ) -> PageExtraction:
        """Extraction from an already-indexed page."""
        with obs.span("apply"):
            extraction = self._assemble(self.apply_to_index(index, obs=obs))
            obs.count("serve.sections", len(extraction.sections))
        return extraction

    def extract(
        self,
        markup_or_document: Union[str, Document],
        query: str = "",
        obs: ObserverLike = NULL_OBSERVER,
    ) -> PageExtraction:
        """Bit-identical twin of :meth:`EngineWrapper.extract`."""
        index = build_page_index(markup_or_document, query, obs=obs)
        return self.extract_index(index, obs=obs)

    def serve_index(
        self, index: PageIndex, obs: ObserverLike = NULL_OBSERVER
    ) -> ServedPage:
        """Extraction + health for one indexed page, from one apply pass."""
        with obs.span("apply"):
            applications = self.apply_to_index(index, obs=obs)
            extraction = self._assemble(applications)
            obs.count("serve.sections", len(extraction.sections))
        health = health_from_applications(
            self.engine, applications.wrapper_instances, obs=obs
        )
        return ServedPage(extraction=extraction, health=health)

    def serve(
        self,
        markup_or_document: Union[str, Document],
        query: str = "",
        obs: ObserverLike = NULL_OBSERVER,
    ) -> ServedPage:
        """One shared render serving extraction *and* monitoring health.

        The interpreted equivalent is ``engine.extract(page, query)``
        followed by ``check_wrapper(engine, page, query)`` — two parses,
        two renders and two application sweeps.  The health returned here
        is bit-identical to that ``check_wrapper`` call.
        """
        index = build_page_index(markup_or_document, query, obs=obs)
        return self.serve_index(index, obs=obs)


def compile_wrapper(engine: EngineWrapper) -> CompiledWrapper:
    """Compile an engine wrapper for the serving hot path."""
    return CompiledWrapper(engine)


# ---------------------------------------------------------------------------
# Batch serving
# ---------------------------------------------------------------------------


def extract_many(
    pages: Sequence[Tuple[str, str]],
    wrappers: Sequence[Union[EngineWrapper, CompiledWrapper]],
    jobs: int = 1,
    wrapper_of: Optional[Sequence[int]] = None,
    obs: ObserverLike = NULL_OBSERVER,
    chunksize: Optional[int] = None,
) -> List[List[PageExtraction]]:
    """Batch extraction: render each page once, apply many wrappers.

    ``pages`` is a sequence of ``(markup, query)`` pairs; ``wrappers``
    may mix plain and compiled engine wrappers (plain ones are compiled
    once up front).  By default every wrapper is applied to every page;
    ``wrapper_of`` (one wrapper index per page) restricts each page to
    its own wrapper — the shape of a multi-engine serving fleet.  Returns
    one list of :class:`PageExtraction` per page, aligned with the
    applied wrapper order; results are deterministic and independent of
    ``jobs`` (asserted corpus-wide in the serve tests).

    ``jobs <= 1`` (or a single page) runs the in-process loop and never
    touches ``multiprocessing``.  Larger ``jobs`` delegate to a
    temporary :class:`repro.perf.server.Server` — a compatibility shim
    for one-shot callers.  The pool is torn down on return, so its
    workers start cold; a caller serving repeated batches should hold a
    ``Server`` (with priming pages) open instead.
    """
    if wrapper_of is not None and len(wrapper_of) != len(pages):
        raise ValueError("wrapper_of must assign one wrapper per page")
    if wrapper_of is not None:
        for wrapper_id in wrapper_of:
            if not 0 <= wrapper_id < len(wrappers):
                raise ValueError(f"wrapper_of index {wrapper_id} out of range")

    with obs.span("extract_many"):
        if jobs <= 1 or len(pages) <= 1:
            if wrapper_of is None:
                everyone = tuple(range(len(wrappers)))
                assignments: List[Tuple[int, ...]] = [everyone] * len(pages)
            else:
                assignments = [(wrapper_id,) for wrapper_id in wrapper_of]
            compiled = [
                wrapper
                if isinstance(wrapper, CompiledWrapper)
                else CompiledWrapper(wrapper)
                for wrapper in wrappers
            ]
            serial: List[List[PageExtraction]] = []
            for (markup, query), wrapper_ids in zip(pages, assignments):
                index = build_page_index(markup, query, obs=obs)
                serial.append(
                    [
                        compiled[wrapper_id].extract_index(index, obs=obs)
                        for wrapper_id in wrapper_ids
                    ]
                )
            obs.count("serve.pages", len(serial))
            return serial

        # Imported here: repro.perf.server imports this module.
        from repro.perf.server import Server

        with Server(
            wrappers,
            jobs=min(jobs, len(pages)),
            chunksize=chunksize,
            obs=obs,
        ) as server:
            return server.extract(pages, wrapper_of=wrapper_of)
