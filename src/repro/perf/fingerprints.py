"""Compact per-block feature fingerprints (the perf layer's data side).

The distance kernels of §4 compare the same block features over and over
— type-code sequences, left contours, per-line text-attribute sets and
tag forests.  A :class:`BlockFingerprint` computes each feature *once*
per block and reduces it to small interned immutable values:

- per-line **attribute sets** become integer bitmasks (one bit per
  distinct :class:`~repro.render.styles.TextAttr` seen in the process),
  so ``Dtal`` (Formula 2) is an AND + popcount instead of frozenset
  intersection — with arithmetic identical to the reference;
- **type-code and shape tuples** are interned, so equality checks hit
  the ``is`` fast path and equal blocks share one object;
- **tag forests** become flattened post-order signatures
  (:func:`repro.algorithms.tree_edit.tree_signature`), the keys of the
  tree/forest memos in :mod:`repro.perf.kernels`.

Fingerprints are cached on the block (``Block._fp``), and the interners
are process-wide: the distinct-value populations (text attributes, type
codes, tag structures) are tiny compared to the number of comparisons.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.algorithms.tree_edit import OrderedTree, TreeSignature, tree_signature
from repro.htmlmod.dom import Element
from repro.render.styles import TextAttr

if TYPE_CHECKING:
    from repro.features.blocks import Block

#: an interned immutable value (type codes, shapes, forest signatures)
Interned = Tuple[Any, ...]

try:  # Python >= 3.10
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(value: int) -> int:
        return bin(value).count("1")


#: (bitmask, set size) — the compact form of one line's attribute set
AttrMask = Tuple[int, int]


class AttrInterner:
    """Process-wide ``TextAttr -> bit`` registry with a frozenset memo.

    ``mask(attrs)`` maps an attribute frozenset to its ``(bitmask,
    size)`` pair; each distinct frozenset is converted exactly once.
    """

    __slots__ = ("_bits", "_masks", "hits", "misses", "generation")

    def __init__(self) -> None:
        self._bits: Dict[TextAttr, int] = {}
        self._masks: Dict[FrozenSet[TextAttr], AttrMask] = {}
        self.hits = 0
        self.misses = 0
        #: bumped on every clear() — masks from different generations use
        #: different bit assignments and must never be compared (compiled
        #: wrappers re-derive theirs when the generation moves)
        self.generation = 0

    def mask(self, attrs: FrozenSet[TextAttr]) -> AttrMask:
        found = self._masks.get(attrs)
        if found is None:
            self.misses += 1
            bits = self._bits
            mask = 0
            for attr in attrs:
                bit = bits.get(attr)
                if bit is None:
                    bit = bits[attr] = len(bits)
                mask |= 1 << bit
            found = self._masks[attrs] = (mask, len(attrs))
        else:
            self.hits += 1
        return found

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "entries": len(self._masks),
            "bits": len(self._bits),
        }

    def clear(self) -> None:
        self._bits.clear()
        self._masks.clear()
        self.hits = 0
        self.misses = 0
        self.generation += 1


class TextInterner:
    """Process-wide ``str -> int`` registry for content-line text keys.

    The serving path matches boundary-marker texts against cleaned line
    texts millions of times; interning both sides turns every comparison
    into small-int equality and lets per-page occurrence tables key on
    ints.  Ids are only meaningful within one ``generation`` — a compiled
    wrapper holding ids from before a :func:`clear` re-interns them.
    """

    __slots__ = ("_ids", "hits", "misses", "generation")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        #: bumped on every clear() — stale-id guard for compiled wrappers
        self.generation = 0

    def intern(self, text: str) -> int:
        found = self._ids.get(text)
        if found is None:
            self.misses += 1
            found = self._ids[text] = len(self._ids)
        else:
            self.hits += 1
        return found

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "entries": len(self._ids),
            "generation": self.generation,
        }

    def __len__(self) -> int:
        return len(self._ids)

    def clear(self) -> None:
        self._ids.clear()
        self.hits = 0
        self.misses = 0
        self.generation += 1


class TupleInterner:
    """Canonicalize equal tuples to one shared object.

    Interned values make equality checks identity checks (``is``), and
    let the pair memos key on object identity-stable tuples.
    """

    __slots__ = ("_seen",)

    def __init__(self) -> None:
        self._seen: Dict[Interned, Interned] = {}

    def intern(self, value: Interned) -> Interned:
        return self._seen.setdefault(value, value)

    def __len__(self) -> int:
        return len(self._seen)

    def clear(self) -> None:
        self._seen.clear()


#: process-wide interners; cleared by repro.perf.clear_kernel_caches()
ATTR_INTERNER = AttrInterner()
TUPLE_INTERNER = TupleInterner()
TEXT_INTERNER = TextInterner()


def masked_attr_distance(mask1: AttrMask, mask2: AttrMask) -> float:
    """Dtal (Formula 2) over bitmasks — exact, popcount-based.

    ``1 - |la1 & la2| / max(|la1|, |la2|)`` with the intersection size
    computed as ``popcount(m1 & m2)``; both operands are the same
    integers the frozenset reference uses, so the float result is
    bit-identical to :func:`repro.features.line_distance.text_attr_distance`.
    """
    size1 = mask1[1]
    size2 = mask2[1]
    larger = size1 if size1 >= size2 else size2
    if larger == 0:
        return 0.0
    return 1.0 - _popcount(mask1[0] & mask2[0]) / larger


class BlockFingerprint:
    """Immutable compact signature of one block's §4.2 features."""

    __slots__ = (
        "type_codes", "shape", "position", "attr_masks", "forest_sig", "_hash"
    )

    def __init__(
        self,
        type_codes: Interned,
        shape: Interned,
        position: int,
        attr_masks: Tuple[AttrMask, ...],
        forest_sig: Interned,
    ) -> None:
        self.type_codes = type_codes
        self.shape = shape
        self.position = position
        self.attr_masks = attr_masks
        self.forest_sig = forest_sig
        self._hash: Optional[int] = None

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, BlockFingerprint):
            return NotImplemented
        # Interned fields compare by identity first (tuple __eq__ already
        # short-circuits on identical objects).
        return (
            self.position == other.position
            and self.type_codes == other.type_codes
            and self.shape == other.shape
            and self.attr_masks == other.attr_masks
            and self.forest_sig == other.forest_sig
        )

    def __hash__(self) -> int:
        # Cached: fingerprints key the process-wide record-distance memo,
        # where re-hashing the (potentially large) forest signature on
        # every lookup would eat the memoization win.
        found = self._hash
        if found is None:
            found = self._hash = hash(
                (self.type_codes, self.shape, self.position, self.attr_masks,
                 self.forest_sig)
            )
        return found

    def __repr__(self) -> str:
        return (
            f"BlockFingerprint(lines={len(self.type_codes)}, "
            f"trees={len(self.forest_sig)}, position={self.position})"
        )


def interned_forest_signature(forest: Iterable[OrderedTree]) -> Interned:
    """Forest signature with every level interned (identity-stable)."""
    intern = TUPLE_INTERNER.intern
    return intern(tuple(intern(tree_signature(tree)) for tree in forest))


def element_tree_signature(element: Element) -> TreeSignature:
    """The :func:`~repro.algorithms.tree_edit.tree_signature` of an
    element's tag tree, computed directly off the DOM.

    Equal to ``tree_signature(OrderedTree.from_tuple(element.tag_signature()))``
    but in a single subtree walk instead of three (signature-tuple build,
    tree build, post-order annotation) — the fingerprint hot path only
    needs the signature; the :class:`OrderedTree` form stays lazy on the
    block for the rare distance-memo miss.
    """
    for child in element.children:
        if isinstance(child, Element):
            break
    else:
        # The common case on record forests: a childless tag is its own
        # post-order, leftmost leaf 0.
        return ((element.tag, 0),)
    labels: List[str] = []
    lml: List[int] = []

    def visit(node: Element) -> int:
        my_lml = -1
        for child in node.children:
            if isinstance(child, Element):
                child_lml = visit(child)
                if my_lml < 0:
                    my_lml = child_lml  # parent shares the first child's lml
        if my_lml < 0:
            my_lml = len(labels)  # a leaf is its own leftmost leaf
        labels.append(node.tag)
        lml.append(my_lml)
        return my_lml

    visit(element)
    return tuple(zip(labels, lml))


def interned_element_forest_signature(forest: Iterable[Element]) -> Interned:
    """Like :func:`interned_forest_signature`, straight off the DOM forest."""
    intern = TUPLE_INTERNER.intern
    return intern(
        tuple(intern(element_tree_signature(element)) for element in forest)
    )


def block_fingerprint(block: "Block") -> BlockFingerprint:
    """The (cached) fingerprint of a :class:`repro.features.blocks.Block`.

    The three line-feature tuples are read in one pass over one slice of
    the page's lines — value-identical to the block's ``type_codes`` /
    ``shape`` / ``text_attrs`` properties, which each re-slice.
    """
    fp = block._fp
    if fp is None:
        lines = block.page.lines[block.start : block.end + 1]
        base = lines[0].position
        mask = ATTR_INTERNER.mask
        intern = TUPLE_INTERNER.intern
        fp = block._fp = BlockFingerprint(  # lint: allow PUR01 -- idempotent fill of the block's own cache slot
            type_codes=intern(tuple(line.line_type for line in lines)),
            shape=intern(tuple(line.position - base for line in lines)),
            position=base,
            attr_masks=intern(tuple(mask(line.attrs) for line in lines)),
            forest_sig=interned_element_forest_signature(block.span_elements()),
        )
    return fp
