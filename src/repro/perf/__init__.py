"""Hot-kernel optimisation layer: fingerprints, memoized kernels, serving.

The distance kernels of §4 — Zhang–Shasha tree edit (Dtf), generalized
Levenshtein (Dbt/Dbs/Dbta) and the O(n²) cohesion sums of Formulas 5–7 —
dominate wrapper-induction time (see the ``BENCH_stages.json``
trajectory).  This package attacks them from the data side and the
compute side while keeping every result bit-identical to the reference
implementations:

- :mod:`repro.perf.fingerprints` — per-block compact signatures:
  attribute-set bitmasks (Dtal by popcount), interned feature tuples,
  flattened post-order tag-forest signatures, plus the process-wide
  text interner the serving path keys its marker tables on;
- :mod:`repro.perf.kernels` — process-wide tree/forest distance memos
  keyed on those signatures, with hit/miss statistics surfaced as
  ``perf.*`` observability gauges;
- :mod:`repro.perf.serve` — the *extraction* hot path: compiled engine
  wrappers (one merged tagpath automaton per engine, precompiled marker
  tables), the shared per-page line/span index, and the batch
  ``extract_many`` entry point behind ``python -m repro serve``;
- :mod:`repro.perf.server` — the warm persistent worker pool:
  :class:`~repro.perf.server.Server` spawns compiled-serving workers
  once, primes their per-process memos over representative pages, and
  amortizes IPC with auto-sized task chunks across repeated batches.

See the "Performance" section of DESIGN.md for how the layers fit, and
``benchmarks/bench_kernels.py`` / ``benchmarks/bench_serve.py`` for the
benchmarks feeding ``BENCH_kernels.json`` and ``BENCH_serve.json``.
"""

from typing import Any

from repro.perf.fingerprints import (
    ATTR_INTERNER,
    TEXT_INTERNER,
    TUPLE_INTERNER,
    AttrInterner,
    BlockFingerprint,
    TextInterner,
    TupleInterner,
    block_fingerprint,
    interned_forest_signature,
    masked_attr_distance,
)
from repro.perf.kernels import (
    FOREST_MEMO,
    TREE_MEMO,
    PairMemo,
    SignedTree,
    clear_kernel_caches,
    fast_forest_distance,
    fast_normalized_tree_distance,
    kernel_cache_stats,
    observe_kernel_gauges,
)

# repro.perf.serve imports back into repro.core (which itself reaches
# repro.perf.fingerprints through the feature kernels), so an eager
# import here would close an import cycle during partial init.  The
# serve names are exported lazily instead (PEP 562); `import
# repro.perf.serve` also works directly.
_SERVE_EXPORTS = frozenset(
    {
        "CompiledSectionWrapper",
        "CompiledWrapper",
        "PageApplications",
        "PageIndex",
        "ServedPage",
        "TagPathAutomaton",
        "build_page_index",
        "compile_wrapper",
        "extract_many",
    }
)

#: names resolved lazily from repro.perf.server (same cycle reasoning)
_SERVER_EXPORTS = frozenset({"Server", "auto_chunksize"})


def __getattr__(name: str) -> Any:
    if name in _SERVE_EXPORTS:
        from repro.perf import serve

        return getattr(serve, name)
    if name in _SERVER_EXPORTS:
        from repro.perf import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [  # lint: allow API01 -- serve names resolve lazily via module __getattr__ (PEP 562)
    "ATTR_INTERNER",
    "FOREST_MEMO",
    "TEXT_INTERNER",
    "TREE_MEMO",
    "TUPLE_INTERNER",
    "AttrInterner",
    "BlockFingerprint",
    "CompiledSectionWrapper",
    "CompiledWrapper",
    "PageApplications",
    "PageIndex",
    "PairMemo",
    "ServedPage",
    "Server",
    "SignedTree",
    "TagPathAutomaton",
    "TextInterner",
    "TupleInterner",
    "auto_chunksize",
    "block_fingerprint",
    "build_page_index",
    "clear_kernel_caches",
    "compile_wrapper",
    "extract_many",
    "fast_forest_distance",
    "fast_normalized_tree_distance",
    "interned_forest_signature",
    "kernel_cache_stats",
    "masked_attr_distance",
    "observe_kernel_gauges",
]
