"""Hot-kernel optimisation layer: fingerprints, memoized kernels, stats.

The distance kernels of §4 — Zhang–Shasha tree edit (Dtf), generalized
Levenshtein (Dbt/Dbs/Dbta) and the O(n²) cohesion sums of Formulas 5–7 —
dominate wrapper-induction time (see the ``BENCH_stages.json``
trajectory).  This package attacks them from the data side and the
compute side while keeping every result bit-identical to the reference
implementations:

- :mod:`repro.perf.fingerprints` — per-block compact signatures:
  attribute-set bitmasks (Dtal by popcount), interned feature tuples,
  flattened post-order tag-forest signatures;
- :mod:`repro.perf.kernels` — process-wide tree/forest distance memos
  keyed on those signatures, with hit/miss statistics surfaced as
  ``perf.*`` observability gauges.

See the "Performance" section of DESIGN.md for how the layers fit, and
``benchmarks/bench_kernels.py`` for the per-kernel micro-benchmarks that
feed ``BENCH_kernels.json``.
"""

from repro.perf.fingerprints import (
    ATTR_INTERNER,
    TUPLE_INTERNER,
    AttrInterner,
    BlockFingerprint,
    TupleInterner,
    block_fingerprint,
    interned_forest_signature,
    masked_attr_distance,
)
from repro.perf.kernels import (
    FOREST_MEMO,
    TREE_MEMO,
    PairMemo,
    SignedTree,
    clear_kernel_caches,
    fast_forest_distance,
    fast_normalized_tree_distance,
    kernel_cache_stats,
    observe_kernel_gauges,
)

__all__ = [
    "ATTR_INTERNER",
    "FOREST_MEMO",
    "TREE_MEMO",
    "TUPLE_INTERNER",
    "AttrInterner",
    "BlockFingerprint",
    "PairMemo",
    "SignedTree",
    "TupleInterner",
    "block_fingerprint",
    "clear_kernel_caches",
    "fast_forest_distance",
    "fast_normalized_tree_distance",
    "interned_forest_signature",
    "kernel_cache_stats",
    "masked_attr_distance",
    "observe_kernel_gauges",
]
