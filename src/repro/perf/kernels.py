"""Memoized distance kernels (the perf layer's compute side).

Tag forests repeat massively across records, pages and engines — every
record of a section shares one tag structure, and the corpus reuses a
small population of record styles.  The kernels here memoize the two
tree-edit-shaped hot paths process-wide, keyed on the flattened
post-order signatures of :mod:`repro.perf.fingerprints`:

- :func:`fast_normalized_tree_distance` — one Zhang–Shasha run per
  distinct *pair of tree signatures*, ever;
- :func:`fast_forest_distance` — one generalized-Levenshtein run per
  distinct *pair of forest signatures*, ever.

Both produce floats bit-identical to the reference implementations in
:mod:`repro.algorithms.tree_edit`: a memo hit returns the exact value a
fresh computation would produce, because the distances are pure
functions of the signatures.  Every memo keeps hit/miss counters
(mirroring ``RecordDistanceCache.stats()``) surfaced through
:func:`kernel_cache_stats` and the ``perf.*`` observability gauges.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.algorithms.string_edit import normalized_edit_distance
from repro.algorithms.tree_edit import OrderedTree, tree_edit_distance
from repro.obs import ObserverLike
from repro.perf.fingerprints import (
    ATTR_INTERNER,
    TEXT_INTERNER,
    TUPLE_INTERNER,
    Interned,
    interned_forest_signature,
)


class PairMemo:
    """A bounded symmetric pair memo with hit/miss statistics.

    Keys are (signature, signature) tuples; the pair is canonicalized by
    object identity, which is stable because signatures are interned
    (and the memo itself keeps them alive).  Insertion stops at
    ``max_entries`` — lookups keep working, new pairs just recompute —
    so a pathological workload degrades to the unmemoized kernel instead
    of exhausting memory.
    """

    __slots__ = ("name", "max_entries", "hits", "misses", "_table")

    def __init__(self, name: str, max_entries: int = 1_000_000) -> None:
        self.name = name
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._table: Dict[Tuple[Any, Any], float] = {}

    def lookup(self, sig1: Any, sig2: Any) -> Tuple[Tuple[Any, Any], Optional[float]]:
        """Canonical key for the pair plus the memoized value, if any."""
        # Canonical order by object identity: valid because signatures
        # are interned (equal => identical) and the memo is process-local.
        key = (sig1, sig2) if id(sig1) <= id(sig2) else (sig2, sig1)
        found = self._table.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return key, found

    def get(self, key: Any) -> Optional[float]:
        """Counted lookup for callers that canonicalize their own keys.

        :func:`repro.features.record_distance.record_distance` orders its
        fingerprint pair by the fingerprints' (cached) value hashes —
        identity ordering would split one logical pair across two keys
        whenever equal fingerprints are distinct objects, which is the
        common cross-page case.
        """
        found = self._table.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def store(self, key: Any, value: float) -> None:
        if len(self._table) < self.max_entries:
            self._table[key] = value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters plus derived rate and current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._table),
        }

    def clear(self) -> None:
        self._table.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)


#: process-wide memos; cleared by :func:`clear_kernel_caches`
TREE_MEMO = PairMemo("tree_memo")
FOREST_MEMO = PairMemo("forest_memo")

#: whole-Drec memo keyed on ``(config, fingerprint, fingerprint)`` — the
#: record distance is a pure function of the two block fingerprints and
#: the feature config, so one weighted-sum computation per distinct
#: record-style pair serves the whole process (the serving loop's health
#: checks re-meet the same styles on every page of an engine).
RECORD_MEMO = PairMemo("record_memo")

#: whole-section homogeneity memo keyed on ``(config, record
#: fingerprints...)`` — Dinr (Formula 5) is the mean of pairwise Drec
#: values, each pure in its fingerprint pair, so the section-level mean
#: is pure in the ordered fingerprint tuple.  Health checks meet the
#: same record line-up page after page; a warm hit skips the whole
#: pairwise loop.
DINR_MEMO = PairMemo("dinr_memo")


class SignedTree:
    """A tree paired with its interned signature.

    Elements of the forest-level edit distance: equality (what the
    sequence kernel's trim compares) is signature equality, which is
    exactly structural tree equality — but resolved by an ``is`` check
    on the interned tuples instead of a recursive dataclass compare.
    """

    __slots__ = ("tree", "sig")

    def __init__(self, tree: OrderedTree, sig: Interned) -> None:
        self.tree = tree
        self.sig = sig

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SignedTree) and (
            self.sig is other.sig or self.sig == other.sig
        )

    def __hash__(self) -> int:
        return hash(self.sig)


def fast_normalized_tree_distance(tree1: SignedTree, tree2: SignedTree) -> float:
    """Memoized normalized tree edit distance over signed trees.

    Bit-identical to
    :func:`repro.algorithms.tree_edit.normalized_tree_distance`: on a
    miss it runs the same Zhang–Shasha program normalized by the same
    larger-size denominator (``len(signature) == tree.size()``).
    """
    sig1, sig2 = tree1.sig, tree2.sig
    if sig1 is sig2 or sig1 == sig2:
        return 0.0
    key, found = TREE_MEMO.lookup(sig1, sig2)
    if found is None:
        found = min(
            1.0,
            tree_edit_distance(tree1.tree, tree2.tree)
            / max(len(sig1), len(sig2)),
        )
        TREE_MEMO.store(key, found)
    return found


def fast_forest_distance(
    forest1: Sequence[OrderedTree],
    forest2: Sequence[OrderedTree],
    sig1: Optional[Interned] = None,
    sig2: Optional[Interned] = None,
) -> float:
    """Memoized normalized tag-forest distance (paper §4.1).

    Bit-identical to :func:`repro.algorithms.tree_edit.forest_distance`;
    pass the fingerprints' interned forest signatures to skip
    re-signing.  Two memo layers cooperate: a hit at the forest level
    skips everything, a miss runs the sequence kernel whose per-pair
    substitution costs hit the tree-level memo.
    """
    if sig1 is None:
        sig1 = interned_forest_signature(forest1)
    if sig2 is None:
        sig2 = interned_forest_signature(forest2)
    if sig1 is sig2 or sig1 == sig2:
        return 0.0
    key, found = FOREST_MEMO.lookup(sig1, sig2)
    if found is None:
        signed1 = [SignedTree(t, s) for t, s in zip(forest1, sig1)]
        signed2 = [SignedTree(t, s) for t, s in zip(forest2, sig2)]
        found = normalized_edit_distance(
            signed1, signed2, substitution_cost=fast_normalized_tree_distance
        )
        FOREST_MEMO.store(key, found)
    return found


def lazy_forest_distance(
    forest1: Callable[[], Sequence[OrderedTree]],
    forest2: Callable[[], Sequence[OrderedTree]],
    sig1: Interned,
    sig2: Interned,
) -> float:
    """:func:`fast_forest_distance` with forest construction deferred.

    The callers that sit behind further memo layers (``record_distance``)
    already hold interned signatures; the :class:`OrderedTree` forests
    are only needed when the forest memo itself misses, so they are
    built by thunk — in the warm serving loop that is almost never.
    """
    if sig1 is sig2 or sig1 == sig2:
        return 0.0
    key, found = FOREST_MEMO.lookup(sig1, sig2)
    if found is None:
        signed1 = [SignedTree(t, s) for t, s in zip(forest1(), sig1)]
        signed2 = [SignedTree(t, s) for t, s in zip(forest2(), sig2)]
        found = normalized_edit_distance(
            signed1, signed2, substitution_cost=fast_normalized_tree_distance
        )
        FOREST_MEMO.store(key, found)
    return found


def kernel_cache_stats() -> Dict[str, Dict[str, float]]:
    """Snapshot of every process-wide kernel cache, keyed by cache name."""
    return {
        "tree_memo": TREE_MEMO.stats(),
        "forest_memo": FOREST_MEMO.stats(),
        "record_memo": RECORD_MEMO.stats(),
        "dinr_memo": DINR_MEMO.stats(),
        "attr_interner": ATTR_INTERNER.stats(),
        "text_interner": TEXT_INTERNER.stats(),
        "tuple_interner": {"entries": len(TUPLE_INTERNER)},
    }


def clear_kernel_caches() -> None:
    """Reset every process-wide memo/interner (benchmarks, tests)."""
    TREE_MEMO.clear()
    FOREST_MEMO.clear()
    RECORD_MEMO.clear()
    DINR_MEMO.clear()
    ATTR_INTERNER.clear()
    TEXT_INTERNER.clear()
    TUPLE_INTERNER.clear()


def observe_kernel_gauges(obs: ObserverLike) -> None:
    """Export the kernel cache stats as ``perf.<cache>.<stat>`` gauges."""
    for cache, stats in kernel_cache_stats().items():
        for stat, value in stats.items():
            obs.gauge(f"perf.{cache}.{stat}", value)
