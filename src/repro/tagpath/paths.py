"""Tag paths with C/S direction nodes (paper §4.1).

A *tag path* locates a node in a DOM tree as a sequence of path nodes,
each a tag name plus a direction: ``C`` (the next node on the path is the
first child) or ``S`` (the next node is the next sibling).  The example in
the paper::

    {HTML}C{HEAD}S{BODY}C{TABLE}S{TABLE}S{TABLE}C{TBODY}C...

descends from HTML to its first child HEAD, steps sideways to BODY,
descends to the first TABLE, steps sideways twice to the third TABLE, and
so on.

The *compact tag path* keeps only the C nodes (the actual ancestor chain)
together with the number of S steps taken before each descent.  Two
compact paths are **compatible** iff their C-node tag sequences are equal,
and the distance between compatible paths is Formula 1::

    Dtp = sum_i |sn1_i - sn2_i| / max(total_S_1, total_S_2)

where ``sn_i`` is the S count before the i-th C node.

Only *element* siblings count as S steps — text nodes are not tag nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.htmlmod.dom import Element, Node, Text


@dataclass(frozen=True)
class PathStep:
    """One compact-path level: descend into ``tag`` after ``s_count`` S steps.

    ``s_count`` is the element-index of the target among its parent's
    element children (0 = first element child).
    """

    tag: str
    s_count: int

    def __str__(self) -> str:
        return f"{{{self.tag}}}@{self.s_count}"


class TagPath:
    """A compact tag path: the C-node chain from the root to a node."""

    __slots__ = ("steps",)

    def __init__(self, steps: Iterable[PathStep]) -> None:
        self.steps: Tuple[PathStep, ...] = tuple(steps)

    # -- construction ------------------------------------------------------
    @classmethod
    def to_node(cls, node: Node) -> "TagPath":
        """The compact tag path from the tree root down to ``node``.

        For a text node the path ends at its parent element (the paper's
        paths always terminate in a tag node).
        """
        target: Optional[Element]
        if isinstance(node, Text):
            target = node.parent
        elif isinstance(node, Element):
            target = node
        else:
            target = node.parent
        if target is None:
            raise ValueError("cannot compute a tag path for a detached node")

        chain: List[Element] = [target]
        chain.extend(a for a in target.ancestors())
        chain.reverse()  # root ... target

        steps: List[PathStep] = [PathStep(chain[0].tag, 0)]
        for parent, child in zip(chain, chain[1:]):
            s_count = 0
            for sibling in parent.children:
                if sibling is child:
                    break
                if isinstance(sibling, Element):
                    s_count += 1
            steps.append(PathStep(child.tag, s_count))
        return cls(steps)

    # -- basic accessors -------------------------------------------------------
    @property
    def c_tags(self) -> Tuple[str, ...]:
        """The C-node tag sequence (determines compatibility)."""
        return tuple(step.tag for step in self.steps)

    @property
    def s_counts(self) -> Tuple[int, ...]:
        """The per-level S counts."""
        return tuple(step.s_count for step in self.steps)

    @property
    def total_s(self) -> int:
        """Total number of S steps along the whole path."""
        return sum(step.s_count for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TagPath) and self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __str__(self) -> str:
        return "/".join(str(step) for step in self.steps)

    def __repr__(self) -> str:
        return f"TagPath({self})"

    # -- comparisons ------------------------------------------------------------
    def compatible(self, other: "TagPath") -> bool:
        """True iff both paths have the same C-node tag sequence."""
        return self.c_tags == other.c_tags

    def distance(self, other: "TagPath") -> float:
        """Formula 1 distance between two *compatible* paths.

        Raises :class:`ValueError` for incompatible paths.  Two identical
        paths have distance 0; paths with no S steps at all also have
        distance 0 (the denominator degenerates).
        """
        if not self.compatible(other):
            raise ValueError("tag paths are not compatible")
        numerator = sum(
            abs(a.s_count - b.s_count) for a, b in zip(self.steps, other.steps)
        )
        denominator = max(self.total_s, other.total_s)
        if denominator == 0:
            return 0.0
        return numerator / denominator

    # -- navigation ---------------------------------------------------------------
    def resolve(self, root: Element) -> Optional[Element]:
        """Follow this path exactly from ``root``; None if it does not exist."""
        if not self.steps or root.tag != self.steps[0].tag or self.steps[0].s_count:
            return None
        node = root
        for step in self.steps[1:]:
            node = _nth_element_child(node, step.tag, step.s_count)
            if node is None:
                return None
        return node

    def slice(self, start: int, stop: Optional[int] = None) -> "TagPath":
        """A sub-path of this path (used by section families)."""
        return TagPath(self.steps[start:stop])


def _nth_element_child(parent: Element, tag: str, s_count: int) -> Optional[Element]:
    """The element child at element-index ``s_count``, if it has ``tag``."""
    index = 0
    for child in parent.children:
        if isinstance(child, Element):
            if index == s_count:
                return child if child.tag == tag else None
            index += 1
    return None


class MergedTagPath:
    """A wrapper path merged from the compatible paths of section instances.

    §5.7: the ``pref`` of a section wrapper is built by merging the compact
    tag paths of the matching instances.  Levels where every instance used
    the same S count stay fixed; levels that varied become *flexible* and
    match any element child with the right tag.  Flexible levels are what
    let a wrapper find a section whose absolute position shifted because a
    preceding section grew or vanished.
    """

    __slots__ = ("tags", "fixed_counts", "observed_counts")

    def __init__(
        self,
        tags: Sequence[str],
        fixed_counts: Sequence[Optional[int]],
        observed_counts: Sequence[Set[int]],
    ) -> None:
        if not (len(tags) == len(fixed_counts) == len(observed_counts)):
            raise ValueError("merged path components must have equal length")
        self.tags: Tuple[str, ...] = tuple(tags)
        self.fixed_counts: Tuple[Optional[int], ...] = tuple(fixed_counts)
        self.observed_counts: Tuple[Set[int], ...] = tuple(set(s) for s in observed_counts)

    @classmethod
    def merge(cls, paths: Sequence[TagPath]) -> "MergedTagPath":
        """Merge compatible tag paths into one flexible wrapper path."""
        if not paths:
            raise ValueError("cannot merge an empty list of paths")
        first = paths[0]
        for other in paths[1:]:
            if not first.compatible(other):
                raise ValueError("cannot merge incompatible tag paths")
        tags = first.c_tags
        fixed: List[Optional[int]] = []
        observed: List[Set[int]] = []
        for level in range(len(tags)):
            counts = {path.steps[level].s_count for path in paths}
            observed.append(counts)
            fixed.append(counts.pop() if len(counts) == 1 else None)
            if fixed[-1] is not None:
                observed[-1] = {fixed[-1]}
        return cls(tags, fixed, observed)

    def __len__(self) -> int:
        return len(self.tags)

    def __str__(self) -> str:
        parts = []
        for tag, count in zip(self.tags, self.fixed_counts):
            parts.append(f"{{{tag}}}@{'*' if count is None else count}")
        return "/".join(parts)

    def __repr__(self) -> str:
        return f"MergedTagPath({self})"

    def matches(self, path: TagPath, slack: int = 0) -> bool:
        """Whether a concrete path conforms to this merged pattern.

        ``slack`` relaxes fixed levels by +-slack S steps, which tolerates
        small template drift on unseen pages.
        """
        if path.c_tags != self.tags:
            return False
        for step, fixed in zip(path.steps, self.fixed_counts):
            if fixed is not None and abs(step.s_count - fixed) > slack:
                return False
        return True

    def find(self, root: Element, slack: int = 0) -> List[Element]:
        """All elements under ``root`` matching this pattern.

        Fixed levels follow their S count (within ``slack``); flexible
        levels try every element child with the expected tag.  Results are
        in document order.
        """
        if not self.tags or root.tag != self.tags[0]:
            return []
        frontier: List[Element] = [root]
        for level in range(1, len(self.tags)):
            tag = self.tags[level]
            fixed = self.fixed_counts[level]
            next_frontier: List[Element] = []
            for node in frontier:
                index = 0
                for child in node.children:
                    if not isinstance(child, Element):
                        continue
                    if child.tag == tag:
                        if fixed is None or abs(index - fixed) <= slack:
                            next_frontier.append(child)
                    index += 1
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def find_with_slack(
        self, root: Element, slack: int
    ) -> Tuple[List[Element], List[Element]]:
        """``(find(root, 0), find(root, slack))`` in a single traversal.

        The slack walk subsumes the exact walk (every exact match is a
        slack match), so one BFS carrying an is-exact flag per frontier
        entry replaces the two traversals callers used to run back to
        back.  Both result lists are in document order and element-wise
        identical to the corresponding :meth:`find` calls.
        """
        if not self.tags or root.tag != self.tags[0]:
            return [], []
        # (node, matched exactly so far) — exact matches stay a prefix-
        # closed subset of the slack frontier.
        frontier: List[Tuple[Element, bool]] = [(root, True)]
        for level in range(1, len(self.tags)):
            tag = self.tags[level]
            fixed = self.fixed_counts[level]
            next_frontier: List[Tuple[Element, bool]] = []
            for node, exact in frontier:
                index = 0
                for child in node.children:
                    if not isinstance(child, Element):
                        continue
                    if child.tag == tag:
                        if fixed is None:
                            next_frontier.append((child, exact))
                        elif abs(index - fixed) <= slack:
                            next_frontier.append(
                                (child, exact and index == fixed)
                            )
                    index += 1
            frontier = next_frontier
            if not frontier:
                break
        return (
            [node for node, exact in frontier if exact],
            [node for node, _ in frontier],
        )
