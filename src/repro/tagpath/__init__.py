"""Tag paths with C/S direction nodes, compatibility and Formula-1 distance."""

from repro.tagpath.paths import MergedTagPath, PathStep, TagPath

__all__ = ["MergedTagPath", "PathStep", "TagPath"]
