"""Longest common subsequence utilities.

Used when merging compact tag paths of matching section instances into a
single wrapper path (§5.7) and when aligning record token sequences.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def lcs_table(seq1: Sequence[T], seq2: Sequence[T]) -> List[List[int]]:
    """The classic LCS dynamic-programming table."""
    rows, cols = len(seq1), len(seq2)
    table = [[0] * (cols + 1) for _ in range(rows + 1)]
    for i in range(1, rows + 1):
        row = table[i]
        prev = table[i - 1]
        item = seq1[i - 1]
        for j in range(1, cols + 1):
            if item == seq2[j - 1]:
                row[j] = prev[j - 1] + 1
            else:
                row[j] = prev[j] if prev[j] >= row[j - 1] else row[j - 1]
    return table


def longest_common_subsequence(seq1: Sequence[T], seq2: Sequence[T]) -> List[T]:
    """The longest common subsequence itself."""
    table = lcs_table(seq1, seq2)
    out: List[T] = []
    i, j = len(seq1), len(seq2)
    while i > 0 and j > 0:
        if seq1[i - 1] == seq2[j - 1]:
            out.append(seq1[i - 1])
            i -= 1
            j -= 1
        elif table[i - 1][j] >= table[i][j - 1]:
            i -= 1
        else:
            j -= 1
    out.reverse()
    return out


def lcs_length(seq1: Sequence[T], seq2: Sequence[T]) -> int:
    """Length of the LCS (space-efficient)."""
    if len(seq2) > len(seq1):
        seq1, seq2 = seq2, seq1
    previous = [0] * (len(seq2) + 1)
    for item in seq1:
        current = [0]
        for j, other in enumerate(seq2, start=1):
            if item == other:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[j - 1]))
        previous = current
    return previous[-1]


def common_prefix(sequences: Sequence[Sequence[T]]) -> List[T]:
    """Longest prefix shared by all sequences (empty input -> [])."""
    if not sequences:
        return []
    shortest = min(sequences, key=len)
    for i, item in enumerate(shortest):
        if any(seq[i] != item for seq in sequences):
            return list(shortest[:i])
    return list(shortest)


def common_suffix(sequences: Sequence[Sequence[T]]) -> List[T]:
    """Longest suffix shared by all sequences (empty input -> [])."""
    reversed_seqs = [list(reversed(seq)) for seq in sequences]
    return list(reversed(common_prefix(reversed_seqs)))
