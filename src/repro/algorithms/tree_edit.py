"""Tree edit distance (Zhang–Shasha).

The paper (§4.1, citing Chawathe [9]) uses the edit distance between two
*tag trees* — rooted, ordered, labelled trees — normalized by the size of
the larger tree.  We implement the classic Zhang–Shasha dynamic program,
which computes the exact ordered tree edit distance with unit costs in
O(n1 * n2 * min(depth, leaves)^2) time.

Trees are supplied in a neutral adjacency form so the module has no
dependency on the DOM: :class:`OrderedTree` wraps ``(label, children)``
recursion.  :func:`tree_from_element` adapts a DOM element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from repro.htmlmod.dom import Element


@dataclass
class OrderedTree:
    """A rooted ordered labelled tree node."""

    label: str
    children: List["OrderedTree"] = field(default_factory=list)

    def size(self) -> int:
        """Number of nodes in this subtree."""
        return 1 + sum(child.size() for child in self.children)

    @classmethod
    def from_tuple(cls, spec: Tuple[Any, ...]) -> "OrderedTree":
        """Build from a nested tuple ``(label, child_spec, ...)``.

        This is the shape produced by
        :meth:`repro.htmlmod.dom.Element.tag_signature`.
        """
        label, *children = spec
        return cls(str(label), [cls.from_tuple(c) for c in children])

    def __repr__(self) -> str:
        return f"OrderedTree({self.label!r}, n={self.size()})"


def tree_from_element(element: "Element") -> OrderedTree:
    """Adapt a :class:`repro.htmlmod.dom.Element` subtree (elements only)."""
    return OrderedTree.from_tuple(element.tag_signature())


class _Annotated:
    """Post-order numbering, leftmost-leaf table and keyroots of a tree."""

    __slots__ = ("labels", "lml", "keyroots")

    def __init__(self, root: OrderedTree) -> None:
        self.labels: List[str] = []
        self.lml: List[int] = []
        order: List[int] = []

        def visit(node: OrderedTree) -> int:
            if node.children:
                first = visit(node.children[0])
                for child in node.children[1:]:
                    visit(child)
                my_lml = first
            else:
                my_lml = len(self.labels)
            index = len(self.labels)
            self.labels.append(node.label)
            self.lml.append(my_lml)
            order.append(index)
            return my_lml

        visit(root)
        # Keyroots: nodes that are not the leftmost child of their parent,
        # equivalently the highest node for each distinct leftmost leaf.
        highest: Dict[int, int] = {}
        for index in range(len(self.labels)):
            highest[self.lml[index]] = index
        self.keyroots: List[int] = sorted(highest.values())


UnitCost = Callable[[Optional[str], Optional[str]], float]


def _default_cost(label1: Optional[str], label2: Optional[str]) -> float:
    """Unit insert/delete; substitution free for equal labels else 1."""
    if label1 is None or label2 is None:
        return 1.0
    return 0.0 if label1 == label2 else 1.0


def tree_edit_distance(
    tree1: OrderedTree,
    tree2: OrderedTree,
    cost: UnitCost = _default_cost,
) -> float:
    """Exact ordered tree edit distance between two trees.

    ``cost(a, None)`` is deletion of a node labelled ``a``, ``cost(None,
    b)`` insertion, and ``cost(a, b)`` relabelling.
    """
    a1 = _Annotated(tree1)
    a2 = _Annotated(tree2)
    n1, n2 = len(a1.labels), len(a2.labels)
    tree_dist = [[0.0] * n2 for _ in range(n1)]

    for kr1 in a1.keyroots:
        for kr2 in a2.keyroots:
            _forest_distance(a1, a2, kr1, kr2, cost, tree_dist)
    return tree_dist[n1 - 1][n2 - 1]


def _forest_distance(
    a1: _Annotated,
    a2: _Annotated,
    kr1: int,
    kr2: int,
    cost: UnitCost,
    tree_dist: List[List[float]],
) -> None:
    l1, l2 = a1.lml[kr1], a2.lml[kr2]
    rows = kr1 - l1 + 2
    cols = kr2 - l2 + 2
    fd = [[0.0] * cols for _ in range(rows)]

    for i in range(1, rows):
        fd[i][0] = fd[i - 1][0] + cost(a1.labels[l1 + i - 1], None)
    for j in range(1, cols):
        fd[0][j] = fd[0][j - 1] + cost(None, a2.labels[l2 + j - 1])

    for i in range(1, rows):
        node1 = l1 + i - 1
        for j in range(1, cols):
            node2 = l2 + j - 1
            delete = fd[i - 1][j] + cost(a1.labels[node1], None)
            insert = fd[i][j - 1] + cost(None, a2.labels[node2])
            if a1.lml[node1] == l1 and a2.lml[node2] == l2:
                # Both prefixes are whole trees: a relabel move applies.
                replace = fd[i - 1][j - 1] + cost(a1.labels[node1], a2.labels[node2])
                fd[i][j] = min(delete, insert, replace)
                tree_dist[node1][node2] = fd[i][j]
            else:
                # Use the previously computed distance of the two subtrees.
                size1 = a1.lml[node1] - l1
                size2 = a2.lml[node2] - l2
                replace = fd[size1][size2] + tree_dist[node1][node2]
                fd[i][j] = min(delete, insert, replace)


def normalized_tree_distance(tree1: OrderedTree, tree2: OrderedTree) -> float:
    """Tree edit distance normalized by the larger tree's size (paper §4.1).

    Clamped to [0, 1]: with unit costs the distance usually stays below
    max(size1, size2), but ancestry constraints can force delete+insert
    pairs where a relabel is impossible, pushing the raw ratio past 1
    (two same-size trees can differ by more than their size).  Callers
    treat this as a bounded dissimilarity score, so those structurally
    disjoint pairs saturate at 1.
    """
    larger = max(tree1.size(), tree2.size())
    if larger == 0:
        return 0.0
    return min(1.0, tree_edit_distance(tree1, tree2) / larger)


TreeSignature = Tuple[Tuple[str, int], ...]


def tree_signature(tree: OrderedTree) -> TreeSignature:
    """Hashable flattened post-order signature of a tree.

    One ``(label, leftmost_leaf_index)`` pair per node in post-order —
    the Zhang–Shasha annotation itself — which uniquely identifies the
    labelled ordered tree: two trees are structurally equal iff their
    signatures are equal, and ``len(signature) == tree.size()``.  The
    signature is what the memoized kernels in :mod:`repro.perf` key on,
    so repeated tag forests are compared by one tuple hash instead of a
    tree-edit dynamic program.
    """
    labels: List[str] = []
    lml: List[int] = []

    def visit(node: OrderedTree) -> int:
        if node.children:
            first = visit(node.children[0])
            for child in node.children[1:]:
                visit(child)
            my_lml = first
        else:
            my_lml = len(labels)
        labels.append(node.label)
        lml.append(my_lml)
        return my_lml

    visit(tree)
    return tuple(zip(labels, lml))


def forest_signature(
    forest: Sequence[OrderedTree],
) -> Tuple[TreeSignature, ...]:
    """Per-tree signatures of a tag forest (see :func:`tree_signature`)."""
    return tuple(tree_signature(tree) for tree in forest)


def forest_distance(
    forest1: Sequence[OrderedTree],
    forest2: Sequence[OrderedTree],
) -> float:
    """Normalized distance between two tag forests (paper §4.1).

    A forest is an ordered list of trees; the paper treats it as a string
    of trees and takes the string edit distance, normalized by the longer
    list, with tree substitution cost equal to the normalized tree edit
    distance.
    """
    from repro.algorithms.string_edit import normalized_edit_distance

    return normalized_edit_distance(
        list(forest1), list(forest2), substitution_cost=normalized_tree_distance
    )
