"""Stable marriage with incomplete preference lists.

§5.6 of the paper matches the section instances (MRs) of one sample page
against those of another: "We apply the stable marriage algorithm [17]
here to find out the matching MRs, with a minor modification to allow no
match" — pairs whose matching score falls below a threshold are never
matched even if mutually best.

We implement the Gale–Shapley / McVitie–Wilson proposal algorithm over a
score matrix.  Entries below ``threshold`` are treated as unacceptable on
both sides, which yields a stable matching of the acceptable sub-lists.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def stable_match(
    scores: Sequence[Sequence[float]],
    threshold: float = float("-inf"),
) -> List[Tuple[int, int]]:
    """Stable matching between rows and columns of a score matrix.

    ``scores[i][j]`` is the (symmetric-in-meaning) affinity between row
    item ``i`` and column item ``j``; higher is better.  Pairs with score
    below ``threshold`` are unacceptable to both parties and can never be
    matched.  Returns the matched ``(row, col)`` pairs sorted by row.

    The matching is stable: no unmatched acceptable pair prefers each
    other to their assigned partners.
    """
    n_rows = len(scores)
    n_cols = len(scores[0]) if n_rows else 0

    # Each row's acceptable columns, best first.
    preferences: List[List[int]] = []
    for i in range(n_rows):
        acceptable = [j for j in range(n_cols) if scores[i][j] >= threshold]
        acceptable.sort(key=lambda j: -scores[i][j])
        preferences.append(acceptable)

    next_proposal = [0] * n_rows
    col_partner: Dict[int, int] = {}
    free_rows = [i for i in range(n_rows) if preferences[i]]

    while free_rows:
        row = free_rows.pop()
        while next_proposal[row] < len(preferences[row]):
            col = preferences[row][next_proposal[row]]
            next_proposal[row] += 1
            incumbent = col_partner.get(col)
            if incumbent is None:
                col_partner[col] = row
                break
            if scores[row][col] > scores[incumbent][col]:
                col_partner[col] = row
                free_rows.append(incumbent)
                break
            # Rejected; try the next preference.
        # Rows that exhaust their list simply remain unmatched.

    return sorted((row, col) for col, row in col_partner.items())


def is_stable(
    scores: Sequence[Sequence[float]],
    matching: Sequence[Tuple[int, int]],
    threshold: float = float("-inf"),
) -> bool:
    """Check stability of ``matching`` under ``scores`` (used by tests)."""
    row_partner = {row: col for row, col in matching}
    col_partner = {col: row for row, col in matching}
    n_rows = len(scores)
    n_cols = len(scores[0]) if n_rows else 0

    for i in range(n_rows):
        for j in range(n_cols):
            if scores[i][j] < threshold:
                continue
            if row_partner.get(i) == j:
                continue
            i_prefers = i not in row_partner or scores[i][j] > scores[i][row_partner[i]]
            j_prefers = j not in col_partner or scores[i][j] > scores[col_partner[j]][j]
            if i_prefers and j_prefers:
                return False
    return True
