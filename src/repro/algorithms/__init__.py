"""Algorithmic substrates: edit distances, matching, clique enumeration."""

from repro.algorithms.cliques import maximal_cliques, section_instance_groups
from repro.algorithms.lcs import (
    common_prefix,
    common_suffix,
    lcs_length,
    longest_common_subsequence,
)
from repro.algorithms.stable_marriage import is_stable, stable_match
from repro.algorithms.string_edit import edit_distance, normalized_edit_distance
from repro.algorithms.tree_edit import (
    OrderedTree,
    forest_distance,
    normalized_tree_distance,
    tree_edit_distance,
    tree_from_element,
)

__all__ = [
    "OrderedTree",
    "common_prefix",
    "common_suffix",
    "edit_distance",
    "forest_distance",
    "is_stable",
    "lcs_length",
    "longest_common_subsequence",
    "maximal_cliques",
    "normalized_edit_distance",
    "normalized_tree_distance",
    "section_instance_groups",
    "stable_match",
    "tree_edit_distance",
    "tree_from_element",
]
