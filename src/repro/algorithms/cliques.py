"""Maximal clique enumeration (Bron–Kerbosch).

§5.6: section instances from different sample pages form an undirected
graph; each maximal clique of size >= 2 is a *section instance group* of
one section schema.  We implement Bron–Kerbosch with pivoting, which is
exact and fast on the small, near-disjoint-union-of-cliques graphs this
pipeline produces.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Set, Tuple, TypeVar

V = TypeVar("V", bound=Hashable)


def maximal_cliques(
    vertices: Iterable[V],
    edges: Iterable[Tuple[V, V]],
) -> List[FrozenSet[V]]:
    """Enumerate all maximal cliques of an undirected graph.

    Self-loops are ignored.  Isolated vertices are reported as singleton
    cliques (callers that follow the paper filter to size >= 2).
    """
    adjacency: Dict[V, Set[V]] = {v: set() for v in vertices}
    for u, v in edges:
        if u == v:
            continue
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    if not adjacency:
        return []

    cliques: List[FrozenSet[V]] = []

    def expand(r: Set[V], p: Set[V], x: Set[V]) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        # Pivot on the vertex with most neighbours in P to prune branches.
        pivot = max(p | x, key=lambda v: len(adjacency[v] & p))
        for v in list(p - adjacency[pivot]):
            expand(r | {v}, p & adjacency[v], x & adjacency[v])
            p.remove(v)
            x.add(v)

    expand(set(), set(adjacency), set())
    return cliques


def section_instance_groups(
    vertices: Iterable[V],
    edges: Iterable[Tuple[V, V]],
    min_size: int = 2,
) -> List[FrozenSet[V]]:
    """Maximal cliques of size >= ``min_size``, largest first.

    This is the grouping rule of §5.6: dangling section instances (no
    match on any other sample page) are dropped.
    """
    groups = [c for c in maximal_cliques(vertices, edges) if len(c) >= min_size]
    groups.sort(key=lambda c: (-len(c), sorted(map(repr, c))))
    return groups
