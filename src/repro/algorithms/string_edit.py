"""String (sequence) edit distance.

The paper uses string edit distance in two places (§4.1, §4.2):

- between *tag forests* viewed as strings of tag trees, where the
  substitution cost of two trees is their normalized tree edit distance;
- between *block text attributes* viewed as strings of line-attribute
  sets, where the substitution cost is ``Dtal`` (Formula 2).

Both need a generalized Levenshtein distance with a pluggable
substitution-cost function, provided here by :func:`edit_distance`.

:func:`edit_distance` is the production kernel: it trims shared
prefixes/suffixes before running the dynamic program and supports
threshold early-abandon via ``cutoff`` (a banded DP).  All costs are
assumed non-negative with ``substitution_cost(x, x) == 0`` — true of
every cost in this codebase — which is what makes the trimming exact;
with a custom cost the trim is verified pair-by-pair before it is
applied, so arbitrary non-negative costs remain safe.
:func:`edit_distance_reference` keeps the plain O(n*m) dynamic program
as the oracle for property tests and kernel benchmarks.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")

SubstCost = Callable[[T, T], float]

_INF = float("inf")


def edit_distance(
    seq1: Sequence[T],
    seq2: Sequence[T],
    substitution_cost: Optional[SubstCost] = None,
    insertion_cost: float = 1.0,
    deletion_cost: float = 1.0,
    cutoff: Optional[float] = None,
) -> float:
    """Generalized Levenshtein distance between two sequences.

    ``substitution_cost(a, b)`` returns the cost of replacing ``a`` with
    ``b``; the default is 0 for equal items and 1 otherwise.  Insertions
    and deletions have unit cost unless overridden.  All costs must be
    non-negative.

    ``cutoff`` enables threshold early-abandon: when the true distance is
    ``>= cutoff`` the function may stop early and return *some* value
    ``>= cutoff`` (a valid lower bound, not necessarily the exact
    distance); when the true distance is ``< cutoff`` the exact distance
    is returned.  Callers that only compare against a threshold keep the
    comparison's outcome while skipping most of the DP (the computation
    is restricted to a diagonal band of width ``cutoff / min(indel)``).

    Runs in O(len(seq1) * len(seq2)) time and O(min(len)) space, minus
    whatever the shared-prefix/suffix trim and the band remove.
    """
    lo1, hi1 = 0, len(seq1)
    lo2, hi2 = 0, len(seq2)

    # -- shared prefix/suffix trimming ----------------------------------
    # Exact for non-negative costs: an optimal alignment can always be
    # rewritten to match an equal, zero-substitution-cost end pair
    # without increasing total cost.
    if substitution_cost is None:
        while lo1 < hi1 and lo2 < hi2 and seq1[lo1] == seq2[lo2]:
            lo1 += 1
            lo2 += 1
        while hi1 > lo1 and hi2 > lo2 and seq1[hi1 - 1] == seq2[hi2 - 1]:
            hi1 -= 1
            hi2 -= 1
        substitution_cost = _unit_substitution
    else:
        while (
            lo1 < hi1
            and lo2 < hi2
            and seq1[lo1] == seq2[lo2]
            and substitution_cost(seq1[lo1], seq2[lo2]) == 0.0
        ):
            lo1 += 1
            lo2 += 1
        while (
            hi1 > lo1
            and hi2 > lo2
            and seq1[hi1 - 1] == seq2[hi2 - 1]
            and substitution_cost(seq1[hi1 - 1], seq2[hi2 - 1]) == 0.0
        ):
            hi1 -= 1
            hi2 -= 1

    seq1 = seq1[lo1:hi1]
    seq2 = seq2[lo2:hi2]

    # -- degenerate remainders ------------------------------------------
    if not seq1:
        return len(seq2) * insertion_cost
    if not seq2:
        return len(seq1) * deletion_cost

    # Keep the shorter sequence in the inner dimension for O(min) space.
    if len(seq2) > len(seq1):
        seq1, seq2 = seq2, seq1
        insertion_cost, deletion_cost = deletion_cost, insertion_cost
        inner_subst = _flip(substitution_cost)
    else:
        inner_subst = substitution_cost

    n1, n2 = len(seq1), len(seq2)

    # -- cutoff preliminaries -------------------------------------------
    band: Optional[int] = None
    if cutoff is not None:
        if cutoff <= 0:
            # Every distance is >= 0 >= cutoff; any non-negative bound works.
            return 0.0
        # Unmatched length is a lower bound: each of the (n1 - n2) extra
        # items of the (longer) outer sequence must be deleted.
        gap_bound = (n1 - n2) * deletion_cost
        if gap_bound >= cutoff:
            return gap_bound
        min_indel = min(insertion_cost, deletion_cost)
        if min_indel > 0:
            # A cell (i, j) needs at least |i - j| * min_indel indel cost
            # on any path through it; outside this band the path already
            # meets the cutoff.
            band = int(cutoff / min_indel) + 1

    previous = [j * insertion_cost for j in range(n2 + 1)]
    for i, item1 in enumerate(seq1, start=1):
        if band is not None:
            j_lo = max(1, i - band)
            j_hi = min(n2, i + band)
            left = i * deletion_cost if j_lo == 1 else _INF
            cells = []
            row_min = left
            for j in range(j_lo, j_hi + 1):
                item2 = seq2[j - 1]
                above = previous[j] if j - (i - 1) <= band else _INF
                diag = previous[j - 1]
                value = left + insertion_cost
                other = above + deletion_cost
                if other < value:
                    value = other
                if diag < _INF:
                    other = diag + inner_subst(item1, item2)
                    if other < value:
                        value = other
                cells.append(value)
                left = value
                if value < row_min:
                    row_min = value
            if row_min >= cutoff:  # type: ignore[operator]
                return row_min
            # Re-pad so absolute j indexing into ``previous`` keeps working.
            current = [_INF] * j_lo if j_lo > 1 else [i * deletion_cost]
            current.extend(cells)
            current.extend([_INF] * (n2 - j_hi))
        else:
            current = [i * deletion_cost]
            append = current.append
            prev_j = previous[0]
            acc = current[0]
            for j, item2 in enumerate(seq2, start=1):
                prev_j1 = previous[j]
                value = acc + insertion_cost
                other = prev_j1 + deletion_cost
                if other < value:
                    value = other
                other = prev_j + inner_subst(item1, item2)
                if other < value:
                    value = other
                append(value)
                prev_j = prev_j1
                acc = value
            if cutoff is not None:
                row_min = min(current)
                if row_min >= cutoff:
                    return row_min
        previous = current
    result = previous[-1]
    if result is _INF or result == _INF:
        # The final cell fell outside the band: the distance meets the cutoff.
        assert cutoff is not None
        return cutoff
    return result


def edit_distance_reference(
    seq1: Sequence[T],
    seq2: Sequence[T],
    substitution_cost: Optional[SubstCost] = None,
    insertion_cost: float = 1.0,
    deletion_cost: float = 1.0,
) -> float:
    """The plain generalized Levenshtein DP, with no fast paths.

    Kept as the oracle the optimized :func:`edit_distance` is property-
    tested and benchmarked against (``tests/test_perf_kernels.py``,
    ``benchmarks/bench_kernels.py``).
    """
    if substitution_cost is None:
        substitution_cost = _unit_substitution

    if len(seq2) > len(seq1):
        seq1, seq2 = seq2, seq1
        insertion_cost, deletion_cost = deletion_cost, insertion_cost
        inner_subst = _flip(substitution_cost)
    else:
        inner_subst = substitution_cost

    previous = [j * insertion_cost for j in range(len(seq2) + 1)]
    for i, item1 in enumerate(seq1, start=1):
        current = [i * deletion_cost]
        for j, item2 in enumerate(seq2, start=1):
            current.append(
                min(
                    previous[j] + deletion_cost,
                    current[j - 1] + insertion_cost,
                    previous[j - 1] + inner_subst(item1, item2),
                )
            )
        previous = current
    return previous[-1]


def normalized_edit_distance(
    seq1: Sequence[T],
    seq2: Sequence[T],
    substitution_cost: Optional[SubstCost] = None,
) -> float:
    """Edit distance normalized by the longer sequence length.

    Returns 0.0 for two empty sequences.  With the default unit costs the
    result is in [0, 1].  This is the paper's normalization for tag-forest
    and block-attribute distances.
    """
    longer = max(len(seq1), len(seq2))
    if longer == 0:
        return 0.0
    return edit_distance(seq1, seq2, substitution_cost) / longer


def _unit_substitution(a: T, b: T) -> float:
    return 0.0 if a == b else 1.0


def _flip(cost: SubstCost) -> SubstCost:
    def flipped(a: T, b: T) -> float:
        return cost(b, a)

    return flipped
