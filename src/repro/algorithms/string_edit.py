"""String (sequence) edit distance.

The paper uses string edit distance in two places (§4.1, §4.2):

- between *tag forests* viewed as strings of tag trees, where the
  substitution cost of two trees is their normalized tree edit distance;
- between *block text attributes* viewed as strings of line-attribute
  sets, where the substitution cost is ``Dtal`` (Formula 2).

Both need a generalized Levenshtein distance with a pluggable
substitution-cost function, provided here by :func:`edit_distance`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")

SubstCost = Callable[[T, T], float]


def edit_distance(
    seq1: Sequence[T],
    seq2: Sequence[T],
    substitution_cost: Optional[SubstCost] = None,
    insertion_cost: float = 1.0,
    deletion_cost: float = 1.0,
) -> float:
    """Generalized Levenshtein distance between two sequences.

    ``substitution_cost(a, b)`` returns the cost of replacing ``a`` with
    ``b``; the default is 0 for equal items and 1 otherwise.  Insertions
    and deletions have unit cost unless overridden.

    Runs in O(len(seq1) * len(seq2)) time and O(min(len)) space.
    """
    if substitution_cost is None:
        substitution_cost = _unit_substitution

    # Keep the shorter sequence in the inner dimension for O(min) space.
    if len(seq2) > len(seq1):
        seq1, seq2 = seq2, seq1
        insertion_cost, deletion_cost = deletion_cost, insertion_cost
        inner_subst = _flip(substitution_cost)
    else:
        inner_subst = substitution_cost

    previous = [j * insertion_cost for j in range(len(seq2) + 1)]
    for i, item1 in enumerate(seq1, start=1):
        current = [i * deletion_cost]
        for j, item2 in enumerate(seq2, start=1):
            current.append(
                min(
                    previous[j] + deletion_cost,
                    current[j - 1] + insertion_cost,
                    previous[j - 1] + inner_subst(item1, item2),
                )
            )
        previous = current
    return previous[-1]


def normalized_edit_distance(
    seq1: Sequence[T],
    seq2: Sequence[T],
    substitution_cost: Optional[SubstCost] = None,
) -> float:
    """Edit distance normalized by the longer sequence length.

    Returns 0.0 for two empty sequences.  With the default unit costs the
    result is in [0, 1].  This is the paper's normalization for tag-forest
    and block-attribute distances.
    """
    longer = max(len(seq1), len(seq2))
    if longer == 0:
        return 0.0
    return edit_distance(seq1, seq2, substitution_cost) / longer


def _unit_substitution(a: T, b: T) -> float:
    return 0.0 if a == b else 1.0


def _flip(cost: SubstCost) -> SubstCost:
    def flipped(a: T, b: T) -> float:
        return cost(b, a)

    return flipped
