"""Wrapper-health telemetry primitives: windows, change detection, events.

:mod:`repro.core.verify` scores one page at a point in time; this module
turns a *stream* of those scores into production telemetry.  Each
monitored metric stream (the keys of
:attr:`repro.core.verify.WrapperHealth.metrics`) gets three estimators:

- a :class:`RollingWindow` — the plain mean of the last *n* checks;
- an :class:`Ewma` — an exponentially weighted moving average that
  reacts faster than the window but still smooths single-page noise;
- a :class:`PageHinkley` change detector — the cumulative test of Page
  (1954) / Hinkley (1971) for a *downward* shift of the stream mean,
  which is what template drift looks like (scores are "higher is
  healthier" throughout).

:class:`HealthTracker` bundles one :class:`StreamState` per monitored
metric and confirms drift only when a stream's Page–Hinkley statistic
crosses its alarm threshold *and* that stream's EWMA sits below the
health threshold — a raw PH alarm on a still-healthy average is noise
(e.g. a run of legitimately absent sections), not drift.

Events are plain dicts serialized as JSON Lines by
:class:`HealthEventLog` (``meta`` / ``check`` / ``drift`` / ``reinduce``
/ ``heal`` records; see the README schema table), mirroring the trace
format of :mod:`repro.obs.trace`.  Nothing here touches wall clocks or
randomness: events are ordered by the monitor's page ordinal, so runs
are deterministic and replayable.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, IO, List, Optional, Sequence, Tuple, Union

HEALTH_FORMAT = "repro-health-events"
HEALTH_VERSION = 1

#: metric streams monitored by default (keys of ``WrapperHealth.metrics``)
DEFAULT_STREAMS: Tuple[str, ...] = (
    "score",
    "marker_hit_found_rate",
    "homogeneous_rate",
)


class RollingWindow:
    """Mean over the last ``size`` observations."""

    __slots__ = ("size", "_values", "_total")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size
        self._values: Deque[float] = deque(maxlen=size)
        self._total = 0.0

    def update(self, value: float) -> None:
        if len(self._values) == self.size:
            self._total -= self._values[0]
        self._values.append(value)
        self._total += value

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def full(self) -> bool:
        return len(self._values) == self.size

    @property
    def mean(self) -> float:
        return self._total / len(self._values) if self._values else 0.0

    def reset(self) -> None:
        self._values.clear()
        self._total = 0.0


class Ewma:
    """Exponentially weighted moving average (seeded by the first value)."""

    __slots__ = ("alpha", "_value")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value: Optional[float] = None

    def update(self, value: float) -> float:
        if self._value is None:
            self._value = value
        else:
            self._value += self.alpha * (value - self._value)
        return self._value

    @property
    def value(self) -> float:
        return self._value if self._value is not None else 0.0

    def reset(self) -> None:
        self._value = None


class PageHinkley:
    """Page–Hinkley test for a downward shift of a stream's mean.

    Maintains the running mean ``x̄_t`` and the cumulative statistic
    ``g_t = max(0, g_{t-1} + (x̄_t - x_t - delta))``: pages scoring more
    than ``delta`` below the historical mean grow ``g``, healthier pages
    shrink it back toward zero.  ``g_t > lambda_`` raises the alarm.
    ``pages_since_change`` — the updates since ``g`` last touched zero —
    estimates how long ago the shift began, which the self-healing
    monitor uses to pick how many buffered pages are post-drift.
    """

    __slots__ = ("delta", "lambda_", "_count", "_mean", "_g", "_since_zero")

    def __init__(self, delta: float = 0.05, lambda_: float = 1.0) -> None:
        self.delta = delta
        self.lambda_ = lambda_
        self._count = 0
        self._mean = 0.0
        self._g = 0.0
        self._since_zero = 0

    def update(self, value: float) -> bool:
        """Feed one observation; True when the alarm is raised."""
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._g = max(0.0, self._g + (self._mean - value - self.delta))
        if self._g == 0.0:
            self._since_zero = 0
        else:
            self._since_zero += 1
        return self.alarm

    @property
    def alarm(self) -> bool:
        return self._g > self.lambda_

    @property
    def statistic(self) -> float:
        return self._g

    @property
    def pages_since_change(self) -> int:
        """Updates since the statistic last sat at zero (shift-age estimate)."""
        return self._since_zero

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._g = 0.0
        self._since_zero = 0


@dataclass(frozen=True)
class DriftAlarm:
    """One confirmed drift signal raised by a stream."""

    stream: str
    window_mean: float
    ewma: float
    statistic: float
    pages_since_change: int


class StreamState:
    """The three estimators of one monitored metric stream."""

    __slots__ = ("name", "window", "ewma", "detector")

    def __init__(
        self,
        name: str,
        window: int,
        alpha: float,
        delta: float,
        lambda_: float,
    ) -> None:
        self.name = name
        self.window = RollingWindow(window)
        self.ewma = Ewma(alpha)
        self.detector = PageHinkley(delta, lambda_)

    def update(self, value: float) -> bool:
        """Feed one observation; True when the PH alarm is up."""
        self.window.update(value)
        self.ewma.update(value)
        return self.detector.update(value)

    def snapshot(self) -> Dict[str, float]:
        return {
            "mean": self.window.mean,
            "ewma": self.ewma.value,
            "ph": self.detector.statistic,
        }

    def reset(self) -> None:
        self.window.reset()
        self.ewma.reset()
        self.detector.reset()


class HealthTracker:
    """Per-engine sliding-window health over several metric streams.

    ``update`` takes one page's metric dict (missing streams are
    skipped for that page) and returns the :class:`DriftAlarm` of the
    worst confirmed stream, or None.  Confirmation requires both the
    Page–Hinkley alarm and an EWMA below ``threshold``; ``warmup``
    checks must pass before any alarm can confirm, so a monitor started
    against an already-broken wrapper reports unhealthy scores without
    claiming to have *detected a change*.
    """

    def __init__(
        self,
        streams: Sequence[str] = DEFAULT_STREAMS,
        window: int = 8,
        threshold: float = 0.6,
        alpha: float = 0.3,
        delta: float = 0.05,
        lambda_: float = 1.0,
        warmup: int = 2,
    ) -> None:
        self.threshold = threshold
        self.warmup = warmup
        self.checks = 0
        self.streams: Dict[str, StreamState] = {
            name: StreamState(name, window, alpha, delta, lambda_)
            for name in streams
        }

    def update(self, metrics: Dict[str, float]) -> Optional[DriftAlarm]:
        """Feed one page's health metrics; a confirmed alarm, or None."""
        self.checks += 1
        confirmed: List[DriftAlarm] = []
        for name, state in self.streams.items():
            if name not in metrics:
                continue
            alarmed = state.update(float(metrics[name]))
            if (
                alarmed
                and self.checks > self.warmup
                and state.ewma.value < self.threshold
            ):
                confirmed.append(
                    DriftAlarm(
                        stream=name,
                        window_mean=state.window.mean,
                        ewma=state.ewma.value,
                        statistic=state.detector.statistic,
                        pages_since_change=state.detector.pages_since_change,
                    )
                )
        if not confirmed:
            return None
        # The stream with the largest PH excursion carries the signal.
        confirmed.sort(key=lambda alarm: (-alarm.statistic, alarm.stream))
        return confirmed[0]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-stream ``{mean, ewma, ph}`` — what ``check`` events embed."""
        return {
            name: self.streams[name].snapshot()
            for name in sorted(self.streams)
        }

    def reset(self) -> None:
        """Forget all history (called after a wrapper hot-swap)."""
        self.checks = 0
        for state in self.streams.values():
            state.reset()


@dataclass
class HealthEventLog:
    """An append-only list of health events with a JSONL persistence form.

    One ``meta`` record leads the file; every following line is one
    event dict with an ``event`` key (``check`` / ``drift`` /
    ``reinduce`` / ``heal``).  :func:`read_health_events` round-trips
    the document and rejects foreign files.
    """

    meta: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)

    def append(self, kind: str, **payload: Any) -> Dict[str, Any]:
        event: Dict[str, Any] = {"event": kind}
        event.update(payload)
        self.events.append(event)
        return event

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [event for event in self.events if event["event"] == kind]

    def write_jsonl(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                self.write_jsonl(handle)
            return
        header = {
            "event": "meta",
            "format": HEALTH_FORMAT,
            "version": HEALTH_VERSION,
        }
        header.update(self.meta)
        target.write(json.dumps(header) + "\n")
        for event in self.events:
            target.write(json.dumps(event) + "\n")


def read_health_events(source: Union[str, IO[str]]) -> HealthEventLog:
    """Load a health-event log written by :meth:`HealthEventLog.write_jsonl`."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_health_events(handle)
    meta: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = []
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("event") == "meta":
            meta = {
                key: value for key, value in record.items() if key != "event"
            }
        else:
            events.append(record)
    if meta is None or meta.get("format") != HEALTH_FORMAT:
        raise ValueError(f"not a {HEALTH_FORMAT} log")
    return HealthEventLog(meta=meta, events=events)
