"""Observability for the MSE pipeline: tracing, metrics, reporting.

The subsystem is zero-dependency and opt-in.  An :class:`Observer` is an
explicit context object threaded through the pipeline (never a global);
code that is handed no observer gets :data:`NULL_OBSERVER`, whose
methods are no-ops.

    from repro.obs import Observer
    obs = Observer()
    wrapper = MSE(obs=obs).build_wrapper(samples)
    obs.write_jsonl("trace.jsonl")     # machine-readable
    print(render_report(obs))          # human-readable tree

See the "Observability" section of README.md for the span taxonomy and
the stats JSON schema.
"""

from repro.obs.health import (
    DriftAlarm,
    Ewma,
    HealthEventLog,
    HealthTracker,
    PageHinkley,
    RollingWindow,
    StreamState,
    read_health_events,
)
from repro.obs.metrics import MetricsRegistry, TimingStats
from repro.obs.report import render_metrics, render_report, render_tree
from repro.obs.trace import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    ObserverLike,
    SpanNode,
    read_jsonl,
)

__all__ = [
    "DriftAlarm",
    "Ewma",
    "HealthEventLog",
    "HealthTracker",
    "MetricsRegistry",
    "PageHinkley",
    "RollingWindow",
    "StreamState",
    "TimingStats",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "ObserverLike",
    "SpanNode",
    "read_health_events",
    "read_jsonl",
    "render_metrics",
    "render_report",
    "render_tree",
]
