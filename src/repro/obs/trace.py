"""The pipeline tracer: nestable spans plus a metrics registry.

Usage pattern (an explicit context object, never a global)::

    obs = Observer()
    with obs.span("dse"):
        ...
        obs.count("dse.csbms", len(csbms))
    obs.write_jsonl("trace.jsonl")

Spans with the same name under the same parent *aggregate*: the tracer
records call counts and total wall time per span path, so a stage that
runs once per sample page still shows up as one node (``refine  5x
0.213s``).  ``Observer.count`` increments both the run-wide metrics
registry and the innermost open span's own counter dict, which is how
JSONL span lines carry stage-specific counters.

Every pipeline entry point accepts an observer and defaults to
:data:`NULL_OBSERVER`, whose methods are no-ops — with tracing disabled
the cost is one attribute lookup and an empty method call per stage,
well under the 5 % overhead budget.
"""

from __future__ import annotations

import json
import time
from typing import (
    Any,
    Callable,
    ContextManager,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Protocol,
    Union,
)

from repro.obs.metrics import MetricsRegistry, Number

TRACE_FORMAT = "repro-obs-trace"
TRACE_VERSION = 1


class ObserverLike(Protocol):
    """The structural type every ``obs=`` parameter accepts.

    Both :class:`Observer` and :class:`NullObserver` satisfy it, as does
    any test double exposing the same four methods plus ``enabled``.
    """

    enabled: bool

    def span(self, name: str) -> ContextManager[Any]:
        ...

    def count(self, name: str, amount: Number = 1) -> None:
        ...

    def gauge(self, name: str, value: Number) -> None:
        ...

    def observe(self, name: str, seconds: float) -> None:
        ...


class _NullSpan:
    """Reusable no-op context manager returned by the null observer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullObserver:
    """The disabled observer: every operation is a no-op.

    Pipeline code holds an observer unconditionally and calls it without
    ``if`` guards; only work whose *preparation* is itself expensive
    (e.g. classifying refine cases) should check :attr:`enabled` first.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, amount: Number = 1) -> None:
        return None

    def gauge(self, name: str, value: Number) -> None:
        return None

    def observe(self, name: str, seconds: float) -> None:
        return None


#: The shared disabled observer; safe to use from anywhere (stateless).
NULL_OBSERVER = NullObserver()


class SpanNode:
    """One node of the span tree: aggregated calls to ``span(name)``
    under a given parent."""

    __slots__ = ("name", "path", "calls", "seconds", "counters", "children")

    def __init__(self, name: str, path: str) -> None:
        self.name = name
        self.path = path
        self.calls = 0
        self.seconds = 0.0
        self.counters: Dict[str, Number] = {}
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            path = f"{self.path}/{name}" if self.path else name
            node = self.children[name] = SpanNode(name, path)
        return node

    def count(self, name: str, amount: Number = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def walk(self) -> Iterator["SpanNode"]:
        """Pre-order traversal of this node's subtree (self included)."""
        yield self
        for node in self.children.values():
            yield from node.walk()

    def to_dict(self) -> Dict[str, Any]:
        parent, _, _ = self.path.rpartition("/")
        return {
            "name": self.name,
            "path": self.path,
            "parent": parent,
            "calls": self.calls,
            "seconds": self.seconds,
            "counters": dict(sorted(self.counters.items())),
        }

    def __repr__(self) -> str:
        return (
            f"SpanNode({self.path!r}, calls={self.calls}, "
            f"seconds={self.seconds:.4f})"
        )


class _ActiveSpan:
    """Context manager for one open span; re-enterable (each ``with``
    resolves its node against the tracer's current stack)."""

    __slots__ = ("_observer", "_name", "_node", "_started")

    def __init__(self, observer: "Observer", name: str) -> None:
        self._observer = observer
        self._name = name
        self._node: Optional[SpanNode] = None
        self._started = 0.0

    def __enter__(self) -> SpanNode:
        observer = self._observer
        self._node = observer._stack[-1].child(self._name)
        observer._stack.append(self._node)
        self._started = observer._clock()
        return self._node

    def __exit__(self, *exc: object) -> bool:
        observer = self._observer
        elapsed = observer._clock() - self._started
        node = self._node
        assert node is not None
        node.calls += 1
        node.seconds += elapsed
        observer.metrics.observe(f"span.{node.path}", elapsed)
        observer._stack.pop()
        return False


class Observer:
    """The enabled observer: span tree + metrics registry for one run.

    ``clock`` is injectable for deterministic tests; it must be a
    monotonic seconds source (default :func:`time.perf_counter`).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.metrics = MetricsRegistry()
        self.root = SpanNode("", "")
        self._stack: List[SpanNode] = [self.root]
        self._clock = clock

    # -- recording ------------------------------------------------------
    def span(self, name: str) -> _ActiveSpan:
        """Open a nestable span; use as a context manager."""
        return _ActiveSpan(self, name)

    def count(self, name: str, amount: Number = 1) -> None:
        """Increment a counter, attributed to the innermost open span."""
        self.metrics.count(name, amount)
        node = self._stack[-1]
        if node is not self.root:
            node.count(name, amount)

    def gauge(self, name: str, value: Number) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, seconds: float) -> None:
        self.metrics.observe(name, seconds)

    # -- reading --------------------------------------------------------
    def spans(self) -> List[SpanNode]:
        """All recorded spans, pre-order, excluding the synthetic root."""
        return [node for node in self.root.walk() if node is not self.root]

    def stats(self) -> Dict[str, Any]:
        """The machine-readable per-stage stats document.

        Schema: ``{"format", "version", "spans": [span dicts],
        "metrics": {"counters", "gauges", "timings"}}`` — what
        ``--trace`` writes (as JSONL) and what benchmarks persist into
        ``BENCH_*.json`` trajectories.
        """
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "spans": [node.to_dict() for node in self.spans()],
            "metrics": self.metrics.snapshot(),
        }

    def merge_stats(self, stats: Dict[str, Any]) -> None:
        """Fold a :meth:`stats` document into this observer.

        Span dicts graft onto this observer's tree under their
        ``parent`` path (calls and seconds add, counters add); metrics
        merge via :meth:`MetricsRegistry.merge_snapshot`.  This is how
        the parallel harnesses — the evaluation pool and the pipeline
        runner's page fan-out — combine per-worker observers into one
        aggregate trace: a caller may rewrite ``parent`` before merging
        to nest a worker's top-level spans under a host span.

        A doc's ``parent`` names a path *in the worker's tree*; once a
        rewritten ancestor has moved, that path no longer matches this
        tree.  Grafted nodes are therefore remembered under their
        original document paths, and each doc's parent resolves against
        those first — so whole subtrees follow their relocated root
        instead of splitting off at this tree's root.  Spans are
        pre-order in the document, so a parent is always grafted before
        its children; documents from before the ``parent`` field fall
        back to grafting by ``path``.
        """
        grafted: Dict[str, SpanNode] = {}
        for doc in stats.get("spans", []):
            path = doc.get("path", "")
            parent = doc.get("parent")
            if parent is None:
                parent, _, _ = path.rpartition("/")
            node = grafted.get(parent)
            if node is None:
                node = self.root
                if parent:
                    for name in parent.split("/"):
                        node = node.child(name)
            node = node.child(doc.get("name") or path.rpartition("/")[2])
            node.calls += doc.get("calls", 0)
            node.seconds += doc.get("seconds", 0.0)
            for name, amount in doc.get("counters", {}).items():
                node.count(name, amount)
            if path:
                grafted[path] = node
        self.metrics.merge_snapshot(stats.get("metrics", {}))

    # -- persistence ----------------------------------------------------
    def write_jsonl(self, target: Union[str, IO[str]]) -> None:
        """Emit the trace as JSON Lines.

        One ``meta`` line, one ``span`` line per aggregated span
        (pre-order, so parents precede children), one final ``metrics``
        line.  :func:`read_jsonl` round-trips the document.
        """
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                self.write_jsonl(handle)
            return
        meta = {"event": "meta", "format": TRACE_FORMAT, "version": TRACE_VERSION}
        target.write(json.dumps(meta) + "\n")
        for node in self.spans():
            target.write(json.dumps({"event": "span", **node.to_dict()}) + "\n")
        target.write(
            json.dumps({"event": "metrics", **self.metrics.snapshot()}) + "\n"
        )


def read_jsonl(source: Union[str, IO[str]]) -> Dict[str, Any]:
    """Load a trace written by :meth:`Observer.write_jsonl`.

    Returns the same document shape as :meth:`Observer.stats`.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_jsonl(handle)
    meta: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    metrics: Dict[str, Any] = {"counters": {}, "gauges": {}, "timings": {}}
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        event = record.pop("event", None)
        if event == "meta":
            meta = record
        elif event == "span":
            spans.append(record)
        elif event == "metrics":
            metrics = record
    if meta.get("format") != TRACE_FORMAT:
        raise ValueError(f"not a {TRACE_FORMAT} trace")
    return {
        "format": meta.get("format"),
        "version": meta.get("version"),
        "spans": spans,
        "metrics": metrics,
    }
