"""Metrics primitives: counters, gauges and timing histograms.

The registry is deliberately tiny and dependency-free.  Counters are
monotonically increasing integers/floats (``cache.hits``), gauges are
last-write-wins values (``record_distance_cache.hit_rate``), and timings
are streaming summaries (count / total / min / max / mean) of observed
durations.  The whole registry snapshots to plain JSON-able dicts so the
CLI, the evaluation harness and the benchmarks can all persist the same
schema (see ``docs: Observability`` in README.md).
"""

from __future__ import annotations

from typing import Dict, Union

Number = Union[int, float]


class TimingStats:
    """Streaming summary of observed durations (seconds)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"TimingStats(count={self.count}, total={self.total:.4f}s)"


class MetricsRegistry:
    """Named counters, gauges and timing summaries for one run."""

    __slots__ = ("counters", "gauges", "timings")

    def __init__(self) -> None:
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.timings: Dict[str, TimingStats] = {}

    def count(self, name: str, amount: Number = 1) -> None:
        """Increment the counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample into the timing ``name``."""
        timing = self.timings.get(name)
        if timing is None:
            timing = self.timings[name] = TimingStats()
        timing.observe(seconds)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters add, gauges
        overwrite, timings combine)."""
        for name, amount in other.counters.items():
            self.count(name, amount)
        self.gauges.update(other.gauges)
        for name, timing in other.timings.items():
            mine = self.timings.get(name)
            if mine is None:
                mine = self.timings[name] = TimingStats()
            mine.count += timing.count
            mine.total += timing.total
            mine.min = min(mine.min, timing.min)
            mine.max = max(mine.max, timing.max)

    def merge_snapshot(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        The plain-dict counterpart of :meth:`merge`, used to combine
        metrics that crossed a process boundary (parallel evaluation
        workers return ``Observer.stats()`` documents, not live
        registries).  Counters add, gauges overwrite, timings combine.
        """
        for name, amount in snapshot.get("counters", {}).items():
            self.count(name, amount)
        self.gauges.update(snapshot.get("gauges", {}))
        for name, doc in snapshot.get("timings", {}).items():
            mine = self.timings.get(name)
            if mine is None:
                mine = self.timings[name] = TimingStats()
            count = doc.get("count", 0)
            mine.count += count
            mine.total += doc.get("total", 0.0)
            if count:
                mine.min = min(mine.min, doc.get("min", float("inf")))
            mine.max = max(mine.max, doc.get("max", 0.0))

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict view of everything, stable key order."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timings": {
                name: timing.snapshot()
                for name, timing in sorted(self.timings.items())
            },
        }
