"""Human-readable rendering of a recorded trace.

``render_tree`` prints the span tree with call counts, wall time and
per-span counters; ``render_metrics`` appends the registry.  Both are
plain strings so the CLI's ``--stats`` flag and test assertions share
one code path.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.metrics import Number
from repro.obs.trace import Observer, SpanNode


def _format_counters(counters: Dict[str, Number]) -> str:
    if not counters:
        return ""
    parts = []
    for name, value in sorted(counters.items()):
        if isinstance(value, float) and not value.is_integer():
            parts.append(f"{name}={value:.3f}")
        else:
            parts.append(f"{name}={int(value)}")
    return "  [" + " ".join(parts) + "]"


def _render_node(node: SpanNode, depth: int, lines: List[str]) -> None:
    label = "  " * depth + node.name
    lines.append(
        f"{label:<28s} {node.calls:>4d}x {node.seconds * 1000:>10.1f}ms"
        f"{_format_counters(node.counters)}"
    )
    for child in node.children.values():
        _render_node(child, depth + 1, lines)


def render_tree(observer: Observer, title: str = "pipeline trace") -> str:
    """The span tree as an indented table (one row per span path)."""
    lines = [f"{title} (calls, wall time, stage counters):"]
    for node in observer.root.children.values():
        _render_node(node, 1, lines)
    if len(lines) == 1:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)


def render_metrics(observer: Observer) -> str:
    """Counters, gauges and timing summaries as aligned key = value rows."""
    snapshot = observer.metrics.snapshot()
    lines = ["metrics:"]
    for name, value in snapshot["counters"].items():
        lines.append(f"  {name:<40s} = {value}")
    for name, value in snapshot["gauges"].items():
        shown = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"  {name:<40s} = {shown}")
    for name, timing in snapshot["timings"].items():
        lines.append(
            f"  {name:<40s} = {timing['count']}x "
            f"total {timing['total'] * 1000:.1f}ms "
            f"mean {timing['mean'] * 1000:.2f}ms"
        )
    if len(lines) == 1:
        lines.append("  (none)")
    return "\n".join(lines)


def render_report(observer: Observer, title: str = "pipeline trace") -> str:
    """Tree plus metrics — what ``--stats`` prints after a run."""
    return render_tree(observer, title) + "\n" + render_metrics(observer)
