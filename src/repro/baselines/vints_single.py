"""Single-section ViNTs baseline.

ViNTs [29] — the system MSE extends — "assumes there is only one (major)
MR to be extracted" and compares all tentative MRs to find the best one.
This baseline reproduces that restriction on top of our MRE component:
wrapper induction keeps only the *main* (largest) section per page, so on
multi-section engines every secondary section is missed by construction —
the paper's motivation for MSE.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.mse import MSE, MSEConfig, SampleInput
from repro.core.wrapper import EngineWrapper


class SingleSectionMSE(MSE):
    """MSE restricted to the single main section (ViNTs behaviour)."""

    def select_sections(self, sections_per_page: List[List]) -> List[List]:
        # The pipeline's select hook (between per-page analysis and
        # cross-page grouping): keep only each page's main section.
        reduced: List[List] = []
        for sections in sections_per_page:
            if sections:
                main = max(
                    sections, key=lambda s: (len(s.records), s.end - s.start)
                )
                reduced.append([main])
            else:
                reduced.append([])
        return reduced

    def build_wrapper(self, samples):
        engine = super().build_wrapper(samples)
        # One schema total: different pages may elect different "main"
        # sections, but ViNTs commits to the single major one — keep the
        # wrapper with the most records, drop families.
        if engine.wrappers:
            major = max(engine.wrappers, key=lambda w: w.typical_records)
            engine.wrappers = [major]
        engine.families = []
        return engine


def build_single_section_wrapper(
    samples: Sequence[SampleInput], config: Optional[MSEConfig] = None
) -> EngineWrapper:
    """Induce a wrapper that extracts only the main result section."""
    return SingleSectionMSE(config).build_wrapper(samples)
