"""MDR baseline — Mining Data Records in Web Pages (Liu et al., SIGKDD'03).

The paper compares against MDR qualitatively (§7): MDR can output
multiple sections but does not separate dynamic sections from static
content, needs at least two records per section, works best on
table/form-enwrapped records, and builds no wrapper (it re-mines every
page).  This implementation follows the published algorithm closely
enough to reproduce those properties:

1. walk the DOM top-down; at every element with two or more element
   children, try *generalized nodes* of length k = 1..MAX_K: adjacent
   groups of k children whose tag structures are similar (normalized
   tree edit distance over the combined forest <= threshold);
2. maximal runs of two or more similar adjacent generalized nodes form
   a *data region*; children covered by a region are not re-mined at
   deeper levels;
3. each generalized node of a region is reported as one data record
   (the usual MDR record-identification case for contiguous records).

Output is converted to line spans on the rendered page so the standard
evaluation harness can grade it against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.algorithms.tree_edit import OrderedTree, forest_distance
from repro.core.model import ExtractedRecord, ExtractedSection, PageExtraction
from repro.htmlmod.dom import Document, Element
from repro.htmlmod.parser import parse_html
from repro.render.layout import render_page
from repro.render.lines import RenderedPage

#: maximum generalized-node length (MDR uses up to ~10; small page
#: structures rarely need more than 3 and the cost is quadratic in K)
MAX_K = 3

#: similarity threshold on the normalized edit distance between the tag
#: forests of adjacent generalized nodes (MDR's edit-distance threshold)
SIMILARITY_THRESHOLD = 0.3

#: ignore trivially small subtrees (MDR's minimum node requirement)
MIN_SUBTREE_SIZE = 2


@dataclass
class DataRegion:
    """A run of similar generalized nodes under one parent."""

    parent: Element
    k: int
    start_child: int  # index into parent's element children
    node_count: int  # number of generalized nodes

    def generalized_nodes(self) -> List[List[Element]]:
        children = self.parent.child_elements()
        out = []
        for i in range(self.node_count):
            begin = self.start_child + i * self.k
            out.append(children[begin : begin + self.k])
        return out


def _forest(elements: Sequence[Element]) -> List[OrderedTree]:
    return [OrderedTree.from_tuple(e.tag_signature()) for e in elements]


def _find_regions(element: Element) -> List[DataRegion]:
    """Top-down data-region discovery (MDR's MDR/IdentDR step)."""
    regions: List[DataRegion] = []
    children = element.child_elements()

    covered: set = set()
    best: Optional[DataRegion] = None
    for k in range(1, MAX_K + 1):
        if len(children) < 2 * k:
            continue
        i = 0
        while i + 2 * k <= len(children):
            count = 1
            j = i
            while j + 2 * k <= len(children):
                left = _forest(children[j : j + k])
                right = _forest(children[j + k : j + 2 * k])
                if (
                    sum(t.size() for t in left) >= MIN_SUBTREE_SIZE
                    and forest_distance(left, right) <= SIMILARITY_THRESHOLD
                ):
                    count += 1
                    j += k
                else:
                    break
            if count >= 2:
                region = DataRegion(element, k, i, count)
                # Prefer the region covering more children (MDR keeps the
                # largest region at a node).
                if best is None or count * k > best.node_count * best.k:
                    best = region
                i = j + k
            else:
                i += 1
    if best is not None:
        regions.append(best)
        for index in range(
            best.start_child, best.start_child + best.node_count * best.k
        ):
            covered.add(id(children[index]))

    for child in children:
        if id(child) in covered:
            continue
        regions.extend(_find_regions(child))
    return regions


def _region_to_section(
    region: DataRegion, page: RenderedPage
) -> Optional[ExtractedSection]:
    records: List[ExtractedRecord] = []
    for node_group in region.generalized_nodes():
        spans = [page.line_range_of_element(e) for e in node_group]
        spans = [s for s in spans if s is not None]
        if not spans:
            continue
        start = min(s[0] for s in spans)
        end = max(s[1] for s in spans)
        lines = tuple(line.text for line in page.lines[start : end + 1])
        records.append(ExtractedRecord(lines=lines, line_span=(start, end)))
    if len(records) < 2:
        return None  # MDR's two-record minimum
    return ExtractedSection(
        records=tuple(records),
        line_span=(records[0].line_span[0], records[-1].line_span[1]),
        schema_id="mdr",
    )


def mdr_extract(markup_or_document, query: str = "") -> PageExtraction:
    """Run MDR on one page; the query is ignored (MDR is single-page).

    Returns all mined data regions as sections — static repetitions
    included, because MDR has no dynamic/static distinction.
    """
    if isinstance(markup_or_document, Document):
        document = markup_or_document
    else:
        document = parse_html(markup_or_document)
    page = render_page(document)

    sections: List[ExtractedSection] = []
    for region in _find_regions(document.body):
        section = _region_to_section(region, page)
        if section is not None:
            sections.append(section)
    sections.sort(key=lambda s: s.line_span[0])
    return PageExtraction(sections=tuple(sections))
