"""Comparator baselines: MDR (Liu et al. 2003) and single-section ViNTs."""

from repro.baselines.mdr import mdr_extract
from repro.baselines.vints_single import SingleSectionMSE, build_single_section_wrapper

__all__ = ["SingleSectionMSE", "build_single_section_wrapper", "mdr_extract"]
