"""The wrapper monitor: score, detect, re-induce, hot-swap.

:class:`WrapperMonitor` is a deterministic state machine over a stream
of served pages:

``healthy`` — every page is scored through the engine's *compiled*
wrapper (:func:`repro.perf.serve.compile_wrapper`): one shared render
yields the page's extraction and a health document bit-identical to
``check_wrapper``'s, and the health's metric dict feeds the
:class:`~repro.obs.health.HealthTracker`.  Callers who also want the
extracted records use :meth:`WrapperMonitor.serve_page` — serving and
monitoring cost a single render+apply pass per page.  A confirmed
:class:`~repro.obs.health.DriftAlarm` (Page–Hinkley alarm *and* EWMA
below the health threshold) transitions to

``drifted`` — extraction quality is degraded.  With healing enabled the
monitor immediately attempts recovery: it estimates how many recently
buffered pages are post-change (the detector's ``pages_since_change``),
re-induces a wrapper from those pages via :func:`repro.core.mse
.build_wrapper` — pointed at a persistent checkpoint directory, the
staged pipeline reuses every artifact of pages it has already seen and
re-executes only changed stages — and health-checks the candidate on
the current page.  A candidate scoring at or above the threshold is
hot-swapped in (back to ``healthy``, detector state reset); otherwise
the old wrapper stays and the monitor retries every ``retry_every``
pages with fresher samples.

Every step appends to a :class:`~repro.obs.health.HealthEventLog`
(``check`` / ``drift`` / ``reinduce`` / ``heal`` events keyed by the
page ordinal — never the wall clock, so runs replay bit-identically)
and counts into the run's ``Observer``/``MetricsRegistry`` under the
``monitor.*`` namespace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.mse import build_wrapper
from repro.core.mse_config import MSEConfig
from repro.core.verify import WrapperHealth
from repro.core.wrapper import EngineWrapper
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.perf.serve import CompiledWrapper, ServedPage, compile_wrapper
from repro.perf.server import Server
from repro.obs.health import (
    DEFAULT_STREAMS,
    DriftAlarm,
    HealthEventLog,
    HealthTracker,
)

#: monitor states
HEALTHY = "healthy"
DRIFTED = "drifted"


@dataclass
class MonitorConfig:
    """Tuning knobs of one :class:`WrapperMonitor`."""

    #: sliding-window length (pages) for the rolling means
    window: int = 8
    #: health threshold: EWMA below this confirms an alarm, and a healed
    #: wrapper must score at least this to be swapped in
    threshold: float = 0.6
    #: EWMA smoothing factor
    ewma_alpha: float = 0.3
    #: Page–Hinkley tolerated deviation below the running mean
    ph_delta: float = 0.05
    #: Page–Hinkley alarm threshold on the cumulative statistic
    ph_lambda: float = 1.0
    #: checks before any alarm may confirm (a monitor attached to an
    #: already-broken wrapper must not claim it *detected a change*)
    warmup: int = 2
    #: metric streams to monitor (keys of ``WrapperHealth.metrics``)
    streams: Tuple[str, ...] = DEFAULT_STREAMS
    #: attempt self-healing re-induction once drift is confirmed
    heal: bool = False
    #: recently served pages retained as re-induction candidates
    buffer_pages: int = 8
    #: sample-count band for one re-induction attempt
    min_samples: int = 2
    max_samples: int = 5
    #: pages between heal attempts while drifted
    retry_every: int = 4
    #: checkpoint directory for resumable re-induction (None = in-memory)
    checkpoint_dir: Optional[str] = None
    #: worker processes for re-induction page stages
    jobs: int = 1
    #: worker processes for batch serving (:meth:`WrapperMonitor
    #: .serve_many`); 1 = in-process serial loop
    serve_jobs: int = 1
    #: pages per IPC chunk for batch serving (None = auto heuristic)
    serve_chunksize: Optional[int] = None


@dataclass
class MonitorSummary:
    """End-of-run totals (the CLI's ``--json`` document)."""

    pages: int
    state: str
    drifts: int
    reinductions: int
    heals: int
    mean_score: float
    windows: Dict[str, Dict[str, float]]
    drift_pages: Tuple[int, ...]
    heal_pages: Tuple[int, ...]

    def to_obj(self) -> Dict[str, object]:
        return {
            "pages": self.pages,
            "state": self.state,
            "drifts": self.drifts,
            "reinductions": self.reinductions,
            "heals": self.heals,
            "mean_score": self.mean_score,
            "windows": self.windows,
            "drift_pages": list(self.drift_pages),
            "heal_pages": list(self.heal_pages),
        }


@dataclass
class _MonitorState:
    """Mutable run state, split out to keep the monitor surveyable."""

    page: int = 0
    state: str = HEALTHY
    drifts: int = 0
    reinductions: int = 0
    heals: int = 0
    score_total: float = 0.0
    last_heal_attempt: int = -1
    drift_pages: Tuple[int, ...] = ()
    heal_pages: Tuple[int, ...] = ()
    pending_alarm: Optional[DriftAlarm] = None


class WrapperMonitor:
    """Sliding-window health telemetry for one engine's wrapper."""

    def __init__(
        self,
        wrapper: EngineWrapper,
        config: Optional[MonitorConfig] = None,
        mse_config: Optional[MSEConfig] = None,
        obs: ObserverLike = NULL_OBSERVER,
        log: Optional[HealthEventLog] = None,
    ) -> None:
        self.wrapper = wrapper
        self.compiled: CompiledWrapper = compile_wrapper(wrapper)
        self.config = config or MonitorConfig()
        self.mse_config = mse_config
        self.obs = obs
        cfg = self.config
        self.tracker = HealthTracker(
            streams=cfg.streams,
            window=cfg.window,
            threshold=cfg.threshold,
            alpha=cfg.ewma_alpha,
            delta=cfg.ph_delta,
            lambda_=cfg.ph_lambda,
            warmup=cfg.warmup,
        )
        self.log = log if log is not None else HealthEventLog()
        self.log.meta.update(
            {
                "window": cfg.window,
                "threshold": cfg.threshold,
                "streams": list(cfg.streams),
                "heal": cfg.heal,
            }
        )
        self._buffer: Deque[Tuple[str, str]] = deque(maxlen=cfg.buffer_pages)
        self._run = _MonitorState()

    # -- read-only views ------------------------------------------------
    @property
    def state(self) -> str:
        """``healthy`` or ``drifted``."""
        return self._run.state

    @property
    def pages_seen(self) -> int:
        return self._run.page

    def summary(self) -> MonitorSummary:
        run = self._run
        return MonitorSummary(
            pages=run.page,
            state=run.state,
            drifts=run.drifts,
            reinductions=run.reinductions,
            heals=run.heals,
            mean_score=run.score_total / run.page if run.page else 0.0,
            windows=self.tracker.snapshot(),
            drift_pages=run.drift_pages,
            heal_pages=run.heal_pages,
        )

    # -- the monitoring loop --------------------------------------------
    def observe_page(self, markup: str, query: str = "") -> WrapperHealth:
        """Score one served page; detect drift; heal when enabled.

        Returns the page's :class:`WrapperHealth` (scored against the
        wrapper that served it, i.e. before any hot swap this call may
        perform).
        """
        return self.serve_page(markup, query).health

    def serve_page(self, markup: str, query: str = "") -> ServedPage:
        """Serve one page: extraction plus monitored health, one render.

        The compiled wrapper applies every schema once and assembles both
        the page's :class:`~repro.core.model.PageExtraction` and its
        health from the shared results, so a monitored serving loop pays
        one render+apply pass per page instead of the two an
        ``extract`` + ``check_wrapper`` pair costs.  The health feeds the
        same drift state machine as :meth:`observe_page`.
        """
        obs = self.obs
        with obs.span("monitor"):
            self._buffer.append((markup, query))
            served = self.compiled.serve(markup, query, obs=obs)
            self._record_served(markup, query, served)
        return served

    def serve_many(
        self,
        pages: Sequence[Tuple[str, str]],
        server: Optional[Server] = None,
    ) -> List[ServedPage]:
        """Monitor a batch of pages, fanning serving across a warm pool.

        With healing disabled the render+apply work runs on a
        :class:`repro.perf.server.Server` (the caller may hand in a
        started pool serving this monitor's wrapper at index 0;
        otherwise a temporary one is built from ``config.serve_jobs`` /
        ``config.serve_chunksize``) and the resulting health stream
        replays through the drift state machine in page order — the
        monitor ends in exactly the state the serial loop reaches,
        served results included (asserted bit-identical in the tests).

        A *healing* monitor may hot-swap its wrapper mid-stream, which a
        precomputed batch cannot express, so ``config.heal`` (or
        ``serve_jobs <= 1`` with no pool handed in) falls back to the
        serial :meth:`serve_page` loop.
        """
        cfg = self.config
        pooled = not cfg.heal and (server is not None or cfg.serve_jobs > 1)
        if not pooled or len(pages) <= 1:
            return [self.serve_page(markup, query) for markup, query in pages]
        owners = [0] * len(pages)
        if server is not None:
            rows = server.serve(pages, wrapper_of=owners)
        else:
            with Server(
                [self.compiled],
                jobs=min(cfg.serve_jobs, len(pages)),
                chunksize=cfg.serve_chunksize,
                obs=self.obs,
            ) as pool:
                rows = pool.serve(pages, wrapper_of=owners)
        obs = self.obs
        served_pages: List[ServedPage] = []
        for (markup, query), row in zip(pages, rows):
            served = row[0]
            with obs.span("monitor"):
                self._buffer.append((markup, query))
                self._record_served(markup, query, served)
            served_pages.append(served)
        return served_pages

    def _record_served(self, markup: str, query: str, served: ServedPage) -> None:
        """Feed one served page through the drift state machine."""
        run = self._run
        obs = self.obs
        health = served.health
        metrics = health.metrics
        alarm = self.tracker.update(metrics)
        obs.count("monitor.pages")
        run.score_total += health.score

        self.log.append(
            "check",
            page=run.page,
            score=health.score,
            state=run.state,
            metrics=metrics,
            windows=self.tracker.snapshot(),
        )

        if run.state == HEALTHY and alarm is not None:
            self._confirm_drift(alarm)
        if run.state == DRIFTED and self.config.heal:
            if self._heal_due():
                self._attempt_heal(markup, query)

        for name, snap in self.tracker.snapshot().items():
            obs.gauge(f"monitor.{name}.ewma", snap["ewma"])
            obs.gauge(f"monitor.{name}.mean", snap["mean"])
        run.page += 1

    # -- drift ----------------------------------------------------------
    def _confirm_drift(self, alarm: DriftAlarm) -> None:
        run = self._run
        run.state = DRIFTED
        run.drifts += 1
        run.drift_pages += (run.page,)
        run.pending_alarm = alarm
        self.obs.count("monitor.drifts")
        self.log.append(
            "drift",
            page=run.page,
            stream=alarm.stream,
            window_mean=alarm.window_mean,
            ewma=alarm.ewma,
            ph=alarm.statistic,
            pages_since_change=alarm.pages_since_change,
        )

    # -- healing --------------------------------------------------------
    def _heal_due(self) -> bool:
        run = self._run
        if len(self._buffer) < self.config.min_samples:
            return False
        if run.last_heal_attempt < 0:
            return True
        return run.page - run.last_heal_attempt >= self.config.retry_every

    def _post_change_samples(self) -> Tuple[Tuple[str, str], ...]:
        """The most recent buffered pages judged to be post-change.

        The Page–Hinkley ``pages_since_change`` of the alarming stream
        estimates how long the template has been drifting; at least
        ``min_samples`` and at most ``max_samples`` pages are used.
        """
        run = self._run
        cfg = self.config
        since_change = (
            run.pending_alarm.pages_since_change
            if run.pending_alarm is not None
            else cfg.max_samples
        )
        count = max(cfg.min_samples, min(cfg.max_samples, since_change))
        count = min(count, len(self._buffer))
        return tuple(self._buffer)[-count:] if count else ()

    def _attempt_heal(self, markup: str, query: str) -> bool:
        """One re-induction attempt; True when the wrapper was swapped."""
        run = self._run
        cfg = self.config
        run.last_heal_attempt = run.page
        samples = self._post_change_samples()
        if len(samples) < cfg.min_samples:
            return False

        with self.obs.span("reinduce"):
            candidate = build_wrapper(
                list(samples),
                config=self.mse_config,
                obs=self.obs,
                jobs=cfg.jobs,
                checkpoint_dir=cfg.checkpoint_dir,
                resume=cfg.checkpoint_dir is not None,
            )
        run.reinductions += 1
        self.obs.count("monitor.reinductions")
        self.log.append(
            "reinduce",
            page=run.page,
            samples=len(samples),
            schemas=len(candidate.wrappers),
            resumed=cfg.checkpoint_dir is not None,
        )

        # The candidate is compiled up front: its health check runs on
        # the compiled path, and a successful swap reuses the compilation.
        compiled_candidate = compile_wrapper(candidate)
        post = compiled_candidate.serve(markup, query, obs=self.obs).health
        recovered = post.score >= cfg.threshold
        self.log.append(
            "heal",
            page=run.page,
            recovered=recovered,
            score=post.score,
        )
        if not recovered:
            # Keep serving the old wrapper; fresher samples next retry.
            return False
        self.wrapper = candidate
        self.compiled = compiled_candidate
        self.tracker.reset()
        run.state = HEALTHY
        run.heals += 1
        run.heal_pages += (run.page,)
        run.pending_alarm = None
        self.obs.count("monitor.heals")
        return True
