"""Continuous wrapper-health monitoring with self-healing re-induction.

The paper's wrappers are induced once and applied for months (§1's
metasearch maintenance loop); this package closes that loop.  A
:class:`WrapperMonitor` scores every served page via
:func:`repro.core.verify.check_wrapper`, aggregates the per-check
metrics into sliding windows with a Page–Hinkley change detector
(:mod:`repro.obs.health`), and — when drift is confirmed and healing is
enabled — re-induces the wrapper from recently served pages through the
checkpoint/resume pipeline and hot-swaps it in place, recording every
step as a structured health event.

    from repro.monitor import MonitorConfig, WrapperMonitor
    monitor = WrapperMonitor(wrapper, MonitorConfig(heal=True))
    for markup, query in served_pages:
        monitor.observe_page(markup, query)
    monitor.log.write_jsonl("health-events.jsonl")

The CLI front end is ``python -m repro monitor`` (see
:mod:`repro.cli`); the template-evolution knobs that verify detection
and recovery end-to-end live in :mod:`repro.testbed.evolution`.
"""

from repro.monitor.service import MonitorConfig, WrapperMonitor

__all__ = ["MonitorConfig", "WrapperMonitor"]
