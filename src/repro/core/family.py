"""Section families (paper §5.8) — extracting *hidden* sections.

Wrappers exist only for schemas seen on at least two sample pages; query-
dependent sections unseen at induction time would be missed.  A *section
family* generalizes a set of wrappers that share structure:

- **Type 1** — members share the same ``pref`` *and* ``seps``; their
  sections are consecutive child ranges of a single subtree, delimited by
  boundary-marker lines recognizable purely by their line text attribute
  (which differs from every record line's attribute).  The family wrapper
  ⟨pref, seps, aLBMs, aRBMs⟩ re-partitions the subtree at extraction time
  and therefore finds *any* number of sections, seen or not.
- **Type 2** — members share ``seps`` and their prefs share a common
  prefix and suffix, differing only in S counts in between (the sections
  are siblings at varying positions).  The family wrapper
  ⟨ppref, spref, seps, aLBMs, aRBMs⟩ searches every sibling position and
  keeps those confirmed by the boundary-marker attribute.

Wrappers folded into a family are removed from the per-schema list; the
family takes over their extraction (and may extract more instances).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.model import SectionInstance
from repro.core.wrapper import (
    SectionWrapper,
    SeparatorRule,
    SpanLookup,
    partition_subtree_records,
)
from repro.features.blocks import Block
from repro.htmlmod.dom import Element
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.render.lines import RenderedPage
from repro.render.styles import TextAttr
from repro.tagpath.paths import MergedTagPath


def _attrs_distinct_from_records(
    marker_attrs: FrozenSet[TextAttr], wrappers: Sequence[SectionWrapper]
) -> bool:
    """The §5.8 condition: marker attrs differ from every record attr.

    A family recognizes boundaries purely by line text attribute; if any
    record line shares an attribute with the markers, the family would cut
    sections inside records, so it must not be built with that marker.
    """
    if not marker_attrs:
        return False
    for wrapper in wrappers:
        if marker_attrs & wrapper.record_attrs:
            return False
    return True


@dataclass
class SectionFamily:
    """Base class for section families; subclasses implement ``apply``."""

    member_ids: Tuple[str, ...]
    separator: SeparatorRule
    lbm_attrs: FrozenSet[TextAttr]
    rbm_attrs: FrozenSet[TextAttr]
    family_id: str = ""

    def apply(
        self,
        page: RenderedPage,
        candidates: Optional[Sequence[Element]] = None,
        span_of: Optional[SpanLookup] = None,
    ) -> List[Tuple[str, SectionInstance]]:
        """Extract this family's sections from one rendered page.

        ``candidates`` may carry precomputed ``pref.find(root, slack=0)``
        results and ``span_of`` a precomputed element -> line-span lookup
        (both produced by the compiled serving path); when omitted the
        family walks the DOM itself.
        """
        raise NotImplementedError


@dataclass
class Type1Family(SectionFamily):
    """Members share pref and seps; sections are marker-delimited ranges
    of one subtree's children."""

    pref: MergedTagPath = None  # type: ignore[assignment]

    def apply(
        self,
        page: RenderedPage,
        candidates: Optional[Sequence[Element]] = None,
        span_of: Optional[SpanLookup] = None,
    ) -> List[Tuple[str, SectionInstance]]:
        if candidates is None:
            candidates = self.pref.find(page.document.root, slack=0)
        out: List[Tuple[str, SectionInstance]] = []
        for subtree in candidates:
            out.extend(self._sections_of_subtree(page, subtree, span_of))
        return out

    def _sections_of_subtree(
        self,
        page: RenderedPage,
        subtree: Element,
        span_of: Optional[SpanLookup] = None,
    ) -> List[Tuple[str, SectionInstance]]:
        lookup = span_of if span_of is not None else page.line_range_of_element
        span = lookup(subtree)
        if span is None:
            return []
        start, end = span

        # Boundary lines: attribute-recognizable markers inside the span.
        # rbm_attrs participates only when it was verified distinct from
        # record attrs at family construction (it is cleared otherwise).
        boundaries = [
            line.number
            for line in page.lines[start : end + 1]
            if line.attrs == self.lbm_attrs
            or (self.rbm_attrs and line.attrs == self.rbm_attrs)
        ]
        if not boundaries:
            return []

        segments: List[Tuple[int, int, Optional[int]]] = []
        cuts = sorted(set(boundaries))
        for i, cut in enumerate(cuts):
            seg_start = cut + 1
            seg_end = cuts[i + 1] - 1 if i + 1 < len(cuts) else end
            if seg_start <= seg_end:
                segments.append((seg_start, seg_end, cut))

        out: List[Tuple[str, SectionInstance]] = []
        for index, (seg_start, seg_end, lbm) in enumerate(segments):
            records = self._partition_segment(
                page, subtree, seg_start, seg_end, span_of
            )
            if not records:
                continue
            instance = SectionInstance(
                page=page,
                block=Block(page, records[0].start, records[-1].end),
                records=records,
                lbm=lbm,
                rbm=records[-1].end + 1
                if records[-1].end + 1 < len(page.lines)
                else None,
                origin=f"family1:{self.family_id}",
                # Attribute-verified boundaries outrank wrapper heuristics.
                score=2.0,
            )
            schema = (
                self.member_ids[index]
                if index < len(self.member_ids)
                else f"{self.family_id}#hidden{index}"
            )
            out.append((schema, instance))
        return out

    def _partition_segment(
        self,
        page: RenderedPage,
        subtree: Element,
        start: int,
        end: int,
        span_of: Optional[SpanLookup] = None,
    ) -> List[Block]:
        lookup = span_of if span_of is not None else page.line_range_of_element
        boundaries: List[int] = []
        for child in subtree.children:
            if not isinstance(child, Element):
                continue
            child_span = lookup(child)
            if child_span is None or child_span[0] < start or child_span[0] > end:
                continue
            if (
                self.separator.kind == "per-child"
                or (self.separator.kind == "child-start" and child.tag == self.separator.tag)
            ):
                boundaries.append(child_span[0])
        if not boundaries:
            if self.separator.kind == "whole" and start <= end:
                return [Block(page, start, end)]
            return []
        usable = sorted({b for b in boundaries if start < b <= end})
        blocks: List[Block] = []
        current = min(boundaries)
        for boundary in usable:
            if boundary > current:
                blocks.append(Block(page, current, boundary - 1))
                current = boundary
        blocks.append(Block(page, current, end))
        return blocks


@dataclass
class Type2Family(SectionFamily):
    """Members share seps; prefs differ only at flexible sibling levels."""

    pref: MergedTagPath = None  # type: ignore[assignment]
    #: per member: the S counts at the flexible levels, identifying which
    #: candidate position corresponds to which known schema
    member_positions: Dict[Tuple[int, ...], str] = field(default_factory=dict)

    def apply(
        self,
        page: RenderedPage,
        candidates: Optional[Sequence[Element]] = None,
        span_of: Optional[SpanLookup] = None,
    ) -> List[Tuple[str, SectionInstance]]:
        if candidates is None:
            candidates = self.pref.find(page.document.root, slack=0)
        lookup = span_of if span_of is not None else page.line_range_of_element
        out: List[Tuple[str, SectionInstance]] = []
        hidden = 0
        for subtree in candidates:
            span = lookup(subtree)
            if span is None:
                continue
            start, end = span
            before = page.lines[start - 1] if start - 1 >= 0 else None
            if before is None or before.attrs != self.lbm_attrs:
                continue  # the attribute-marker confirmation failed
            if not _separator_applies(subtree, self.separator):
                continue  # structurally alien: not a member of this family
            records = partition_subtree_records(
                page, subtree, self.separator, span_of=span_of
            )
            if not records:
                continue
            key = _flexible_key(self.pref, subtree)
            schema = self.member_positions.get(key)
            if schema is None:
                schema = f"{self.family_id}#hidden{hidden}"
                hidden += 1
            instance = SectionInstance(
                page=page,
                block=Block(page, records[0].start, records[-1].end),
                records=records,
                lbm=start - 1,
                rbm=end + 1 if end + 1 < len(page.lines) else None,
                origin=f"family2:{self.family_id}",
                # Attribute-verified boundaries outrank wrapper heuristics.
                score=2.0,
            )
            out.append((schema, instance))
        return out


def _separator_applies(subtree: Element, separator: SeparatorRule) -> bool:
    """Whether a candidate subtree has the structure the family's seps
    expect.  A Type 2 family must not claim a sibling section of a
    *different* schema just because its header looks the same."""
    if separator.kind != "child-start":
        return True
    return any(
        isinstance(child, Element) and child.tag == separator.tag
        for child in subtree.children
    )


def _flexible_key(pref: MergedTagPath, subtree: Element) -> Tuple[int, ...]:
    """The subtree's S counts at the pref's flexible levels."""
    from repro.tagpath.paths import TagPath

    concrete = TagPath.to_node(subtree)
    return tuple(
        step.s_count
        for step, fixed in zip(concrete.steps, pref.fixed_counts)
        if fixed is None
    )


def build_families(
    wrappers: Sequence[SectionWrapper],
    obs: ObserverLike = NULL_OBSERVER,
) -> Tuple[List[SectionFamily], List[SectionWrapper]]:
    """Fold wrappers into Type 1 / Type 2 families where possible (§5.8).

    Returns (families, remaining wrappers).  A wrapper joins at most one
    family; Type 1 (same pref) is checked before Type 2 (same-shape pref).
    """
    remaining = list(wrappers)
    families: List[SectionFamily] = []

    families_t1, remaining = _build_type1(remaining)
    families.extend(families_t1)
    families_t2, remaining = _build_type2(remaining)
    families.extend(families_t2)
    obs.count("families.type1", len(families_t1))
    obs.count("families.type2", len(families_t2))
    obs.count(
        "families.member_wrappers",
        sum(len(family.member_ids) for family in families),
    )
    return families, remaining


def _group_key_type1(wrapper: SectionWrapper) -> Tuple[object, ...]:
    return (
        wrapper.pref.tags,
        wrapper.pref.fixed_counts,
        str(wrapper.separator),
        wrapper.lbm_attrs,
    )


def _build_type1(
    wrappers: List[SectionWrapper],
) -> Tuple[List[SectionFamily], List[SectionWrapper]]:
    groups: Dict[Tuple[object, ...], List[SectionWrapper]] = {}
    for wrapper in wrappers:
        groups.setdefault(_group_key_type1(wrapper), []).append(wrapper)

    families: List[SectionFamily] = []
    leftover: List[SectionWrapper] = []
    index = 0
    for members in groups.values():
        eligible = (
            len(members) >= 2
            and all(w.markers_inside for w in members)
            and _attrs_distinct_from_records(members[0].lbm_attrs, members)
        )
        if eligible:
            rbm_attrs = members[0].rbm_attrs
            if not _attrs_distinct_from_records(rbm_attrs, members):
                rbm_attrs = frozenset()  # only LBM attrs can cut safely
            families.append(
                Type1Family(
                    member_ids=tuple(w.schema_id for w in members),
                    separator=members[0].separator,
                    lbm_attrs=members[0].lbm_attrs,
                    rbm_attrs=rbm_attrs,
                    family_id=f"T1-{index}",
                    pref=members[0].pref,
                )
            )
            index += 1
        else:
            leftover.extend(members)
    return families, leftover


def _build_type2(
    wrappers: List[SectionWrapper],
) -> Tuple[List[SectionFamily], List[SectionWrapper]]:
    groups: Dict[Tuple[object, ...], List[SectionWrapper]] = {}
    for wrapper in wrappers:
        key = (wrapper.pref.tags, str(wrapper.separator), wrapper.lbm_attrs)
        groups.setdefault(key, []).append(wrapper)

    families: List[SectionFamily] = []
    leftover: List[SectionWrapper] = []
    index = 0
    for members in groups.values():
        if len(members) >= 2 and _attrs_distinct_from_records(
            members[0].lbm_attrs, members
        ):
            merged, positions = _merge_member_prefs(members)
            if merged is None:
                leftover.extend(members)
                continue
            families.append(
                Type2Family(
                    member_ids=tuple(w.schema_id for w in members),
                    separator=members[0].separator,
                    lbm_attrs=members[0].lbm_attrs,
                    rbm_attrs=members[0].rbm_attrs,
                    family_id=f"T2-{index}",
                    pref=merged,
                    member_positions=positions,
                )
            )
            index += 1
        else:
            leftover.extend(members)
    return families, leftover


def _merge_member_prefs(
    members: Sequence[SectionWrapper],
) -> Tuple[Optional[MergedTagPath], Dict[Tuple[int, ...], str]]:
    """Merge member prefs: levels where they disagree become flexible."""
    tags = members[0].pref.tags
    levels = len(tags)
    fixed: List[Optional[int]] = []
    observed: List[Set[int]] = []
    for level in range(levels):
        counts: Set[int] = set()
        for wrapper in members:
            level_counts = wrapper.pref.observed_counts[level]
            counts |= level_counts
        observed.append(counts)
        fixed.append(next(iter(counts)) if len(counts) == 1 else None)

    if all(f is not None for f in fixed):
        return None, {}  # identical prefs should have been Type 1

    merged = MergedTagPath(tags, fixed, observed)
    positions: Dict[Tuple[int, ...], str] = {}
    for wrapper in members:
        key = tuple(
            next(iter(wrapper.pref.observed_counts[level]))
            if len(wrapper.pref.observed_counts[level]) == 1
            else -1
            for level in range(levels)
            if fixed[level] is None
        )
        positions[key] = wrapper.schema_id
    return merged, positions
