"""Configuration of the MSE pipeline.

Lives in its own module (rather than ``repro.core.mse``) so the staged
pipeline package :mod:`repro.pipeline` can import it without creating an
import cycle: ``mse`` builds on the pipeline runner, and the pipeline's
stages and checkpoint keys are parameterized by this config.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.grouping import MATCH_THRESHOLD
from repro.features.config import DEFAULT_CONFIG, FeatureConfig


@dataclass(frozen=True)
class MSEConfig:
    """Configuration of the MSE pipeline.

    The boolean switches exist for the ablation benches; the paper's full
    system corresponds to the defaults.  The config is frozen and
    JSON-canonicalizable: the pipeline's :class:`repro.pipeline.ArtifactStore`
    derives its checkpoint invalidation key from it.
    """

    features: FeatureConfig = DEFAULT_CONFIG
    #: stable-marriage no-match threshold for instance grouping (§5.6)
    match_threshold: float = MATCH_THRESHOLD
    #: build section families for hidden sections (§5.8)
    use_families: bool = True
    #: run MR/DS refinement (§5.3); off = trust raw MRs and mine raw DSs
    use_refinement: bool = True
    #: run the granularity pass (§5.5)
    use_granularity: bool = True
    #: 'cohesion' (Formula 7, §5.4) or 'per-child' (plain tag heuristics)
    mining_strategy: str = "cohesion"
