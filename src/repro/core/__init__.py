"""The paper's contribution: the MSE section-extraction pipeline (steps 2-9)."""

from repro.core.annotate import (
    AnnotatedRecord,
    annotate_extraction,
    annotate_record,
    annotate_section,
)
from repro.core.dse import DynamicSection, run_dse
from repro.core.family import SectionFamily, Type1Family, Type2Family, build_families
from repro.core.granularity import resolve_granularity
from repro.core.grouping import InstanceGroup, group_section_instances, match_score
from repro.core.mining import mine_records
from repro.core.model import (
    ExtractedRecord,
    ExtractedSection,
    PageExtraction,
    SectionInstance,
)
from repro.core.mre import TentativeMR, extract_mrs
from repro.core.mse import MSE, MSEConfig, build_wrapper
from repro.core.refine import RefineResult, refine_page
from repro.core.serialize import (
    WrapperFormatError,
    load_wrapper,
    save_wrapper,
    wrapper_from_json,
    wrapper_to_json,
)
from repro.core.verify import SectionHealth, WrapperHealth, check_wrapper
from repro.core.wrapper import (
    EngineWrapper,
    SectionWrapper,
    SeparatorRule,
    apply_section_wrapper,
    build_section_wrapper,
)

__all__ = [
    "AnnotatedRecord",
    "DynamicSection",
    "EngineWrapper",
    "ExtractedRecord",
    "ExtractedSection",
    "InstanceGroup",
    "MSE",
    "MSEConfig",
    "PageExtraction",
    "RefineResult",
    "SectionFamily",
    "SectionInstance",
    "SectionWrapper",
    "SeparatorRule",
    "TentativeMR",
    "Type1Family",
    "Type2Family",
    "apply_section_wrapper",
    "build_families",
    "build_section_wrapper",
    "build_wrapper",
    "extract_mrs",
    "group_section_instances",
    "match_score",
    "mine_records",
    "refine_page",
    "resolve_granularity",
    "run_dse",
    "annotate_extraction",
    "annotate_record",
    "annotate_section",
    "check_wrapper",
    "load_wrapper",
    "save_wrapper",
    "wrapper_from_json",
    "wrapper_to_json",
    "SectionHealth",
    "WrapperFormatError",
    "WrapperHealth",
]
