"""Wrapper and stage-artifact persistence: pipeline objects <-> JSON.

Wrappers are induced offline from sample pages and applied online for
months (the paper's metasearch scenario); they must survive a process
restart.  This module gives every wrapper component a stable JSON form:

    >>> text = wrapper_to_json(engine_wrapper)
    >>> engine_wrapper = wrapper_from_json(text)

The format is versioned; loading rejects unknown versions rather than
guessing.

Besides the final wrapper, the intermediate *stage artifacts* of the
induction pipeline (:class:`~repro.core.mre.TentativeMR`,
:class:`~repro.core.dse.DynamicSection`,
:class:`~repro.core.model.SectionInstance`) also have codecs here, used
by :mod:`repro.pipeline` for checkpoint/resume and for shipping per-page
results across process boundaries.  Those objects are line-span views
over a live :class:`~repro.render.lines.RenderedPage`, so their JSON
form stores spans only; decoding requires the (deterministically
re-rendered) page the spans refer to.
"""

from __future__ import annotations

import json
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

from repro.core.dse import DynamicSection
from repro.core.family import SectionFamily, Type1Family, Type2Family
from repro.core.model import SectionInstance
from repro.core.mre import TentativeMR
from repro.core.wrapper import EngineWrapper, SectionWrapper, SeparatorRule
from repro.features.blocks import Block
from repro.features.config import FeatureConfig
from repro.render.lines import RenderedPage

from repro.render.styles import TextAttr
from repro.tagpath.paths import MergedTagPath

FORMAT_VERSION = 1


class WrapperFormatError(ValueError):
    """Raised when a serialized wrapper cannot be decoded."""


# -- encoding ---------------------------------------------------------------


def _attr_to_obj(attr: TextAttr) -> Dict[str, Any]:
    return {
        "font": attr.font,
        "size": attr.size,
        "style": attr.style,
        "color": attr.color,
        "underline": attr.underline,
    }


def _attrs_to_obj(attrs: Iterable[TextAttr]) -> List[Dict[str, Any]]:
    return [_attr_to_obj(a) for a in sorted(attrs, key=str)]


def _pref_to_obj(pref: MergedTagPath) -> Dict[str, Any]:
    return {
        "tags": list(pref.tags),
        "fixed": list(pref.fixed_counts),
        "observed": [sorted(counts) for counts in pref.observed_counts],
    }


def _wrapper_to_obj(wrapper: SectionWrapper) -> Dict[str, Any]:
    return {
        "schema_id": wrapper.schema_id,
        "pref": _pref_to_obj(wrapper.pref),
        "separator": {"kind": wrapper.separator.kind, "tag": wrapper.separator.tag},
        "lbm_texts": sorted(wrapper.lbm_texts),
        "rbm_texts": sorted(wrapper.rbm_texts),
        "lbm_attrs": _attrs_to_obj(wrapper.lbm_attrs),
        "rbm_attrs": _attrs_to_obj(wrapper.rbm_attrs),
        "record_attrs": _attrs_to_obj(wrapper.record_attrs),
        "typical_records": wrapper.typical_records,
        "markers_inside": wrapper.markers_inside,
    }


def _family_to_obj(family: SectionFamily) -> Dict[str, Any]:
    obj: Dict[str, Any] = {
        "type": 1 if isinstance(family, Type1Family) else 2,
        "family_id": family.family_id,
        "member_ids": list(family.member_ids),
        "separator": {"kind": family.separator.kind, "tag": family.separator.tag},
        "lbm_attrs": _attrs_to_obj(family.lbm_attrs),
        "rbm_attrs": _attrs_to_obj(family.rbm_attrs),
        "pref": _pref_to_obj(family.pref),
    }
    if isinstance(family, Type2Family):
        obj["member_positions"] = [
            {"key": list(key), "schema": schema}
            for key, schema in sorted(family.member_positions.items())
        ]
    return obj


def engine_to_obj(engine: EngineWrapper) -> Dict[str, Any]:
    """The versioned JSON-serializable payload of an engine wrapper."""
    return {
        "format": "repro-mse-wrapper",
        "version": FORMAT_VERSION,
        "wrappers": [_wrapper_to_obj(w) for w in engine.wrappers],
        "families": [_family_to_obj(f) for f in engine.families],
    }


def wrapper_to_json(engine: EngineWrapper, indent: int = 2) -> str:
    """Serialize an engine wrapper to a JSON string."""
    return json.dumps(engine_to_obj(engine), indent=indent)


# -- decoding ------------------------------------------------------------------


def _attr_from_obj(obj: Dict[str, Any]) -> TextAttr:
    return TextAttr(
        font=obj["font"],
        size=obj["size"],
        style=obj["style"],
        color=obj["color"],
        underline=obj["underline"],
    )


def _attrs_from_obj(items: Iterable[Dict[str, Any]]) -> FrozenSet[TextAttr]:
    return frozenset(_attr_from_obj(o) for o in items)


def _pref_from_obj(obj: Dict[str, Any]) -> MergedTagPath:
    return MergedTagPath(
        tags=obj["tags"],
        fixed_counts=[None if c is None else int(c) for c in obj["fixed"]],
        observed_counts=[set(counts) for counts in obj["observed"]],
    )


def _wrapper_from_obj(obj: Dict[str, Any]) -> SectionWrapper:
    return SectionWrapper(
        schema_id=obj["schema_id"],
        pref=_pref_from_obj(obj["pref"]),
        separator=SeparatorRule(obj["separator"]["kind"], obj["separator"]["tag"]),
        lbm_texts=set(obj["lbm_texts"]),
        rbm_texts=set(obj["rbm_texts"]),
        lbm_attrs=_attrs_from_obj(obj["lbm_attrs"]),
        rbm_attrs=_attrs_from_obj(obj["rbm_attrs"]),
        record_attrs=_attrs_from_obj(obj["record_attrs"]),
        typical_records=obj["typical_records"],
        markers_inside=obj["markers_inside"],
    )


def _family_from_obj(obj: Dict[str, Any]) -> SectionFamily:
    common = dict(
        member_ids=tuple(obj["member_ids"]),
        separator=SeparatorRule(obj["separator"]["kind"], obj["separator"]["tag"]),
        lbm_attrs=_attrs_from_obj(obj["lbm_attrs"]),
        rbm_attrs=_attrs_from_obj(obj["rbm_attrs"]),
        family_id=obj["family_id"],
        pref=_pref_from_obj(obj["pref"]),
    )
    if obj["type"] == 1:
        return Type1Family(**common)
    if obj["type"] == 2:
        positions = {
            tuple(item["key"]): item["schema"]
            for item in obj.get("member_positions", [])
        }
        return Type2Family(member_positions=positions, **common)
    raise WrapperFormatError(f"unknown family type {obj['type']!r}")


def engine_from_obj(
    payload: Dict[str, Any], config: Optional[FeatureConfig] = None
) -> EngineWrapper:
    """Decode an engine wrapper from an :func:`engine_to_obj` payload."""
    if not isinstance(payload, dict) or payload.get("format") != "repro-mse-wrapper":
        raise WrapperFormatError("not a repro MSE wrapper document")
    if payload.get("version") != FORMAT_VERSION:
        raise WrapperFormatError(
            f"unsupported wrapper format version {payload.get('version')!r}"
        )
    wrappers = [_wrapper_from_obj(o) for o in payload["wrappers"]]
    families = [_family_from_obj(o) for o in payload["families"]]
    if config is not None:
        return EngineWrapper(wrappers, families, config)
    return EngineWrapper(wrappers, families)


def wrapper_from_json(text: str) -> EngineWrapper:
    """Deserialize an engine wrapper from :func:`wrapper_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WrapperFormatError(f"not valid JSON: {exc}") from exc
    return engine_from_obj(payload)


def save_wrapper(engine: EngineWrapper, path: str) -> None:
    """Write a wrapper to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(wrapper_to_json(engine))


def load_wrapper(path: str) -> EngineWrapper:
    """Read a wrapper from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return wrapper_from_json(handle.read())


# -- stage artifacts (repro.pipeline checkpoints) ---------------------------
#
# TentativeMR / DynamicSection / SectionInstance hold references into a
# RenderedPage, so only their line spans are persisted.  Decoding takes
# the page the spans refer to; rendering is deterministic, so encoding a
# page's artifacts, re-rendering the page from its HTML and decoding
# yields equal artifacts (the invariant checkpoint/resume relies on).


def mr_to_obj(mr: TentativeMR) -> Dict[str, Any]:
    """Encode a tentative MR as its record line spans."""
    return {"records": [[r.start, r.end] for r in mr.records]}


def mr_from_obj(obj: Dict[str, Any], page: RenderedPage) -> TentativeMR:
    """Decode a tentative MR against its (re-rendered) page."""
    return TentativeMR(
        page=page,
        records=[Block(page, int(s), int(e)) for s, e in obj["records"]],
    )


def ds_to_obj(ds: DynamicSection) -> Dict[str, Any]:
    """Encode a dynamic section as its span and boundary-marker lines."""
    return {"start": ds.start, "end": ds.end, "lbm": ds.lbm, "rbm": ds.rbm}


def ds_from_obj(obj: Dict[str, Any], page: RenderedPage) -> DynamicSection:
    """Decode a dynamic section against its (re-rendered) page."""
    return DynamicSection(
        page,
        int(obj["start"]),
        int(obj["end"]),
        lbm=None if obj.get("lbm") is None else int(obj["lbm"]),
        rbm=None if obj.get("rbm") is None else int(obj["rbm"]),
    )


def section_instance_to_obj(instance: SectionInstance) -> Dict[str, Any]:
    """Encode a pipeline section instance (block, records, markers)."""
    return {
        "block": [instance.block.start, instance.block.end],
        "records": [[r.start, r.end] for r in instance.records],
        "lbm": instance.lbm,
        "rbm": instance.rbm,
        "origin": instance.origin,
        "score": instance.score,
    }


def section_instance_from_obj(
    obj: Dict[str, Any], page: RenderedPage
) -> SectionInstance:
    """Decode a section instance against its (re-rendered) page."""
    start, end = obj["block"]
    return SectionInstance(
        page=page,
        block=Block(page, int(start), int(end)),
        records=[Block(page, int(s), int(e)) for s, e in obj["records"]],
        lbm=None if obj.get("lbm") is None else int(obj["lbm"]),
        rbm=None if obj.get("rbm") is None else int(obj["rbm"]),
        origin=str(obj.get("origin", "")),
        score=float(obj.get("score", 0.0)),
    )


def section_wrapper_to_obj(wrapper: SectionWrapper) -> Dict[str, Any]:
    """Encode one section wrapper (public alias used by checkpoints)."""
    return _wrapper_to_obj(wrapper)


def section_wrapper_from_obj(obj: Dict[str, Any]) -> SectionWrapper:
    """Decode one section wrapper (public alias used by checkpoints)."""
    return _wrapper_from_obj(obj)
