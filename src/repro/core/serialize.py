"""Wrapper persistence: EngineWrapper <-> JSON.

Wrappers are induced offline from sample pages and applied online for
months (the paper's metasearch scenario); they must survive a process
restart.  This module gives every wrapper component a stable JSON form:

    >>> text = wrapper_to_json(engine_wrapper)
    >>> engine_wrapper = wrapper_from_json(text)

The format is versioned; loading rejects unknown versions rather than
guessing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, FrozenSet, Iterable, List

from repro.core.family import SectionFamily, Type1Family, Type2Family
from repro.core.wrapper import EngineWrapper, SectionWrapper, SeparatorRule
from repro.features.config import FeatureConfig
from repro.render.styles import TextAttr
from repro.tagpath.paths import MergedTagPath

FORMAT_VERSION = 1


class WrapperFormatError(ValueError):
    """Raised when a serialized wrapper cannot be decoded."""


# -- encoding ---------------------------------------------------------------


def _attr_to_obj(attr: TextAttr) -> Dict[str, Any]:
    return {
        "font": attr.font,
        "size": attr.size,
        "style": attr.style,
        "color": attr.color,
        "underline": attr.underline,
    }


def _attrs_to_obj(attrs: Iterable[TextAttr]) -> List[Dict[str, Any]]:
    return [_attr_to_obj(a) for a in sorted(attrs, key=str)]


def _pref_to_obj(pref: MergedTagPath) -> Dict[str, Any]:
    return {
        "tags": list(pref.tags),
        "fixed": list(pref.fixed_counts),
        "observed": [sorted(counts) for counts in pref.observed_counts],
    }


def _wrapper_to_obj(wrapper: SectionWrapper) -> Dict[str, Any]:
    return {
        "schema_id": wrapper.schema_id,
        "pref": _pref_to_obj(wrapper.pref),
        "separator": {"kind": wrapper.separator.kind, "tag": wrapper.separator.tag},
        "lbm_texts": sorted(wrapper.lbm_texts),
        "rbm_texts": sorted(wrapper.rbm_texts),
        "lbm_attrs": _attrs_to_obj(wrapper.lbm_attrs),
        "rbm_attrs": _attrs_to_obj(wrapper.rbm_attrs),
        "record_attrs": _attrs_to_obj(wrapper.record_attrs),
        "typical_records": wrapper.typical_records,
        "markers_inside": wrapper.markers_inside,
    }


def _family_to_obj(family: SectionFamily) -> Dict[str, Any]:
    obj: Dict[str, Any] = {
        "type": 1 if isinstance(family, Type1Family) else 2,
        "family_id": family.family_id,
        "member_ids": list(family.member_ids),
        "separator": {"kind": family.separator.kind, "tag": family.separator.tag},
        "lbm_attrs": _attrs_to_obj(family.lbm_attrs),
        "rbm_attrs": _attrs_to_obj(family.rbm_attrs),
        "pref": _pref_to_obj(family.pref),
    }
    if isinstance(family, Type2Family):
        obj["member_positions"] = [
            {"key": list(key), "schema": schema}
            for key, schema in sorted(family.member_positions.items())
        ]
    return obj


def wrapper_to_json(engine: EngineWrapper, indent: int = 2) -> str:
    """Serialize an engine wrapper to a JSON string."""
    payload = {
        "format": "repro-mse-wrapper",
        "version": FORMAT_VERSION,
        "wrappers": [_wrapper_to_obj(w) for w in engine.wrappers],
        "families": [_family_to_obj(f) for f in engine.families],
    }
    return json.dumps(payload, indent=indent)


# -- decoding ------------------------------------------------------------------


def _attr_from_obj(obj: Dict[str, Any]) -> TextAttr:
    return TextAttr(
        font=obj["font"],
        size=obj["size"],
        style=obj["style"],
        color=obj["color"],
        underline=obj["underline"],
    )


def _attrs_from_obj(items: Iterable[Dict[str, Any]]) -> FrozenSet[TextAttr]:
    return frozenset(_attr_from_obj(o) for o in items)


def _pref_from_obj(obj: Dict[str, Any]) -> MergedTagPath:
    return MergedTagPath(
        tags=obj["tags"],
        fixed_counts=[None if c is None else int(c) for c in obj["fixed"]],
        observed_counts=[set(counts) for counts in obj["observed"]],
    )


def _wrapper_from_obj(obj: Dict[str, Any]) -> SectionWrapper:
    return SectionWrapper(
        schema_id=obj["schema_id"],
        pref=_pref_from_obj(obj["pref"]),
        separator=SeparatorRule(obj["separator"]["kind"], obj["separator"]["tag"]),
        lbm_texts=set(obj["lbm_texts"]),
        rbm_texts=set(obj["rbm_texts"]),
        lbm_attrs=_attrs_from_obj(obj["lbm_attrs"]),
        rbm_attrs=_attrs_from_obj(obj["rbm_attrs"]),
        record_attrs=_attrs_from_obj(obj["record_attrs"]),
        typical_records=obj["typical_records"],
        markers_inside=obj["markers_inside"],
    )


def _family_from_obj(obj: Dict[str, Any]) -> SectionFamily:
    common = dict(
        member_ids=tuple(obj["member_ids"]),
        separator=SeparatorRule(obj["separator"]["kind"], obj["separator"]["tag"]),
        lbm_attrs=_attrs_from_obj(obj["lbm_attrs"]),
        rbm_attrs=_attrs_from_obj(obj["rbm_attrs"]),
        family_id=obj["family_id"],
        pref=_pref_from_obj(obj["pref"]),
    )
    if obj["type"] == 1:
        return Type1Family(**common)
    if obj["type"] == 2:
        positions = {
            tuple(item["key"]): item["schema"]
            for item in obj.get("member_positions", [])
        }
        return Type2Family(member_positions=positions, **common)
    raise WrapperFormatError(f"unknown family type {obj['type']!r}")


def wrapper_from_json(text: str) -> EngineWrapper:
    """Deserialize an engine wrapper from :func:`wrapper_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WrapperFormatError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != "repro-mse-wrapper":
        raise WrapperFormatError("not a repro MSE wrapper document")
    if payload.get("version") != FORMAT_VERSION:
        raise WrapperFormatError(
            f"unsupported wrapper format version {payload.get('version')!r}"
        )
    wrappers = [_wrapper_from_obj(o) for o in payload["wrappers"]]
    families = [_family_from_obj(o) for o in payload["families"]]
    return EngineWrapper(wrappers, families)


def save_wrapper(engine: EngineWrapper, path: str) -> None:
    """Write a wrapper to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(wrapper_to_json(engine))


def load_wrapper(path: str) -> EngineWrapper:
    """Read a wrapper from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return wrapper_from_json(handle.read())
