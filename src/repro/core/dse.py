"""DSE — dynamic section identification via boundary markers (paper §5.2).

DSE works on a *pair* of rendered sample pages at a time:

1. clean every content line by removing dynamic components (numbers and
   the query terms that produced the page);
2. find mutually-most-compatible line pairs across the two pages — same
   cleaned text, compatible tag paths, minimal Formula-1 path distance,
   and each the other's best match — these are tentative CSBMs
   (candidate section boundary markers);
3. drop tentative CSBMs that occur inside *every* record of some MR on
   their page (frequent in-record strings like "Buy new: $..." are not
   boundaries);
4. partition each page's lines into maximal CSBM / non-CSBM segments;
   the non-CSBM segments are the candidate dynamic sections (DSs), each
   bounded by the nearest CSBM on either side (its LBM / RBM).

With more than two sample pages, :func:`mark_csbms_multi` unions the
marks over all page pairs: a section header appears on just the pages
where its section is non-empty, so pairing every page with every other is
what catches semi-dynamic markers.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.mre import TentativeMR
from repro.features.blocks import Block
from repro.obs import NULL_OBSERVER, ObserverLike
from repro.render.lines import ContentLine, RenderedPage
from repro.render.linetypes import LineType

_NUMBER_RE = re.compile(r"\d+(?:[.,:/]\d+)*")
_MULTISPACE_RE = re.compile(r"\s+")

#: Line types that are template furniture rather than text content; they
#: carry no comparable text, so DSE matches them structurally.
_STRUCTURAL_TYPES = frozenset({LineType.HR, LineType.IMAGE, LineType.FORM})


def clean_line_text(text: str, query_terms: Iterable[str]) -> str:
    """Remove dynamic components: numbers and query terms (§5.2).

    Comparison of semi-dynamic lines like "Your search returned 578
    matches" across pages requires stripping the parts that vary with the
    query.  Matching is case-insensitive for query terms.
    """
    cleaned = _NUMBER_RE.sub("", text)
    for term in query_terms:
        if term:
            cleaned = re.sub(re.escape(term), "", cleaned, flags=re.IGNORECASE)
    cleaned = _MULTISPACE_RE.sub(" ", cleaned).strip()
    return cleaned.lower()


def clean_page_lines(page: RenderedPage, query_terms: Iterable[str]) -> None:
    """Fill every line's ``cleaned`` attribute in place (DSE lines 1-2)."""
    terms = list(query_terms)
    for line in page.lines:
        line.cleaned = clean_line_text(line.text, terms)


@dataclass
class DynamicSection:
    """A candidate DS: a maximal run of non-CSBM lines with its markers."""

    page: RenderedPage
    start: int
    end: int
    lbm: Optional[int] = None
    rbm: Optional[int] = None

    @property
    def span(self) -> int:
        return self.end - self.start + 1

    def block(self) -> Block:
        return Block(self.page, self.start, self.end)

    def __repr__(self) -> str:
        return f"DS[{self.start}..{self.end}] lbm={self.lbm} rbm={self.rbm}"


def match_key(line: ContentLine) -> str:
    """The text key DSE matches lines on.

    Ordinary lines match on their cleaned text.  Structural lines (HR,
    images, form controls) often have no text at all but are classic
    template furniture — they match on a (type, position) pseudo-key
    instead, so a horizontal rule or a search box is still recognized as
    static content across pages.
    """
    if line.cleaned:
        return line.cleaned
    if line.line_type in _STRUCTURAL_TYPES:
        return f"\x00{line.line_type.value}@{line.position}"
    return ""


def find_most_compatible_line(
    line: ContentLine, other_lines: Sequence[ContentLine]
) -> Optional[ContentLine]:
    """The other page's line most compatible with ``line`` (DSE lines 3-6).

    Candidates must have the same non-empty match key and a compatible
    tag path; the one with the smallest Formula-1 path distance wins (ties
    go to the earliest, for determinism).
    """
    key = match_key(line)
    if not key:
        return None
    best: Optional[ContentLine] = None
    best_distance = float("inf")
    for candidate in other_lines:
        if match_key(candidate) != key:
            continue
        if not candidate.tag_path.compatible(line.tag_path):
            continue
        distance = candidate.tag_path.distance(line.tag_path)
        if distance < best_distance:
            best = candidate
            best_distance = distance
    return best


def _index_by_cleaned(page: RenderedPage) -> Dict[str, List[ContentLine]]:
    index: Dict[str, List[ContentLine]] = defaultdict(list)
    for line in page.lines:
        key = match_key(line)
        if key:
            index[key].append(line)
    return index


def mark_csbms_pair(page1: RenderedPage, page2: RenderedPage) -> Tuple[Set[int], Set[int]]:
    """Tentative CSBM line numbers on each page of a pair (DSE lines 3-9).

    A line is a tentative CSBM when it and its most compatible line on the
    other page are each other's best match (mutual-best filtering reduces
    false matches from repeated record strings).
    """
    index1 = _index_by_cleaned(page1)
    index2 = _index_by_cleaned(page2)

    best12: Dict[int, Optional[ContentLine]] = {}
    for line in page1.lines:
        candidates = index2.get(match_key(line), ())
        best12[line.number] = find_most_compatible_line(line, candidates)

    csbms1: Set[int] = set()
    csbms2: Set[int] = set()
    for line in page1.lines:
        match = best12[line.number]
        if match is None:
            continue
        candidates_back = index1.get(match_key(match), ())
        back = find_most_compatible_line(match, candidates_back)
        if back is not None and back.number == line.number:
            csbms1.add(line.number)
            csbms2.add(match.number)
    return csbms1, csbms2


def mark_csbms_multi(pages: Sequence[RenderedPage]) -> List[Set[int]]:
    """Combine pairwise CSBM marks over all page pairs by voting.

    With three or more sample pages a line must be marked in at least two
    pairings to count: truly static/semi-dynamic template lines match on
    every pairing, while a *record* that happens to be retrieved by two
    different queries matches on exactly one pairing and must not become
    a boundary marker.  With only two pages there is a single pairing and
    every mark counts.
    """
    votes: List[Dict[int, int]] = [defaultdict(int) for _ in pages]
    for i in range(len(pages)):
        for j in range(i + 1, len(pages)):
            csbms_i, csbms_j = mark_csbms_pair(pages[i], pages[j])
            for number in csbms_i:
                votes[i][number] += 1
            for number in csbms_j:
                votes[j][number] += 1

    required = 2 if len(pages) >= 3 else 1
    marks: List[Set[int]] = []
    for page, page_votes in zip(pages, votes):
        certified = {
            number for number, count in page_votes.items() if count >= required
        }
        # A line that fell short of the vote threshold (a rarely-populated
        # section's footer exists on too few pages to match) still counts
        # when an identical, structurally compatible line elsewhere on the
        # same page is certified: the text is proven template furniture.
        by_key: Dict[str, List[ContentLine]] = defaultdict(list)
        for number in certified:
            line = page.lines[number]
            by_key[match_key(line)].append(line)
        for line in page.lines:
            if line.number in certified:
                continue
            twins = by_key.get(match_key(line)) if match_key(line) else None
            if twins and any(
                line.tag_path.compatible(t.tag_path) for t in twins
            ):
                certified.add(line.number)
        marks.append(certified)
    return marks


def filter_csbms(
    page: RenderedPage, csbms: Set[int], mrs: Sequence[TentativeMR]
) -> Set[int]:
    """Drop CSBMs that occur inside every record of some MR (DSE line 10).

    A cleaned text that shows up in all member records of a multi-record
    section is a per-record pattern, not a boundary.
    """
    if not mrs or not csbms:
        return set(csbms)

    suspect_texts: Set[str] = set()
    for mr in mrs:
        if len(mr.records) < 2:
            continue
        per_record: List[Set[str]] = []
        for record in mr.records:
            per_record.append({line.cleaned for line in record.lines if line.cleaned})
        in_all = set.intersection(*per_record) if per_record else set()
        suspect_texts |= in_all

    kept = set()
    for number in csbms:
        line = page.lines[number]
        inside_mr = any(mr.start <= number <= mr.end for mr in mrs)
        if inside_mr and line.cleaned in suspect_texts:
            continue
        kept.add(number)
    return kept


def identify_dss(page: RenderedPage, csbms: Set[int]) -> List[DynamicSection]:
    """Partition a page into DSs by its CSBM lines (DSE lines 12-13)."""
    sections: List[DynamicSection] = []
    run_start: Optional[int] = None
    for line in page.lines:
        if line.number in csbms:
            if run_start is not None:
                sections.append(_make_ds(page, run_start, line.number - 1, csbms))
                run_start = None
        else:
            if run_start is None:
                run_start = line.number
    if run_start is not None:
        sections.append(_make_ds(page, run_start, len(page.lines) - 1, csbms))
    return sections


def _make_ds(page: RenderedPage, start: int, end: int, csbms: Set[int]) -> DynamicSection:
    lbm = start - 1 if start - 1 >= 0 and (start - 1) in csbms else None
    rbm = end + 1 if end + 1 < len(page.lines) and (end + 1) in csbms else None
    return DynamicSection(page, start, end, lbm=lbm, rbm=rbm)


def run_dse(
    pages: Sequence[RenderedPage],
    queries: Sequence[str],
    mrs_per_page: Sequence[Sequence[TentativeMR]],
    obs: ObserverLike = NULL_OBSERVER,
) -> Tuple[List[Set[int]], List[List[DynamicSection]]]:
    """The full DSE stage over all sample pages.

    ``queries[i]`` is the query string that produced ``pages[i]`` (its
    whitespace-split terms are removed during cleaning).  Returns the
    final CSBM sets and the DS lists, one per page.  ``obs`` is an
    optional :class:`repro.obs.Observer` for stage counters.
    """
    if len(pages) != len(queries):
        raise ValueError("pages and queries must align")
    for page, query in zip(pages, queries):
        clean_page_lines(page, query.split())
    obs.count("dse.lines_cleaned", sum(len(page.lines) for page in pages))

    marks = mark_csbms_multi(pages)
    obs.count("dse.csbms_tentative", sum(len(csbms) for csbms in marks))
    filtered = [
        filter_csbms(page, csbms, list(mrs))
        for page, csbms, mrs in zip(pages, marks, mrs_per_page)
    ]
    obs.count("dse.csbms", sum(len(csbms) for csbms in filtered))
    sections = [identify_dss(page, csbms) for page, csbms in zip(pages, filtered)]
    obs.count("dse.sections", sum(len(dss) for dss in sections))
    return filtered, sections
